if (id == 3) then
    x = id
    send x -> 6
    receive z <- 6
elif (id == 6) then
    receive y <- 3
    send y -> 3
else
    skip
end
