"""E3 — Fig. 3/Fig. 4: the dataflow framework itself.

Regenerates: per-program engine statistics — pCFG nodes/edges explored,
engine steps, matches — showing the analysis touches only a tiny fraction
of the conceptual pCFG (whose location-tuples alone number |N|^p), plus a
benchmark of one full framework run.
"""

from benchmarks.conftest import header
from repro import analyze, programs

CORPUS = [
    "pingpong",
    "broadcast_fanout",
    "gather_to_root",
    "exchange_with_root",
    "shift_right",
    "pipeline_stages",
    "master_worker",
    "mdcask_full",
    "neighbor_exchange_1d",
]


def test_fig4_framework_exploration(benchmark, emit):
    stats = {}
    for name in CORPUS:
        result, cfg, _ = analyze(programs.get(name))
        assert not result.gave_up, name
        stats[name] = (
            len(cfg.nodes),
            result.explored.node_count(),
            result.explored.edge_count(),
            result.steps,
            len(result.matches),
        )

    benchmark(lambda: analyze(programs.get("exchange_with_root")))

    rows = [header("E3 / Fig. 4 — framework exploration statistics")]
    rows.append(
        f"{'program':24s} {'|CFG|':>6} {'pCFG nodes':>11} {'pCFG edges':>11} "
        f"{'steps':>6} {'matches':>8}"
    )
    for name, (cfg_n, nodes, edges, steps, matches) in stats.items():
        rows.append(
            f"{name:24s} {cfg_n:>6} {nodes:>11} {edges:>11} {steps:>6} {matches:>8}"
        )
    rows.append(
        "paper shape: the analysis materializes a small fraction of the "
        "conceptual pCFG (|N|^p nodes)  -- reproduced"
    )
    emit(*rows)
    for name, (cfg_n, nodes, *_rest) in stats.items():
        assert nodes < cfg_n ** 2, f"{name} explored too much"
