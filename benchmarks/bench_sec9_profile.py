"""E8 — Section IX: the performance profile of the fan-out broadcast analysis.

The paper reports, for its fan-out broadcast sample: 381 s total on a 2.8 GHz
Opteron, 92.5% of it inside constraint-graph consistency maintenance — 217
O(n^3) transitive closures (avg 52.3 variables) plus 78 O(n^2) incremental
closures (avg 66.3 variables).

We reproduce the profile twice:

* **naive mode** — the constraint graph is re-closed before every query,
  like the paper's prototype: closure dominates (~90% of time), closure
  counts are in the thousands.  This is the Section IX *shape*.
* **optimized mode** (this library's default) — closedness tracking plus the
  O(n^2) incremental closure, i.e. exactly the remediation the paper's
  Section IX development list proposes: the closure share collapses and the
  analysis gets an order of magnitude faster, validating the paper's
  optimization plan.
"""

import time
from pathlib import Path

from benchmarks.conftest import header
from repro import analyze, programs
from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.cgraph.stats import ClosureStats
from repro.obs import Profile, profile_program


def _profiled_run(naive: bool) -> Profile:
    """One profiled analysis of the fan-out broadcast, via the obs layer.

    Returns the :class:`Profile` the ``repro profile`` CLI would produce;
    its ClosureStats-compatible accessors keep the table code below intact.
    """
    profile, result = profile_program(programs.get("broadcast_fanout"), naive=naive)
    assert not result.gave_up
    return profile


def test_sec9_closure_profile(benchmark, emit):
    naive = _profiled_run(naive=True)
    optimized = benchmark(lambda: _profiled_run(naive=False))

    # The CI artifact: the same JSON document `repro profile` writes.
    out = Path("profile.json")
    out.write_text(optimized.to_json())
    assert Profile.from_json(out.read_text()).full_calls == optimized.full_calls

    rows = [header("E8 / Sec. IX — fan-out broadcast analysis profile")]
    rows.append(
        f"{'quantity':36s} {'paper':>10} {'naive':>12} {'optimized':>12}"
    )
    rows.append(
        f"{'total analysis time':36s} {'381 s':>10} "
        f"{naive.total_time:>11.3f}s {optimized.total_time:>11.3f}s"
    )
    rows.append(
        f"{'closure share of total time':36s} {'92.5%':>10} "
        f"{100 * naive.closure_share():>11.1f}% "
        f"{100 * optimized.closure_share():>11.1f}%"
    )
    rows.append(
        f"{'O(n^3) closure calls':36s} {'217':>10} "
        f"{naive.full_calls:>12} {optimized.full_calls:>12}"
    )
    rows.append(
        f"{'avg vars per O(n^3) closure':36s} {'52.3':>10} "
        f"{naive.avg_full_vars():>12.1f} {optimized.avg_full_vars():>12.1f}"
    )
    rows.append(
        f"{'O(n^2) incremental closure calls':36s} {'78':>10} "
        f"{naive.incremental_calls:>12} {optimized.incremental_calls:>12}"
    )
    speedup = naive.total_time / max(optimized.total_time, 1e-9)
    rows.append(
        f"paper shape: closure dominates the naive prototype "
        f"({100 * naive.closure_share():.0f}% vs paper's 92.5%) and the "
        f"paper's proposed optimizations buy {speedup:.1f}x  -- reproduced"
    )
    emit(*rows)
    assert naive.closure_share() > 0.6
    assert optimized.closure_share() < naive.closure_share()
    assert naive.full_calls > 200


def test_sec9_corpus_aggregate(emit):
    """Aggregate closure counts over the full simple corpus: the counts land
    in the paper's reported range (hundreds of closures, tens of vars)."""
    stats = ClosureStats()
    start = time.perf_counter()
    for name in [
        "pingpong", "broadcast_fanout", "gather_to_root", "scatter_from_root",
        "exchange_with_root", "shift_right", "pipeline_stages",
        "ring_shift_nowrap", "master_worker", "mdcask_full",
        "neighbor_exchange_1d",
    ]:
        client = SimpleSymbolicClient(stats=stats)
        result, _, _ = analyze(programs.get(name), client)
        assert not result.gave_up, name
    stats.total_time = time.perf_counter() - start
    emit(
        header("E8b — corpus-aggregate closure counts"),
        f"O(n^3) closures: {stats.full_calls} (paper: 217), "
        f"avg {stats.avg_full_vars():.1f} vars (paper: 52.3)",
        f"O(n^2) closures: {stats.incremental_calls} (paper: 78), "
        f"avg {stats.avg_incremental_vars():.1f} vars (paper: 66.3)",
    )
    assert stats.full_calls > 100
    assert 5 <= stats.avg_full_vars() <= 80
