"""E7 — Fig. 7/Fig. 8: 1-D nearest-neighbor shift matching.

Regenerates: the three-role match table of Fig. 8 —
``[0] -> [1]``, ``[1..np-3] -> [2..np-2]`` (symbolically, as the widened
``[id] -> [id+1]`` family), and ``[np-2] -> [np-1]`` — and validates the
match relation against concrete runs.
"""

from benchmarks.conftest import header
from repro import analyze, programs, run_program


def test_fig7_neighbor_shift(benchmark, emit):
    spec = programs.get("shift_right")

    result, cfg, _ = benchmark(lambda: analyze(spec))
    assert not result.gave_up

    rows = [header("E7 / Fig. 7-8 — 1-D nearest-neighbor shift")]
    rows.append("symbolic matches (paper Fig. 8: [0]->[1], [1..np-3]->[2..np-2], [np-2]->[np-1]):")
    for record in result.match_records:
        rows.append(f"  {record}")

    descs = {(r.sender_desc, r.receiver_desc) for r in result.match_records}
    assert ("[0..0]", "[1..1]") in descs
    assert ("[np - 2..np - 2]", "[np - 1..np - 1]") in descs
    assert any("id" in s for s, _ in descs), "interior family must be symbolic"

    rows.append(f"{'np':>4} {'dynamic edges':>14} {'covered':>8}")
    for num_procs in (4, 8, 16):
        trace = run_program(spec.parse(), num_procs, cfg=cfg)
        dynamic = set(trace.topology().node_edges)
        covered = dynamic <= set(result.matches)
        rows.append(f"{num_procs:>4} {len(trace.matches):>14} {str(covered):>8}")
        assert covered
    rows.append(
        "paper shape: three process roles matched, interior family as one "
        "symbolic set  -- reproduced"
    )
    emit(*rows)


def test_fig7_full_exchange(emit):
    """The 2d+1-role bidirectional variant (Section VIII-C pattern)."""
    spec = programs.get("neighbor_exchange_1d")
    result, cfg, _ = analyze(spec)
    assert not result.gave_up
    trace = run_program(spec.parse(), 8, cfg=cfg)
    assert set(trace.topology().node_edges) == set(result.matches)
    emit(
        f"full 1-D exchange: {len(result.matches)} matched node pairs, "
        "static == dynamic"
    )
