"""Shared helpers for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one paper artifact (figure or table):
it prints the rows/series the paper reports (through ``emit``, which writes
to the real terminal even under pytest capture) and registers a
pytest-benchmark measurement of the underlying computation.
"""

from __future__ import annotations

import pytest

from repro.testing import observability_fixture

#: isolate benchmarks from each other's closure stats, memo tables, and
#: recorder state (shared with tests/)
_reset_observability = observability_fixture()


@pytest.fixture
def emit(capsys):
    """Print experiment rows to the real stdout, bypassing capture."""

    def _emit(*lines: str) -> None:
        with capsys.disabled():
            for line in lines:
                print(line)

    return _emit


def header(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{bar}\n{title}\n{bar}"
