"""E1 — Fig. 1: mdcask exchange-with-root detection and collective rewrite.

Regenerates: the motivating claim that the analysis detects the mdcask
pattern and enables condensing it into two broadcasts and a gather, with a
torus cost model showing the win.
"""

import math

from benchmarks.conftest import header
from repro import analyze, classify_topology, programs
from repro.baselines import concrete_matches


def _torus_hops(src, dst, side):
    sx, sy = src % side, src // side
    dx, dy = dst % side, dst // side
    return min(abs(sx - dx), side - abs(sx - dx)) + min(
        abs(sy - dy), side - abs(sy - dy)
    )


def test_fig1_mdcask_detection_and_rewrite(benchmark, emit):
    spec = programs.get("mdcask_full")
    program = spec.parse()

    result, cfg, _ = benchmark(lambda: analyze(spec))
    assert not result.gave_up

    report = classify_topology(program, result, cfg, probe_np=16)
    assert report.pattern == "gather" or "exchange" in report.pattern

    rows = [header("E1 / Fig. 1 — mdcask exchange-with-root")]
    rows.append(f"detected matches ({len(result.matches)} node pairs):")
    for record in result.match_records[:6]:
        rows.append(f"  {record}")
    rows.append(f"pattern: {report.pattern} -> {report.suggestion}")
    rows.append(f"{'np':>6} {'p2p torus hops':>15} {'collective':>11} {'ratio':>7}")
    for side in (4, 8, 16):
        num_procs = side * side
        truth = concrete_matches(program, num_procs, cfg=cfg)
        p2p = sum(_torus_hops(s, d, side) for s, d in truth.proc_edges)
        coll = 2 * int(math.ceil(math.log2(num_procs))) * num_procs // 2
        rows.append(f"{num_procs:>6} {p2p:>15} {coll:>11} {p2p / coll:>6.2f}x")
    rows.append(
        "paper shape: exchange-with-root detected; rewrite beats p2p and the "
        "gap grows with np  -- reproduced"
    )
    emit(*rows)
