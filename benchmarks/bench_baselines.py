"""E9 — Section II comparisons: precision vs MPI-CFG, cost vs concrete.

Regenerates two series:

1. *Precision* — spurious send-receive edges kept by the MPI-CFG baseline
   vs the pCFG analysis (which is exact on the corpus it converges on).
2. *Cost scaling* — the concrete (model-checking-style) matcher's work grows
   with the process count, while the pCFG analysis runs once for all np —
   the contrast with MPI-SPIN-style tools the paper draws.
"""

import time

from benchmarks.conftest import header
from repro import analyze, programs
from repro.baselines import build_mpi_cfg, concrete_matches

PRECISION_CORPUS = [
    "pingpong",
    "broadcast_fanout",
    "gather_to_root",
    "exchange_with_root",
    "shift_right",
    "master_worker",
    "mdcask_full",
    "neighbor_exchange_1d",
]


def test_precision_vs_mpi_cfg(benchmark, emit):
    rows = [header("E9a — precision: pCFG vs MPI-CFG (spurious match edges)")]
    rows.append(
        f"{'program':24s} {'truth':>6} {'pCFG':>6} {'pCFG spur':>10} "
        f"{'MPI-CFG':>8} {'MPI spur':>9}"
    )
    totals = [0, 0]
    for name in PRECISION_CORPUS:
        spec = programs.get(name)
        program = spec.parse()
        result, cfg, _ = analyze(spec)
        assert not result.gave_up, name
        mpi = build_mpi_cfg(program, cfg=cfg)
        truth = concrete_matches(program, 8, cfg=cfg)
        pcfg_spur = len(set(result.matches) - set(truth.node_edges))
        mpi_spur = len(mpi.spurious_edges(truth.node_edges))
        totals[0] += pcfg_spur
        totals[1] += mpi_spur
        rows.append(
            f"{name:24s} {len(truth.node_edges):>6} {len(result.matches):>6} "
            f"{pcfg_spur:>10} {mpi.edge_count():>8} {mpi_spur:>9}"
        )
    rows.append(
        f"{'TOTAL spurious':24s} {'':>6} {'':>6} {totals[0]:>10} {'':>8} "
        f"{totals[1]:>9}"
    )
    rows.append(
        "paper shape: pCFG matching is exact; the sequential-minded MPI-CFG "
        "keeps spurious edges  -- reproduced"
    )
    emit(*rows)
    assert totals[0] == 0
    assert totals[1] > 0

    benchmark(lambda: build_mpi_cfg(programs.get("mdcask_full").parse()))


def test_cost_scaling_vs_concrete(benchmark, emit):
    spec = programs.get("exchange_with_root")
    program = spec.parse()

    start = time.perf_counter()
    result, cfg, _ = analyze(spec)
    static_time = time.perf_counter() - start
    assert not result.gave_up

    rows = [header("E9b — cost: pCFG (once, any np) vs concrete matcher (per np)")]
    rows.append(f"pCFG analysis: {static_time * 1000:.1f} ms, valid for EVERY np")
    rows.append(f"{'np':>6} {'concrete steps':>15} {'concrete ms':>12}")
    series = []
    for num_procs in (8, 32, 128, 512):
        concrete = concrete_matches(program, num_procs, cfg=cfg)
        series.append(concrete.total_steps)
        rows.append(
            f"{num_procs:>6} {concrete.total_steps:>15} "
            f"{concrete.elapsed * 1000:>11.1f}"
        )
        assert set(concrete.node_edges) == set(result.matches)
    rows.append(
        "paper shape: concrete/model-checking cost grows with np while the "
        "static result is np-independent  -- reproduced"
    )
    emit(*rows)
    assert series[-1] > 10 * series[0]

    benchmark(lambda: concrete_matches(program, 64, cfg=cfg))
