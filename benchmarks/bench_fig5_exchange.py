"""E4 — Fig. 5: the exchange-with-root analysis trace and loop invariant.

Regenerates: the loop fixed point whose process sets take the paper's
invariant shape {[0], [1..i], [i+1..np-1]} (bounds symbolic in the loop
counter), and the final matches 0 <-> [1..np-1] — validated against the
interpreter at several process counts.
"""

from benchmarks.conftest import header
from repro import analyze, programs, run_program


def test_fig5_exchange_with_root(benchmark, emit):
    spec = programs.get("exchange_with_root")

    result, cfg, client = benchmark(lambda: analyze(spec))
    assert not result.gave_up

    # find the widened loop state: process-set bounds symbolic in i
    invariant_nodes = []
    for key, state in result.node_states.items():
        descs = [client.describe_pset(state, p) for p in range(len(state.psets))]
        if any("i" in d and "np" in d for d in descs):
            invariant_nodes.append((key, descs))

    rows = [header("E4 / Fig. 5 — exchange-with-root loop invariant")]
    rows.append("widened pCFG loop states (paper: {[0], [1..i], [i+1..np-1]}):")
    for key, descs in invariant_nodes[:4]:
        locs = ",".join(cfg.node(n).label for n in key[0])
        rows.append(f"  <{locs}>: {descs}")
    rows.append("final symbolic matches:")
    for record in result.match_records:
        rows.append(f"  {record}")

    rows.append(f"{'np':>4} {'dynamic matches':>16} {'static == dynamic':>18}")
    for num_procs in (4, 6, 12, 25):
        trace = run_program(spec.parse(), num_procs, cfg=cfg)
        dynamic = set(trace.topology().node_edges)
        rows.append(
            f"{num_procs:>4} {len(trace.matches):>16} "
            f"{str(dynamic == set(result.matches)):>18}"
        )
        assert dynamic == set(result.matches)
    rows.append(
        "paper shape: loop widening finds the symbolic invariant; matches "
        "hold for every np  -- reproduced"
    )
    emit(*rows)
    assert invariant_nodes, "loop invariant with symbolic bounds not reached"
