"""E5 — Fig. 6: NAS-CG transpose matching on square and rectangular grids.

Regenerates: the HSM derivations of Section VIII-A/B — the send expression's
HSM, the surjection proof, and the identity-composition proof — for both the
``ncols == nrows`` and ``ncols == 2*nrows`` cases, validated concretely.
"""

import pytest

from benchmarks.conftest import header
from repro import analyze_cartesian, programs, run_program
from repro.analyses.simple_symbolic import analyze_program

CASES = [
    ("transpose_square", 16, [4, 4]),
    ("transpose_rect", 18, [3, 6]),
]


@pytest.mark.parametrize("name,num_procs,inputs", CASES)
def test_fig6_transpose(benchmark, emit, name, num_procs, inputs):
    spec = programs.get(name)

    result, cfg, client = benchmark(lambda: analyze_cartesian(spec))
    assert not result.gave_up, result.give_up_reason

    simple_result, _, _ = analyze_program(spec)

    trace = run_program(spec.parse(), num_procs, inputs=list(inputs), cfg=cfg)
    dynamic = set(trace.topology().node_edges)

    rows = [header(f"E5 / Fig. 6 — {name}")]
    rows.append(f"grid invariants collected: {client.invariants}")
    rows.append(f"affine-only client (Sec. VII): gave_up={simple_result.gave_up}")
    rows.append(f"HSM client (Sec. VIII):        gave_up={result.gave_up}")
    for record in result.match_records:
        rows.append(f"  match: {record}")
    rows.append(
        f"validation at np={num_procs}: static == dynamic is "
        f"{dynamic == set(result.matches)}"
    )
    rows.append(
        "paper shape: HSMs prove identity + surjection where affine matching "
        "fails  -- reproduced"
    )
    emit(*rows)
    assert simple_result.gave_up
    assert dynamic == set(result.matches)
