"""E2 — Fig. 2: parallel constant propagation through a message exchange.

Regenerates: both processes provably print 5; the traditional sequential
constant propagation proves nothing (it must havoc receive targets).
"""

from benchmarks.conftest import header
from repro import programs
from repro.analyses.constprop import propagate_constants


def test_fig2_constant_propagation(benchmark, emit):
    spec = programs.get("pingpong")

    report, result, cfg = benchmark(lambda: propagate_constants(spec))
    assert not report.gave_up

    rows = [header("E2 / Fig. 2 — constant propagation across the exchange")]
    rows.append(f"{'print site':>12} {'parallel (pCFG)':>16} {'sequential':>11}")
    for node_id in sorted(report.parallel):
        label = cfg.node(node_id).label
        rows.append(
            f"{label:>12} {str(report.parallel[node_id]):>16} "
            f"{str(report.sequential[node_id]):>11}"
        )
    rows.append(
        f"parallel-only wins: {report.wins()} of {len(report.parallel)} "
        "print sites"
    )
    rows.append(
        "paper shape: both prints proven 5 by the pCFG analysis, neither by "
        "sequential analysis  -- reproduced"
    )
    emit(*rows)
    assert set(report.parallel.values()) == {5}
    assert all(v is None for v in report.sequential.values())
