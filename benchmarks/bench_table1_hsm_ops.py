"""E6 — Table I: HSM operations and equality rules.

Regenerates: the paper's worked operation examples and the equality-rule
instances of Table I, each validated by exhaustive concrete enumeration,
plus throughput benchmarks of the operations and the prover.
"""

from benchmarks.conftest import header
from repro.expr.poly import Poly
from repro.expr.rewrite import InvariantSystem
from repro.hsm.hsm import HSM, HSMOps, enumerate_hsm
from repro.hsm.prover import HSMProver


def _ops():
    inv = InvariantSystem()
    inv.assume_positive("nrows", "ncols", "np")
    inv.add_equality("np", Poly.var("nrows") * Poly.var("ncols"))
    return inv, HSMOps(inv)


def test_table1_operations(benchmark, emit):
    inv, ops = _ops()
    rows = [header("E6 / Table I — HSM operations")]

    # paper example: [12 : 15, 2] % 6 = [[0 : 3, 2] : 5, 0]
    mod_in = HSM.of(12, 15, 2)
    mod_out = ops.mod(mod_in, Poly.const(6))
    rows.append(f"[12:15,2] % 6  =  {mod_out}")
    assert enumerate_hsm(mod_out, {}) == [v % 6 for v in enumerate_hsm(mod_in, {})]

    # paper example: [20 : 6, 5] / 10 = <2,2,3,3,4,4>
    div_in = HSM.of(20, 6, 5)
    div_out = ops.div(div_in, Poly.const(10))
    rows.append(f"[20:6,5] / 10  =  {div_out}")
    assert enumerate_hsm(div_out, {}) == [v // 10 for v in enumerate_hsm(div_in, {})]

    # nesting rule: [[2:3,2]:2,6] = [2:6,2]
    nested = HSM.of(HSM.of(2, 3, 2), 2, 6)
    rows.append(f"normalize([[2:3,2]:2,6])  =  {ops.normalize(nested)}")
    assert ops.normalize(nested) == HSM.of(2, 6, 2)

    # interleave + swap set-equalities, via the prover
    prover = HSMProver(inv)
    interleaved = HSM.of(HSM.of(2, 3, 4), 2, 2)
    rows.append(
        f"[[2:3,4]:2,2] ~set~ [2:6,2]: "
        f"{prover.set_equal(interleaved, HSM.of(2, 6, 2))}"
    )
    swapped_a = HSM.of(HSM.of(1, 2, 1), 3, 10)
    swapped_b = HSM.of(HSM.of(1, 3, 10), 2, 1)
    rows.append(f"[[1:2,1]:3,10] ~set~ [[1:3,10]:2,1]: {prover.set_equal(swapped_a, swapped_b)}")

    def workload():
        total = 0
        for q in (2, 3, 6, 10):
            h = HSM.of(0, 60, 1)
            if ops.mod(h, Poly.const(q)) is not None:
                total += 1
            if ops.div(h, Poly.const(q)) is not None:
                total += 1
        return total

    count = benchmark(workload)
    assert count == 8
    rows.append("paper shape: all Table I laws hold concretely  -- reproduced")
    emit(*rows)
