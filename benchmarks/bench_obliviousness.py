"""E10 — Appendix: interleaving-obliviousness of the execution model.

Regenerates: for every deterministic corpus program, all schedulers (round
robin, reverse, greedy, three random seeds) produce identical observable
behaviour — the property that licenses the engine's single-interleaving
exploration.  Also benchmarks interpreter throughput.
"""

from benchmarks.conftest import header
from repro import programs, run_program
from repro.runtime.scheduler import standard_schedulers

PROBES = {"transpose_square": (9, [3, 3]), "transpose_rect": (8, [2, 4])}


def test_obliviousness_battery(benchmark, emit):
    rows = [header("E10 / Appendix — interleaving obliviousness")]
    rows.append(f"{'program':24s} {'schedulers':>11} {'distinct behaviours':>20}")
    checked = 0
    for spec in programs.all_specs():
        if spec.name == "stuck_receive":
            continue  # deadlocks by design
        num_procs, inputs = PROBES.get(spec.name, (8, None))
        fingerprints = set()
        schedulers = standard_schedulers()
        for scheduler in schedulers:
            trace = run_program(
                spec.parse(),
                num_procs,
                inputs=list(inputs) if inputs else None,
                scheduler=scheduler,
            )
            fingerprints.add(trace.observable())
        rows.append(f"{spec.name:24s} {len(schedulers):>11} {len(fingerprints):>20}")
        assert len(fingerprints) == 1, spec.name
        checked += 1
    rows.append(
        f"paper shape: {checked} programs x 6 schedulers, always 1 observable "
        "behaviour  -- reproduced"
    )
    emit(*rows)

    program = programs.get("exchange_with_root").parse()
    benchmark(lambda: run_program(program, 32))
