"""Message expression -> HSM conversion (Section VIII-A).

For an expression executed by a process set ``[l .. l+n-1]``, the variable
``id`` becomes the HSM ``[l : n, 1]`` (process ``i`` maps to its rank) and
process-uniform parameters become scalars.  The Table I operations then fold
the expression into a single HSM describing, per process, the value of the
expression — e.g. the destination rank of a send.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.expr.poly import Poly
from repro.expr.rewrite import InvariantSystem
from repro.hsm.hsm import HSM, Base, HSMOps
from repro.lang.ast import BinOp, Expr, Num, UnaryOp, Var


def pset_to_hsm(start: Poly, size: Poly) -> HSM:
    """The HSM of ``id`` over the set ``[start .. start+size-1]``."""
    return HSM.of(start, size, 1)


def expr_to_hsm(
    expr: Expr, domain: Base, inv: InvariantSystem
) -> Optional[Base]:
    """Evaluate an MPL expression with ``id`` bound to ``domain``.

    Returns the resulting HSM, or None when some operation's side conditions
    cannot be proven.  If the expression never mentions ``id`` the uniform
    value is broadcast over the domain's length.
    """
    ops = HSMOps(inv)
    result = _convert(expr, domain, ops)
    if result is None:
        return None
    if isinstance(result, Poly):
        # uniform value: every process computes the same thing
        return HSM(result, ops.length(domain), Poly.const(0))
    return ops.normalize(result)


def _convert(expr: Expr, domain: Base, ops: HSMOps) -> Optional[Union[Base, Poly]]:
    inv = ops.inv
    if isinstance(expr, Num):
        return Poly.const(expr.value)
    if isinstance(expr, Var):
        if expr.name == "id":
            return domain
        return inv.normalize(Poly.var(expr.name))
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = _convert(expr.operand, domain, ops)
        if inner is None:
            return None
        if isinstance(inner, Poly):
            return -inner
        return ops.mul_scalar(inner, Poly.const(-1))
    if not isinstance(expr, BinOp):
        return None
    left = _convert(expr.left, domain, ops)
    right = _convert(expr.right, domain, ops)
    if left is None or right is None:
        return None
    left_scalar = isinstance(left, Poly)
    right_scalar = isinstance(right, Poly)
    if expr.op == "+":
        if left_scalar and right_scalar:
            return left + right
        if left_scalar:
            return ops.add_scalar(right, left)
        if right_scalar:
            return ops.add_scalar(left, right)
        return ops.add(left, right)
    if expr.op == "-":
        if left_scalar and right_scalar:
            return left - right
        if right_scalar:
            return ops.add_scalar(left, -right)
        if left_scalar:
            negated = ops.mul_scalar(right, Poly.const(-1))
            return ops.add_scalar(negated, left)
        negated = ops.mul_scalar(right, Poly.const(-1))
        return ops.add(left, negated)
    if expr.op == "*":
        if left_scalar and right_scalar:
            return left * right
        if left_scalar:
            return ops.mul_scalar(right, left)
        if right_scalar:
            return ops.mul_scalar(left, right)
        return None  # HSM x HSM products are outside Table I
    if expr.op == "/":
        if not right_scalar:
            return None
        if left_scalar:
            return inv.exact_div(left, right)
        return ops.div(left, right)
    if expr.op == "%":
        if not right_scalar:
            return None
        if left_scalar:
            if inv.exact_div(left, right) is not None:
                return Poly.const(0)
            lc, rc = left.as_constant(), right.as_constant()
            if lc is not None and rc is not None and rc > 0:
                return Poly.const(lc % rc)
            return None
        return ops.mod(left, right)
    return None
