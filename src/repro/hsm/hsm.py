"""The HSM structure and its Table I arithmetic operations.

Design notes
------------

* An :class:`HSM` node is ``[base : rep, stride]`` where ``base`` is either
  another HSM or a :class:`~repro.expr.poly.Poly` leaf (a single value).
* All parameters are polynomials; every question about them (equality,
  divisibility, sign) is answered by an
  :class:`~repro.expr.rewrite.InvariantSystem`, so the same code handles
  concrete and symbolic extents.
* Operations are *guarded rewrites*: each returns ``None`` when its side
  conditions cannot be proven — the client then simply fails to match, which
  is sound (the framework falls back to ``T``).

The division and modulus rules generalize the paper's two cases:

``/``:
  1. leaf: exact polynomial division (or constant floor);
  2. ``q | stride``: ``[E : r, s] / q = [E/q : r, s/q]``;
  3. block-constant: when ``E%q`` stays below ``q`` across all shifts,
     ``[E : r, s] / q = [E/q : r, 0]``;
  4. regroup ``[e : r1*r2, s] = [[e : r1, s] : r2, r1*s]`` to expose a
     divisible stride (the paper's ``[20 : 6, 5] / 10`` example).

``%``:
  1. leaf: ``0 <= e < q`` (identity), ``q | e`` (zero), constants;
  2. ``q | stride``: ``[E : r, s] % q = [E%q : r, 0]``;
  3. containment: ``[E%q : r, s]`` when the reduced sequence stays below
     ``q``;
  4. regroup, as for division (the paper's ``[12 : 15, 2] % 6`` example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.expr.poly import Poly
from repro.expr.rewrite import InvariantSystem

Base = Union["HSM", Poly]


@dataclass(frozen=True)
class HSM:
    """``[base : rep, stride]`` — immutable."""

    base: Base
    rep: Poly
    stride: Poly

    @staticmethod
    def leaf(value) -> Poly:
        """A leaf (single value) — just a Poly, for symmetry."""
        return Poly.coerce(value)

    @classmethod
    def of(cls, base, rep, stride) -> "HSM":
        """Build a node coercing all parameters."""
        base = base if isinstance(base, HSM) else Poly.coerce(base)
        return cls(base, Poly.coerce(rep), Poly.coerce(stride))

    def profile(self) -> List[Poly]:
        """Repetition counts from innermost to outermost level."""
        node: Base = self
        stack = []
        while isinstance(node, HSM):
            stack.append(node.rep)
            node = node.base
        return list(reversed(stack))

    def __str__(self) -> str:
        return f"[{self.base} : {self.rep}, {self.stride}]"


def enumerate_hsm(h: Base, env) -> List[int]:
    """Concrete sequence under a total assignment (testing oracle)."""
    if isinstance(h, Poly):
        return [h.evaluate(env)]
    inner = enumerate_hsm(h.base, env)
    rep = h.rep.evaluate(env)
    stride = h.stride.evaluate(env)
    out: List[int] = []
    for i in range(rep):
        out.extend(value + i * stride for value in inner)
    return out


class HSMOps:
    """Table I operations over HSMs, guarded by an invariant system."""

    def __init__(self, inv: InvariantSystem, max_depth: int = 16):
        self.inv = inv
        self.max_depth = max_depth

    # ----------------------------------------------------------------- basics

    def length(self, h: Base) -> Poly:
        """Number of elements in the sequence."""
        if isinstance(h, Poly):
            return Poly.const(1)
        return self.inv.normalize(self.length(h.base) * h.rep)

    def normalize(self, h: Base) -> Base:
        """Canonical form: normalized polys, no unit levels, flattened."""
        if isinstance(h, Poly):
            return self.inv.normalize(h)
        base = self.normalize(h.base)
        rep = self.inv.normalize(h.rep)
        stride = self.inv.normalize(h.stride)
        if rep == Poly.const(1):
            return base
        if isinstance(base, HSM):
            # flatten  [[e : r2, s2] : r, r2*s2]  =  [e : r2*r, s2]
            if self.inv.equal(stride, base.rep * base.stride):
                return self.normalize(HSM(base.base, base.rep * rep, base.stride))
            # a zero-stride level over a zero-stride level collapses
            if stride.is_zero() and base.stride.is_zero():
                return self.normalize(HSM(base.base, base.rep * rep, Poly.const(0)))
        return HSM(base, rep, stride)

    def equal(self, a: Base, b: Base) -> bool:
        """Structural sequence equality of normal forms."""
        a = self.normalize(a)
        b = self.normalize(b)
        return self._struct_equal(a, b)

    def _struct_equal(self, a: Base, b: Base) -> bool:
        if isinstance(a, Poly) and isinstance(b, Poly):
            return self.inv.equal(a, b)
        if isinstance(a, HSM) and isinstance(b, HSM):
            return (
                self.inv.equal(a.rep, b.rep)
                and self.inv.equal(a.stride, b.stride)
                and self._struct_equal(a.base, b.base)
            )
        return False

    # -------------------------------------------------------------- min / max

    def min_element(self, h: Base) -> Optional[Poly]:
        """Smallest element, provable only for non-negative strides."""
        if isinstance(h, Poly):
            return self.inv.normalize(h)
        if not self.inv.is_nonnegative(h.stride):
            return None
        return self.min_element(h.base)

    def max_element(self, h: Base) -> Optional[Poly]:
        """Largest element, provable only for non-negative strides."""
        if isinstance(h, Poly):
            return self.inv.normalize(h)
        if not self.inv.is_nonnegative(h.stride):
            return None
        inner = self.max_element(h.base)
        if inner is None:
            return None
        return self.inv.normalize(inner + (h.rep - 1) * h.stride)

    # ------------------------------------------------------------------- add

    def add(self, a: Base, b: Base) -> Optional[Base]:
        """Pointwise sum of equal-length sequences (Table I addition)."""
        pair = self._align(a, b, self.max_depth)
        if pair is None:
            return None
        a, b = pair
        return self._add_aligned(a, b)

    def _add_aligned(self, a: Base, b: Base) -> Optional[Base]:
        if isinstance(a, Poly) and isinstance(b, Poly):
            return self.inv.normalize(a + b)
        if isinstance(a, HSM) and isinstance(b, HSM):
            base = self._add_aligned(a.base, b.base)
            if base is None:
                return None
            return HSM(base, a.rep, self.inv.normalize(a.stride + b.stride))
        return None

    def _align(self, a: Base, b: Base, fuel: int) -> Optional[Tuple[Base, Base]]:
        """Reshape both HSMs to a common level profile (splitting only)."""
        if fuel <= 0:
            return None
        if isinstance(a, Poly) and isinstance(b, Poly):
            return (a, b)
        if isinstance(a, Poly) or isinstance(b, Poly):
            return None
        if self.inv.equal(a.rep, b.rep):
            inner = self._align(a.base, b.base, fuel - 1)
            if inner is None:
                return None
            return (HSM(inner[0], a.rep, a.stride), HSM(inner[1], b.rep, b.stride))
        # outer reps differ: regroup the larger one so the outer reps match
        ratio = self.inv.exact_div(a.rep, b.rep)
        if ratio is not None and self._provably_ge_one(ratio):
            return self._align(self._split_outer(a, b.rep, ratio), b, fuel - 1)
        ratio = self.inv.exact_div(b.rep, a.rep)
        if ratio is not None and self._provably_ge_one(ratio):
            return self._align(a, self._split_outer(b, a.rep, ratio), fuel - 1)
        return None

    def _split_outer(self, h: HSM, outer_rep: Poly, inner_factor: Poly) -> HSM:
        """Regroup ``[e : outer_rep*inner_factor, s]`` as
        ``[[e : inner_factor, s] : outer_rep, inner_factor*s]`` (a pure
        re-bracketing of the same sequence)."""
        inner = HSM(h.base, inner_factor, h.stride)
        return HSM(inner, outer_rep, self.inv.normalize(inner_factor * h.stride))

    def _provably_ge_one(self, poly: Poly) -> bool:
        return self.inv.is_positive(poly)

    # -------------------------------------------------------------- scalar ops

    def add_scalar(self, h: Base, k: Poly) -> Base:
        """Shift every element by the uniform value ``k``."""
        if isinstance(h, Poly):
            return self.inv.normalize(h + k)
        return HSM(self.add_scalar(h.base, k), h.rep, h.stride)

    def mul_scalar(self, h: Base, k: Poly) -> Base:
        """Multiply every element by the uniform value ``k``."""
        if isinstance(h, Poly):
            return self.inv.normalize(h * k)
        return HSM(
            self.mul_scalar(h.base, k), h.rep, self.inv.normalize(h.stride * k)
        )

    # ---------------------------------------------------------------- division

    def div(self, h: Base, q: Poly, fuel: Optional[int] = None) -> Optional[Base]:
        """Flooring division of every element by the uniform positive ``q``."""
        fuel = self.max_depth if fuel is None else fuel
        if fuel <= 0:
            return None
        q = self.inv.normalize(q)
        if q == Poly.const(1):
            return h
        if isinstance(h, Poly):
            exact = self.inv.exact_div(h, q)
            if exact is not None:
                return exact
            h_const, q_const = h.as_constant(), q.as_constant()
            if h_const is not None and q_const is not None and q_const > 0:
                return Poly.const(h_const // q_const)
            # 0 <= h < q  =>  floor is 0
            if self.inv.is_nonnegative(h) and self.inv.is_nonnegative(q - 1 - h):
                return Poly.const(0)
            return None
        # rule 2: q divides the stride
        stride_div = self.inv.exact_div(h.stride, q)
        if stride_div is not None or h.stride.is_zero():
            inner = self.div(h.base, q, fuel - 1)
            if inner is not None:
                new_stride = stride_div if stride_div is not None else Poly.const(0)
                return HSM(inner, h.rep, new_stride)
        # rule 3: the remainder never crosses a q-block boundary
        quotient = self.div(h.base, q, fuel - 1)
        remainder = self.mod(h.base, q, fuel - 1)
        if quotient is not None and remainder is not None:
            top = self.max_element(remainder)
            if top is not None and self.inv.is_nonnegative(
                q - 1 - top - (h.rep - 1) * h.stride
            ):
                return HSM(quotient, h.rep, Poly.const(0))
        # rule 4: regroup to expose a divisible stride
        regrouped = self._regroup_for(h, q)
        if regrouped is not None:
            return self.div(regrouped, q, fuel - 1)
        return None

    # ------------------------------------------------------------------ modulus

    def mod(self, h: Base, q: Poly, fuel: Optional[int] = None) -> Optional[Base]:
        """Remainder of every element modulo the uniform positive ``q``."""
        fuel = self.max_depth if fuel is None else fuel
        if fuel <= 0:
            return None
        q = self.inv.normalize(q)
        if q == Poly.const(1):
            return self._zeros_like(h)
        if isinstance(h, Poly):
            h_const, q_const = h.as_constant(), q.as_constant()
            if h_const is not None and q_const is not None and q_const > 0:
                return Poly.const(h_const % q_const)
            if self.inv.exact_div(h, q) is not None:
                return Poly.const(0)
            if self.inv.is_nonnegative(h) and self.inv.is_nonnegative(q - 1 - h):
                return h
            return None
        # rule 2: q divides the stride — the shift vanishes
        if h.stride.is_zero() or self.inv.exact_div(h.stride, q) is not None:
            inner = self.mod(h.base, q, fuel - 1)
            if inner is not None:
                return HSM(inner, h.rep, Poly.const(0))
        # rule 3: reduce the base, then containment below q
        reduced = self.mod(h.base, q, fuel - 1)
        if reduced is not None:
            top = self.max_element(reduced)
            if top is not None and self.inv.is_nonnegative(
                q - 1 - top - (h.rep - 1) * h.stride
            ):
                return HSM(reduced, h.rep, h.stride)
        # rule 4: regroup to expose a divisible stride
        regrouped = self._regroup_for(h, q)
        if regrouped is not None:
            return self.mod(regrouped, q, fuel - 1)
        return None

    def _zeros_like(self, h: Base) -> Base:
        if isinstance(h, Poly):
            return Poly.const(0)
        return HSM(self._zeros_like(h.base), h.rep, Poly.const(0))

    def _regroup_for(self, h: HSM, q: Poly) -> Optional[HSM]:
        """``[e : r, s] -> [[e : q/s, s] : r/(q/s), q]`` when exact.

        Groups ``q/s`` consecutive shifts so the outer stride becomes
        exactly ``q`` (divisible), enabling rule 2 one level up.
        """
        if h.stride.is_zero():
            return None
        chunk = self.inv.exact_div(q, h.stride)
        if chunk is None or not self._provably_ge_one(chunk):
            return None
        if self.inv.equal(chunk, Poly.const(1)):
            return None
        outer = self.inv.exact_div(h.rep, chunk)
        if outer is None or not self._provably_ge_one(outer):
            return None
        if self.inv.equal(outer, Poly.const(1)):
            # a single chunk: regrouping adds a unit level, which normalize
            # strips, so guard against a no-progress loop by handling the
            # whole-sequence case through rule 3 instead
            return None
        inner = HSM(h.base, chunk, h.stride)
        return HSM(inner, outer, self.inv.normalize(chunk * h.stride))
