"""Heuristically guided search prover for HSM equalities (Section VIII-B).

Proving two HSMs sequence-equal or set-equal requires finding a chain of
Table I rewrite rules turning one into the other.  The paper mechanizes this
"by using heuristically guided search, a standard technique in automated
theorem provers"; we implement a bounded breadth-first search over the
normalized rewrite graph, with the normal form acting as a strong
canonicalizer so most proofs close in one or two steps.
"""

from __future__ import annotations

from collections import deque
from typing import Set

from repro.expr.rewrite import InvariantSystem
from repro.hsm.hsm import Base, HSMOps
from repro.hsm.rules import seq_rewrites, set_rewrites
from repro.obs import recorder as obs


def _fingerprint(h: Base) -> str:
    return str(h)


class HSMProver:
    """Bounded-search equality prover over the Table I rules."""

    def __init__(
        self,
        inv: InvariantSystem,
        max_states: int = 400,
        max_depth: int = 8,
    ):
        self.inv = inv
        self.ops = HSMOps(inv)
        self.max_states = max_states
        self.max_depth = max_depth
        #: proof statistics (states explored per query), for the benches
        self.explored_counts = []
        #: memoized verdicts: (fingerprint(a), fingerprint(b), set_preserving)
        #: -> bool.  Sound per instance: verdicts depend only on the operand
        #: HSMs and this prover's invariant system and search budget.
        self._verdicts = {}
        #: provenance hook: when a list, every query appends a JSON-plain
        #: record ``{lhs, rhs, mode, verdict, explored, cached}`` — the
        #: proof/refutation trace attached to match-attempt events.  None
        #: (the default) keeps queries trace-free.
        self.trace = None

    # -- queries ---------------------------------------------------------------

    def seq_equal(self, a: Base, b: Base) -> bool:
        """Do the two HSMs denote the same sequence (same order)?"""
        return self._search(a, b, set_preserving=False)

    def set_equal(self, a: Base, b: Base) -> bool:
        """Do the two HSMs denote the same set of values (any order)?"""
        if self._search(a, b, set_preserving=False):
            return True
        return self._search(a, b, set_preserving=True)

    def is_identity_on(self, composed: Base, domain: Base) -> bool:
        """Section VIII-B(1): the composed expression equals the domain
        sequence element-for-element."""
        return self.seq_equal(composed, domain)

    def is_surjection_onto(self, image: Base, target: Base) -> bool:
        """Section VIII-B(2): the image covers the target set."""
        lhs_len = self.ops.length(image)
        rhs_len = self.ops.length(target)
        if not self.inv.equal(lhs_len, rhs_len):
            return False
        return self.set_equal(image, target)

    # -- search -----------------------------------------------------------------

    def _search(self, a: Base, b: Base, set_preserving: bool) -> bool:
        key = (_fingerprint(a), _fingerprint(b), set_preserving)
        cached = self._verdicts.get(key)
        if cached is not None:
            obs.incr("hsm.prove.cache_hits")
            self._trace(key, cached, explored=0, cached=True)
            return cached
        with obs.span("hsm.prove"):
            found = self._search_impl(a, b, set_preserving)
        self._verdicts[key] = found
        obs.incr("hsm.proof.attempts")
        obs.incr("hsm.proof.successes" if found else "hsm.proof.failures")
        if self.explored_counts:
            obs.observe("hsm.proof.explored", self.explored_counts[-1])
        self._trace(
            key,
            found,
            explored=self.explored_counts[-1] if self.explored_counts else 0,
            cached=False,
        )
        return found

    def _trace(self, key, verdict: bool, explored: int, cached: bool) -> None:
        if self.trace is None:
            return
        lhs, rhs, set_preserving = key
        self.trace.append(
            {
                "lhs": lhs,
                "rhs": rhs,
                "mode": "set" if set_preserving else "seq",
                "verdict": verdict,
                "explored": explored,
                "cached": cached,
            }
        )

    def _search_impl(self, a: Base, b: Base, set_preserving: bool) -> bool:
        start = self.ops.normalize(a)
        goal = self.ops.normalize(b)
        if self.ops.equal(start, goal):
            self.explored_counts.append(1)
            return True
        seen: Set[str] = {_fingerprint(start)}
        goal_print = _fingerprint(goal)
        queue = deque([(start, 0)])
        explored = 1
        while queue and explored < self.max_states:
            node, depth = queue.popleft()
            if depth >= self.max_depth:
                continue
            neighbors = list(seq_rewrites(node, self.ops))
            if set_preserving:
                neighbors.extend(set_rewrites(node, self.ops))
            for neighbor in neighbors:
                normal = self.ops.normalize(neighbor)
                print_ = _fingerprint(normal)
                if print_ in seen:
                    continue
                explored += 1
                if print_ == goal_print or self.ops.equal(normal, goal):
                    self.explored_counts.append(explored)
                    return True
                seen.add(print_)
                queue.append((normal, depth + 1))
        self.explored_counts.append(explored)
        return False
