"""Table I sequence- and set-equality rewrite rules.

Each rule takes a (normalized) HSM and yields zero or more rewritten HSMs
that denote the same *sequence* (sequence rules) or the same *set of values*
in a possibly different order (set rules).  The prover searches over these.

Sequence rules (order-preserving):

* nest/flatten:  ``[e : r*r', s]  =  [[e : r, s] : r', r*s]``  (both ways)

Set rules (order-changing):

* interleave:    ``[[e : r, r'*s] : r', s]  ~  [e : r*r', s]``
* level swap:    ``[[e : r, s] : r', s']  ~  [[e : r', s'] : r, s]``
"""

from __future__ import annotations

from typing import Iterator, List

from repro.expr.poly import Poly
from repro.expr.rewrite import InvariantSystem
from repro.hsm.hsm import HSM, Base, HSMOps
from repro.obs import recorder as obs


def _rebuild(h: Base, path: List[int], replacement: Base) -> Base:
    """Replace the sub-HSM at ``path`` (list of 0s, descending into bases)."""
    if not path:
        return replacement
    assert isinstance(h, HSM)
    return HSM(_rebuild(h.base, path[1:], replacement), h.rep, h.stride)


def _subnodes(h: Base, path=None) -> Iterator:
    """All (path, node) pairs, outermost first."""
    path = path or []
    if isinstance(h, HSM):
        yield (path, h)
        yield from _subnodes(h.base, path + [0])


def seq_rewrites(h: Base, ops: HSMOps) -> Iterator[Base]:
    """All single-step sequence-preserving rewrites of ``h``."""
    inv = ops.inv
    for path, node in _subnodes(h):
        # flatten: [[e:r,s]:r', r*s] = [e : r*r', s]
        if isinstance(node.base, HSM) and inv.equal(
            node.stride, node.base.rep * node.base.stride
        ):
            flat = HSM(node.base.base, node.base.rep * node.rep, node.base.stride)
            obs.incr("hsm.rule.flatten")
            yield _rebuild(h, path, flat)
        # nest: [e : r*r', s] = [[e : f, s] : r/f, f*s] for factor splits
        for factor in _candidate_factors(node.rep, inv):
            outer = inv.exact_div(node.rep, factor)
            if outer is None or not inv.is_positive(outer):
                continue
            if inv.equal(factor, Poly.const(1)) or inv.equal(outer, Poly.const(1)):
                continue
            inner = HSM(node.base, factor, node.stride)
            nested = HSM(inner, outer, inv.normalize(factor * node.stride))
            obs.incr("hsm.rule.nest")
            yield _rebuild(h, path, nested)


def set_rewrites(h: Base, ops: HSMOps) -> Iterator[Base]:
    """All single-step set-preserving (order-changing) rewrites of ``h``."""
    inv = ops.inv
    for path, node in _subnodes(h):
        if not isinstance(node.base, HSM):
            continue
        inner = node.base
        # interleave:  [[e : r, r'*s] : r', s]  ~  [e : r*r', s]
        if inv.equal(inner.stride, node.rep * node.stride):
            merged = HSM(inner.base, inner.rep * node.rep, node.stride)
            obs.incr("hsm.rule.interleave")
            yield _rebuild(h, path, merged)
        # reverse interleave: [e : r*r', s] ~ [[e : r, r'*s] : r', s]
        # (generated via the swap + flatten combination; omitted directly)
        # level swap: [[e : r, s] : r', s'] ~ [[e : r', s'] : r, s]
        swapped = HSM(
            HSM(inner.base, node.rep, node.stride), inner.rep, inner.stride
        )
        obs.incr("hsm.rule.swap")
        yield _rebuild(h, path, swapped)


def _candidate_factors(rep: Poly, inv: InvariantSystem) -> List[Poly]:
    """Plausible splitting factors of a repetition count.

    For symbolic reps we try each variable occurring in the (normalized)
    polynomial, plus small constant factors for concrete reps — the
    heuristic guidance the paper mentions for its rule search.
    """
    rep = inv.normalize(rep)
    candidates: List[Poly] = []
    for name in rep.variables():
        candidates.append(Poly.var(name))
        candidates.append(Poly.var(name) * Poly.var(name))
    constant = rep.as_constant()
    if constant is not None:
        for k in range(2, min(constant, 13)):
            if constant % k == 0:
                candidates.append(Poly.const(k))
    candidates.append(Poly.const(2))
    unique = []
    for cand in candidates:
        if all(cand != seen for seen in unique):
            unique.append(cand)
    return unique
