"""Hierarchical Sequence Maps (Section VIII).

An HSM ``[e : r, s]`` denotes the sequence made of ``r`` copies of the
sequence ``e``, the ``i``-th copy shifted by ``i * s``.  Leaves are
polynomials over process-uniform parameters (``nrows``, ``ncols``, ...), so
repetition counts and strides may be symbolic; all symbolic reasoning is
performed modulo an :class:`~repro.expr.rewrite.InvariantSystem` seeded from
the program's ``assert`` statements (``np == nrows * ncols`` ...).

The package provides:

* :class:`~repro.hsm.hsm.HSM` — the structure, with the Table I operations
  ``+``, scalar ``*``, ``/`` and ``%`` implemented as guarded rewrite rules;
* :mod:`~repro.hsm.rules` — the sequence- and set-equality rules of Table I
  (nest/flatten, interleave, level swap);
* :class:`~repro.hsm.prover.HSMProver` — heuristically guided search that
  proves sequence- and set-equality, powering the identity and surjection
  conditions of send-receive matching (Section VIII-B);
* :mod:`~repro.hsm.convert` — conversion of MPL message expressions over a
  process set into a single HSM (the mechanical derivation of
  Section VIII-A).
"""

from repro.hsm.convert import expr_to_hsm, pset_to_hsm
from repro.hsm.hsm import HSM, HSMOps
from repro.hsm.prover import HSMProver

__all__ = ["HSM", "HSMOps", "HSMProver", "expr_to_hsm", "pset_to_hsm"]
