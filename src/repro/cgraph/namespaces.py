"""Process-set variable namespaces.

The Section VII-A state analysis annotates every variable with the id of the
process set it lives on, so invariants *between* process sets (e.g. "the
value received by set B equals variable x on set A") are ordinary
constraints in one shared graph.  ``np`` is the one global: the process
count is identical on every process, so it lives unqualified.
"""

from __future__ import annotations

from typing import Iterable, Set

#: variables shared by all process sets (same value everywhere)
GLOBALS: Set[str] = {"np"}

_SEPARATOR = "::"


def qualify(set_id: object, var: str) -> str:
    """Qualified name of ``var`` on process set ``set_id``.

    Globals pass through unqualified.
    """
    if var in GLOBALS:
        return var
    return f"ps{set_id}{_SEPARATOR}{var}"


def unqualify(name: str) -> str:
    """Strip the namespace prefix from a qualified name."""
    if _SEPARATOR in name:
        return name.split(_SEPARATOR, 1)[1]
    return name


def namespace_of(name: str) -> str:
    """The ``psN`` namespace tag of a qualified name ('' for globals)."""
    if _SEPARATOR in name:
        return name.split(_SEPARATOR, 1)[0]
    return ""


def is_in_namespace(name: str, set_id: object) -> bool:
    """True iff the qualified name belongs to process set ``set_id``."""
    return namespace_of(name) == f"ps{set_id}"


def namespace_vars(names: Iterable[str], set_id: object) -> Set[str]:
    """All names among ``names`` belonging to ``set_id``."""
    return {name for name in names if is_in_namespace(name, set_id)}


def rename_namespace(name: str, old_id: object, new_id: object) -> str:
    """Move a qualified name from one process-set namespace to another."""
    if is_in_namespace(name, old_id):
        return qualify(new_id, unqualify(name))
    return name


def drop_namespace(names: Iterable[str], set_id: object) -> Set[str]:
    """Names that remain after deleting a whole namespace."""
    return {name for name in names if not is_in_namespace(name, set_id)}
