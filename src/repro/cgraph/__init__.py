"""Constraint-graph (difference-bound) program state abstraction.

This is the Section VII-A state analysis: application state is a conjunction
of inequalities of the form ``j <= i + c`` over program variables, stored as
a weighted graph (equivalently, a difference-bound matrix).  Key operations —
transitive closure, meet, join, widening, affine assignment — follow CLR
chapter 24.4/25.5 and Shaham et al., as the paper prescribes.

Process-set namespaces: each process set owns a private copy of every
variable (including ``id``); helpers in :mod:`repro.cgraph.namespaces`
qualify, copy, rename and drop whole namespaces as sets split and merge.

Instrumentation: every transitive closure records its cost in
:class:`~repro.cgraph.stats.ClosureStats`, reproducing the Section IX
performance profile (closure counts, average variable counts, closure time
share).
"""

from repro.cgraph.constraint_graph import ConstraintGraph, INF
from repro.cgraph.namespaces import (
    GLOBALS,
    drop_namespace,
    namespace_of,
    qualify,
    rename_namespace,
    unqualify,
)
from repro.cgraph.stats import ClosureStats, global_stats, reset_global_stats

__all__ = [
    "ConstraintGraph",
    "INF",
    "ClosureStats",
    "global_stats",
    "reset_global_stats",
    "qualify",
    "unqualify",
    "namespace_of",
    "rename_namespace",
    "drop_namespace",
    "GLOBALS",
]
