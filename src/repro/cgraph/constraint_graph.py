"""Difference-bound constraint graphs.

A :class:`ConstraintGraph` is a conjunction of inequalities ``y <= x + c``
over named integer variables, plus a distinguished zero node so absolute
bounds (``x <= 5``) are the special case ``x <= ZERO + 5``.  This is the
constraint-graph representation of CLR ch. 24.4/25.5 used by the paper's
Section VII-A state analysis.

Consistency is maintained by transitive closure (Floyd–Warshall, O(n^3)) or
by an incremental single-constraint update (O(n^2)); both are instrumented
through :mod:`repro.cgraph.stats` because reproducing the paper's Section IX
profile requires counting exactly these operations.

Representation sharing (PR 2).  The bound matrix is **copy-on-write**:
:meth:`ConstraintGraph.copy` shares the underlying dict-of-dicts between
parent and clone, and the first in-place mutation of either materializes a
private copy (``cgraph.cow.shares`` / ``cgraph.cow.materializations``
counters).  Closed graphs cache a canonical *fingerprint* of their
constraint set, so :meth:`equivalent_to` is a hash comparison instead of a
matrix walk, and both closure algorithms are memoized in a process-wide
table — the full closure keyed by the unclosed constraint set, the
incremental closure keyed by ``(fingerprint, added constraint)`` — with
hits reported as ``cgraph.closure.cache_hits``.  The ``naive_copy`` flag
restores the pre-PR-2 eager-copy, cache-free behavior for A/B property
tests, and ``naive_closure`` (the Section IX ablation) also bypasses every
cache so the paper's prototype cost profile stays reproducible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.cgraph.stats import ClosureStats, global_stats, timed
from repro.expr.linear import LinearExpr
from repro.obs import recorder as _obs

try:  # optional vectorized min-plus kernel for the optimized closure path
    import numpy as _np
except ImportError:  # pragma: no cover - the baked image ships numpy
    _np = None

#: below this many variables the pure-Python loop beats the array setup
_NUMPY_CLOSURE_MIN_VARS = 16

#: distinguished node representing the constant 0
ZERO = "__0__"

#: absence of a constraint (y - x unbounded above)
INF = None

#: memoized closure results: key -> (bound matrix, infeasible, fingerprint).
#: Cached matrices are adopted copy-on-write and must never be mutated in
#: place (every adopter holds them with ``_shared = True``).
_CLOSURE_CACHE: Dict[tuple, Tuple[Dict[str, Dict[str, int]], bool, tuple]] = {}

#: crude epoch eviction: when the table fills up it is dropped wholesale,
#: which keeps behavior deterministic and bounds memory
_CLOSURE_CACHE_MAX = 4096


#: shared equivalence memos: semantic fingerprint -> {(expr, vocab): frozenset}.
#: Graphs adopt the dict matching their semantics, so enrichment work
#: survives copies, joins, and re-derivations of the same constraint system.
_EQUIV_REGISTRY: Dict[tuple, dict] = {}

#: sentinel key inside an equivalence memo dict holding the graph's
#: precomputed equality-pair structure (see :meth:`_equality_pairs`);
#: never collides with the ``(expr, vocab)`` tuple keys of real entries
_EQUIV_PAIRS_KEY = "__equality_pairs__"


def clear_closure_caches() -> None:
    """Drop all memoized closure results (test/benchmark isolation)."""
    _CLOSURE_CACHE.clear()
    _EQUIV_REGISTRY.clear()


def _cache_store(key: tuple, value) -> None:
    if len(_CLOSURE_CACHE) >= _CLOSURE_CACHE_MAX:
        _CLOSURE_CACHE.clear()
    _CLOSURE_CACHE[key] = value


class ConstraintGraph:
    """A (possibly infeasible) conjunction of difference constraints.

    The graph is *closed* when all transitively implied constraints are
    explicit; query methods close on demand.  ``bottom`` (infeasible) states
    arise from contradictory constraints and absorb all further additions.
    """

    def __init__(
        self,
        stats: Optional[ClosureStats] = None,
        naive_closure: bool = False,
        naive_copy: bool = False,
    ):
        # _bound[x][y] = c  <=>  y <= x + c  (edge x --c--> y)
        self._bound: Dict[str, Dict[str, int]] = {ZERO: {}}
        self._closed = True
        self._infeasible = False
        #: the bound matrix may be referenced by another graph (or by the
        #: closure cache); in-place mutation must materialize a private copy
        self._shared = False
        #: cached canonical fingerprint of the closed constraint system
        self._fingerprint: Optional[tuple] = None
        #: memoized ``equivalents`` results, shared between COW siblings and
        #: replaced (never cleared in place) on semantic mutation
        self._equiv_cache: Dict[tuple, frozenset] = {}
        self._stats = stats if stats is not None else global_stats()
        #: ablation switch reproducing the paper's prototype cost profile:
        #: re-run the full O(n^3) closure before every query instead of
        #: tracking closedness (Section IX's dominant cost)
        self.naive_closure = naive_closure
        #: ablation switch restoring the pre-PR-2 lattice: eager deep copies
        #: and no closure/equivalence caches (the property-test oracle)
        self.naive_copy = naive_copy

    # -- copy-on-write plumbing ------------------------------------------------

    def _caching(self) -> bool:
        """True when memoization is allowed (both ablations disable it)."""
        return not (self.naive_closure or self.naive_copy)

    def _materialize(self) -> None:
        """Give this graph a private bound matrix before in-place mutation."""
        if self._shared:
            self._bound = {src: dict(dsts) for src, dsts in self._bound.items()}
            self._shared = False
            self._stats.record_cow_materialization()

    def _invalidate(self) -> None:
        """Constraint set changed: drop fingerprint and equivalence memos."""
        self._fingerprint = None
        # Re-bind instead of clearing: COW siblings still using the old
        # semantics keep their (still-valid) shared memo dict.  This must
        # happen even when the dict is currently empty — a sibling sharing
        # it could populate it later with entries for the *old* semantics.
        self._equiv_cache = {}

    def _edge_items(self) -> tuple:
        """Canonical tuple of all explicit constraints (sorted edge list)."""
        items = [
            (src, dst, c)
            for src, dsts in self._bound.items()
            for dst, c in dsts.items()
        ]
        items.sort()
        return tuple(items)

    def _rep_fingerprint(self) -> tuple:
        """Representational fingerprint: feasibility, variables, edges."""
        if self._fingerprint is None:
            self._fingerprint = (
                self._infeasible,
                tuple(sorted(self._bound)),
                self._edge_items(),
            )
        return self._fingerprint

    def fingerprint(self) -> tuple:
        """Canonical fingerprint of the *closed* constraint system.

        Two closed graphs are :meth:`equivalent_to` iff their fingerprints
        are equal (untracked-but-unconstrained variables are ignored, like
        the matrix comparison this replaces).  Closes on demand.
        """
        self._ensure_closed()
        rep = self._rep_fingerprint()
        return (rep[0], rep[2])

    # -- snapshot serialization -------------------------------------------------

    def to_state(self) -> dict:
        """Representational state for the checkpoint codec.

        Captures the raw bound matrix (closed or not), feasibility, the
        closedness flag and the ablation switches — everything needed to
        rebuild a graph that behaves identically, including its canonical
        :meth:`fingerprint`.
        """
        return {
            "vars": sorted(self.variables()),
            "edges": list(self._edge_items()),
            "closed": self._closed,
            "infeasible": self._infeasible,
            "naive_closure": self.naive_closure,
            "naive_copy": self.naive_copy,
        }

    @classmethod
    def from_state(cls, data: Mapping) -> "ConstraintGraph":
        """Rebuild a graph from :meth:`to_state` output (stats sink is the
        process-global one; snapshots don't carry profiling state)."""
        graph = cls(
            naive_closure=bool(data.get("naive_closure", False)),
            naive_copy=bool(data.get("naive_copy", False)),
        )
        for name in data["vars"]:
            graph._bound.setdefault(name, {})
        for src, dst, c in data["edges"]:
            graph._bound.setdefault(src, {})[dst] = c
        graph._closed = bool(data["closed"])
        graph._infeasible = bool(data["infeasible"])
        return graph

    # -- basics ---------------------------------------------------------------

    def copy(self) -> "ConstraintGraph":
        """Copy sharing the stats sink.

        Copy-on-write by default: the bound matrix is shared until either
        side mutates.  With ``naive_copy`` the pre-PR-2 eager deep copy is
        performed instead.
        """
        clone = ConstraintGraph(
            self._stats, self.naive_closure, naive_copy=self.naive_copy
        )
        if self.naive_copy:
            clone._bound = {src: dict(dsts) for src, dsts in self._bound.items()}
        else:
            self._shared = True
            clone._bound = self._bound
            clone._shared = True
            clone._fingerprint = self._fingerprint
            clone._equiv_cache = self._equiv_cache
            self._stats.record_cow_share()
        clone._closed = self._closed
        clone._infeasible = self._infeasible
        return clone

    @property
    def infeasible(self) -> bool:
        """True iff the constraints are contradictory (bottom state)."""
        self._ensure_closed()
        return self._infeasible

    def variables(self) -> Set[str]:
        """All tracked variable names (excluding the zero node)."""
        return {name for name in self._bound if name != ZERO}

    def add_var(self, name: str) -> None:
        """Track a variable (initially unconstrained)."""
        if name not in self._bound:
            # no constraint is added: closedness and equivalence memos are
            # unaffected, but the variable list (part of the representational
            # fingerprint) grows and the matrix itself must be owned
            self._materialize()
            self._bound[name] = {}
            self._fingerprint = None

    def has_var(self, name: str) -> bool:
        """True iff the variable is tracked."""
        return name in self._bound

    # -- constraint entry -------------------------------------------------------

    def add_diff(self, x: str, y: str, c: int) -> None:
        """Assert ``y <= x + c``."""
        if self._infeasible:
            return
        self.add_var(x)
        self.add_var(y)
        if x == y:
            if c < 0:
                self._infeasible = True
                self._invalidate()
            return
        current = self._bound[x].get(y)
        if current is None or c < current:
            self._materialize()
            self._bound[x][y] = c
            self._closed = False
            self._invalidate()

    def add_upper(self, x: str, c: int) -> None:
        """Assert ``x <= c``."""
        self.add_diff(ZERO, x, c)

    def add_lower(self, x: str, c: int) -> None:
        """Assert ``x >= c``."""
        self.add_diff(x, ZERO, -c)

    def set_const(self, x: str, c: int) -> None:
        """Assert ``x == c``."""
        self.add_upper(x, c)
        self.add_lower(x, c)

    def add_eq_diff(self, x: str, y: str, c: int) -> None:
        """Assert ``y == x + c``."""
        self.add_diff(x, y, c)
        self.add_diff(y, x, -c)

    def assume_leq(self, lhs: LinearExpr, rhs: LinearExpr) -> bool:
        """Assert ``lhs <= rhs`` when expressible as a difference constraint.

        Returns False (and adds nothing) when the inequality is outside the
        difference-constraint fragment; callers treat that as "no
        information", which is sound.
        """
        delta = lhs - rhs  # want delta <= 0
        coeffs = delta.coeffs
        const = delta.constant
        names = sorted(coeffs)
        if not names:
            if const > 0:
                self._infeasible = True
                self._invalidate()
            return True
        if len(names) == 1:
            name = names[0]
            coeff = coeffs[name]
            if coeff == 1:
                self.add_upper(name, -const)
                return True
            if coeff == -1:
                self.add_lower(name, const)
                return True
            return False
        if len(names) == 2:
            a, b = names
            ca, cb = coeffs[a], coeffs[b]
            if ca == 1 and cb == -1:
                # a - b + const <= 0  =>  a <= b - const
                self.add_diff(b, a, -const)
                return True
            if ca == -1 and cb == 1:
                self.add_diff(a, b, -const)
                return True
        return False

    def assume_eq(self, lhs: LinearExpr, rhs: LinearExpr) -> bool:
        """Assert ``lhs == rhs`` (both directions must be expressible)."""
        first = self.assume_leq(lhs, rhs)
        second = self.assume_leq(rhs, lhs)
        return first and second

    # -- closure ---------------------------------------------------------------

    def _ensure_closed(self) -> None:
        if self.naive_closure and not self._infeasible:
            self.close()
            return
        if not self._closed and not self._infeasible:
            self.close()

    def close(self) -> None:
        """Full O(n^3) transitive closure (Floyd-Warshall), instrumented.

        Memoized (outside the ablation modes) on the unclosed constraint
        set: re-closing an already-seen system adopts the cached matrix
        copy-on-write instead of re-running Floyd-Warshall.
        """
        caching = self._caching()
        if caching:
            key = ("full",) + self._rep_fingerprint()
            hit = _CLOSURE_CACHE.get(key)
            if hit is not None:
                cached_bound, cached_infeasible, cached_rep = hit
                self._bound = cached_bound
                self._shared = True
                self._infeasible = self._infeasible or cached_infeasible
                self._closed = True
                self._fingerprint = cached_rep
                self._stats.record_cache_hit()
                return
        names = [ZERO] + sorted(self.variables())
        index = {name: i for i, name in enumerate(names)}
        n = len(names)
        use_numpy = (
            caching and _np is not None and n >= _NUMPY_CLOSURE_MIN_VARS
        )
        with _obs.span("cgraph.closure.full"), timed() as clock:
            if use_numpy:
                # vectorized min-plus product; the naive ablation never takes
                # this path, so the Section IX prototype cost model is intact
                bound, infeasible = self._floyd_warshall_numpy(names, index, n)
            else:
                bound, infeasible = self._floyd_warshall_python(names, index, n)
        self._stats.record_full(n - 1, clock.elapsed)
        self._bound = bound
        self._shared = False
        self._infeasible = self._infeasible or infeasible
        self._closed = True
        self._fingerprint = None
        if caching:
            _cache_store(key, (bound, infeasible, self._rep_fingerprint()))
            self._shared = True

    def _floyd_warshall_python(
        self, names: List[str], index: Dict[str, int], n: int
    ) -> Tuple[Dict[str, Dict[str, int]], bool]:
        """The paper prototype's straightforward O(n^3) closure loop."""
        matrix: List[List[Optional[int]]] = [[None] * n for _ in range(n)]
        for i in range(n):
            matrix[i][i] = 0
        for src, dsts in self._bound.items():
            i = index[src]
            for dst, c in dsts.items():
                j = index[dst]
                if matrix[i][j] is None or c < matrix[i][j]:
                    matrix[i][j] = c
        for k in range(n):
            row_k = matrix[k]
            for i in range(n):
                via = matrix[i][k]
                if via is None:
                    continue
                row_i = matrix[i]
                for j in range(n):
                    step = row_k[j]
                    if step is None:
                        continue
                    total = via + step
                    if row_i[j] is None or total < row_i[j]:
                        row_i[j] = total
        infeasible = any(
            matrix[i][i] is not None and matrix[i][i] < 0 for i in range(n)
        )
        bound: Dict[str, Dict[str, int]] = {name: {} for name in names}
        for i, src in enumerate(names):
            row = matrix[i]
            dsts = bound[src]
            for j, dst in enumerate(names):
                if i != j and row[j] is not None:
                    dsts[dst] = row[j]
        return bound, infeasible

    def _floyd_warshall_numpy(
        self, names: List[str], index: Dict[str, int], n: int
    ) -> Tuple[Dict[str, Dict[str, int]], bool]:
        """Vectorized min-plus closure (identical result to the loop)."""
        inf = _np.inf
        matrix = _np.full((n, n), inf)
        _np.fill_diagonal(matrix, 0.0)
        for src, dsts in self._bound.items():
            i = index[src]
            row = matrix[i]
            for dst, c in dsts.items():
                j = index[dst]
                if c < row[j]:
                    row[j] = c
        for k in range(n):
            _np.minimum(
                matrix, matrix[:, k : k + 1] + matrix[k : k + 1, :], out=matrix
            )
        infeasible = bool((_np.diagonal(matrix) < 0).any())
        rows = matrix.tolist()
        bound: Dict[str, Dict[str, int]] = {name: {} for name in names}
        for i, src in enumerate(names):
            row = rows[i]
            dsts = bound[src]
            for j, dst in enumerate(names):
                if i != j and row[j] != inf:
                    dsts[dst] = int(row[j])
        return bound, infeasible

    def close_incremental(self, x: str, y: str, c: int) -> None:
        """O(n^2) re-closure after adding the single constraint ``y <= x + c``.

        Precondition: the graph was closed before the constraint was added.
        Used by hot paths (assignment transfer); instrumented separately.
        Memoized on ``(fingerprint, x, y, c)``: re-deriving the same closed
        system plus the same single constraint adopts the cached matrix
        copy-on-write.
        """
        if self._infeasible:
            return
        key = None
        if self._closed and self._caching():
            key = ("incr", self._rep_fingerprint(), x, y, c)
            hit = _CLOSURE_CACHE.get(key)
            if hit is not None:
                cached_bound, cached_infeasible, cached_rep = hit
                self._bound = cached_bound
                self._shared = True
                self._infeasible = cached_infeasible
                self._closed = True
                self._fingerprint = cached_rep
                self._equiv_cache = {}
                self._stats.record_cache_hit()
                return
        self.add_var(x)
        self.add_var(y)
        names = [ZERO] + sorted(self.variables())
        with _obs.span("cgraph.closure.incremental"), timed() as clock:
            existing = self._bound[x].get(y)
            if existing is not None and existing <= c:
                self._closed = True
                self._stats.record_incremental(len(names) - 1, clock.elapsed)
                self._memoize_incremental(key)
                return
            self._materialize()
            self._invalidate()
            self._bound[x][y] = c
            if x == y:
                if c < 0:
                    self._infeasible = True
                self._closed = True
                self._stats.record_incremental(len(names) - 1, clock.elapsed)
                self._memoize_incremental(key)
                return
            for u in names:
                to_x = 0 if u == x else self._bound[u].get(x)
                if to_x is None:
                    continue
                for v in names:
                    from_y = 0 if v == y else self._bound[y].get(v)
                    if from_y is None:
                        continue
                    total = to_x + c + from_y
                    if u == v:
                        if total < 0:
                            self._infeasible = True
                        continue
                    current = self._bound[u].get(v)
                    if current is None or total < current:
                        self._bound[u][v] = total
        self._closed = True
        self._stats.record_incremental(len(names) - 1, clock.elapsed)
        self._memoize_incremental(key)

    def _memoize_incremental(self, key: Optional[tuple]) -> None:
        """Store the just-computed incremental closure under ``key``."""
        if key is None:
            return
        _cache_store(key, (self._bound, self._infeasible, self._rep_fingerprint()))
        self._shared = True

    # -- queries ---------------------------------------------------------------

    def diff_bound(self, x: str, y: str) -> Optional[int]:
        """The least c with ``y <= x + c`` implied, or None if unbounded."""
        self._ensure_closed()
        if self._infeasible:
            return 0
        if x == y:
            return 0
        if x not in self._bound or y not in self._bound:
            return None
        return self._bound[x].get(y)

    def entails_diff(self, x: str, y: str, c: int) -> bool:
        """True iff ``y <= x + c`` is implied."""
        self._ensure_closed()
        if self._infeasible:
            return True
        bound = self.diff_bound(x, y)
        return bound is not None and bound <= c

    def entails_leq(self, lhs: LinearExpr, rhs: LinearExpr) -> Optional[bool]:
        """Three-valued entailment of ``lhs <= rhs``.

        True: implied.  False: the negation is implied.  None: unknown or
        outside the difference fragment.
        """
        self._ensure_closed()
        if self._infeasible:
            return True
        delta = lhs - rhs
        coeffs = delta.coeffs
        const = delta.constant
        names = sorted(coeffs)
        if not names:
            return const <= 0
        if len(names) == 1:
            name = names[0]
            if not self.has_var(name):
                return None
            coeff = coeffs[name]
            if coeff == 1:
                if self.entails_diff(ZERO, name, -const):
                    return True
                if self.entails_diff(name, ZERO, const - 1):
                    # name >= 1 - const  =>  delta >= 1 > 0
                    return False
                return None
            if coeff == -1:
                # delta = -name + const <= 0  <=>  name >= const
                if self.entails_diff(name, ZERO, -const):
                    return True
                # negation: name <= const - 1
                if self.entails_diff(ZERO, name, const - 1):
                    return False
                return None
            return None
        if len(names) == 2:
            a, b = names
            ca, cb = coeffs[a], coeffs[b]
            if not (self.has_var(a) and self.has_var(b)):
                return None
            if ca == 1 and cb == -1:
                if self.entails_diff(b, a, -const):
                    return True
                if self.entails_diff(a, b, const - 1):
                    return False
                return None
            if ca == -1 and cb == 1:
                if self.entails_diff(a, b, -const):
                    return True
                if self.entails_diff(b, a, const - 1):
                    return False
                return None
        return None

    def entails_eq(self, lhs: LinearExpr, rhs: LinearExpr) -> Optional[bool]:
        """Three-valued entailment of ``lhs == rhs``."""
        first = self.entails_leq(lhs, rhs)
        second = self.entails_leq(rhs, lhs)
        if first is True and second is True:
            return True
        if first is False or second is False:
            return False
        return None

    def const_value(self, name: str) -> Optional[int]:
        """The exact value of a variable, when pinned."""
        upper = self.diff_bound(ZERO, name)
        lower = self.diff_bound(name, ZERO)
        if upper is not None and lower is not None and upper == -lower:
            return upper
        return None

    def eval_const(self, expr: LinearExpr) -> Optional[int]:
        """Exact integer value of an affine expression, when pinned."""
        total = expr.constant
        for name, coeff in expr.coeffs.items():
            value = self.const_value(name)
            if value is None:
                return None
            total += coeff * value
        return total

    def equivalents(self, expr: LinearExpr, vocabulary: Iterable[str]) -> Set[LinearExpr]:
        """All ``var + c`` / constant expressions provably equal to ``expr``.

        ``expr`` must be of shape ``var + c0`` or a constant; this is the
        bound-equivalence-set operation the Section VII process-set
        representation relies on.  Results are memoized per closed graph
        (the memo is shared across copy-on-write siblings, so enrichment of
        many states over the same underlying graph pays for one scan).
        """
        self._ensure_closed()
        key = None
        cache = None
        if self._caching():
            vocab = (
                vocabulary
                if isinstance(vocabulary, frozenset)
                else frozenset(vocabulary)
            )
            key = (expr, vocab)
            cache = self._equiv_cache
            if not cache:
                # adopt the registry dict shared by every graph with these
                # semantics; a mutation re-binds to a fresh dict, so the next
                # query adopts the dict of the new fingerprint
                if len(_EQUIV_REGISTRY) >= _CLOSURE_CACHE_MAX:
                    _EQUIV_REGISTRY.clear()
                cache = self._equiv_cache = _EQUIV_REGISTRY.setdefault(
                    self.fingerprint(), self._equiv_cache
                )
            hit = cache.get(key)
            if hit is not None:
                return set(hit)
            vocabulary = vocab
        pairs = cache.get(_EQUIV_PAIRS_KEY) if cache is not None else None
        if pairs is None:
            pairs = self._equality_pairs()
            if cache is not None:
                cache[_EQUIV_PAIRS_KEY] = pairs
        result = self._compute_equivalents(expr, vocabulary, pairs)
        if key is not None:
            cache[key] = frozenset(result)
        return result

    def _equality_pairs(self) -> Dict[str, List[Tuple[str, int]]]:
        """``base -> [(other, forward)]`` with ``other == base + forward``.

        Derived from the closed matrix (an equality is a pair of opposite
        tight difference edges) once per semantics and memoized in the
        shared equivalence cache: every ``equivalents`` query then walks
        only the (tiny) equality class of its base variable instead of the
        whole vocabulary.
        """
        pairs: Dict[str, List[Tuple[str, int]]] = {}
        bound = self._bound
        for base, row in bound.items():
            entries = [
                (other, forward)
                for other, forward in row.items()
                if bound.get(other, {}).get(base) == -forward
            ]
            if entries:
                pairs[base] = entries
        return pairs

    def _compute_equivalents(
        self,
        expr: LinearExpr,
        vocabulary: Iterable[str],
        pairs: Dict[str, List[Tuple[str, int]]],
    ) -> Set[LinearExpr]:
        result: Set[LinearExpr] = {expr}
        if self._infeasible:
            return result
        split = expr.split_var_plus_const()
        if split is not None:
            base, offset = split
            for other, forward in pairs.get(base, ()):
                if other == ZERO:
                    # ZERO == base + forward  =>  expr == offset - forward
                    result.add(LinearExpr.const(offset - forward))
                elif other in vocabulary:
                    # other == base + forward  =>  expr == other + offset - forward
                    result.add(LinearExpr._raw(offset - forward, ((other, 1),)))
            return result
        constant = expr.as_constant()
        if constant is not None:
            for other, forward in pairs.get(ZERO, ()):
                # other == forward  =>  constant == other + (constant - forward)
                if other in vocabulary:
                    result.add(LinearExpr._raw(constant - forward, ((other, 1),)))
        return result

    # -- transfer ---------------------------------------------------------------

    def havoc(self, name: str) -> None:
        """Forget everything about a variable (e.g. ``x = input()``)."""
        self._ensure_closed()
        if name not in self._bound:
            self.add_var(name)
            return
        self._materialize()
        self._invalidate()
        self._bound[name] = {}
        for src, dsts in self._bound.items():
            dsts.pop(name, None)
        # projection of a closed graph stays closed

    def remove_var(self, name: str) -> None:
        """Project a variable out entirely."""
        self._ensure_closed()
        if name not in self._bound:
            return
        self._materialize()
        self._invalidate()
        del self._bound[name]
        for dsts in self._bound.values():
            dsts.pop(name, None)

    def remove_vars(self, names: Iterable[str]) -> None:
        """Project several variables out."""
        self._ensure_closed()
        doomed = set(names)
        if not any(name in self._bound for name in doomed):
            return
        self._materialize()
        self._invalidate()
        for name in doomed:
            self._bound.pop(name, None)
        for dsts in self._bound.values():
            for name in doomed:
                dsts.pop(name, None)

    def assign(self, target: str, expr: Optional[LinearExpr]) -> None:
        """Transfer function for ``target = expr``.

        ``expr`` of shape ``target + c`` is the in-place increment (the
        Fig. 5 loop counter); other affine single-variable or constant
        expressions re-bind the target; anything else (or ``None``) havocs.
        """
        self._ensure_closed()
        if self._infeasible:
            return
        if expr is None:
            self.havoc(target)
            return
        constant = expr.as_constant()
        if constant is not None:
            self.havoc(target)
            self.close_incremental(ZERO, target, constant)
            self.close_incremental(target, ZERO, -constant)
            return
        split = expr.split_var_plus_const()
        if split is None:
            self.havoc(target)
            return
        base, offset = split
        if base == target:
            # x := x + c  — shift every bound that mentions x
            self.add_var(target)
            self._materialize()
            self._invalidate()
            for src, dsts in self._bound.items():
                if src == target:
                    continue
                if target in dsts:
                    dsts[target] += offset
            for dst in list(self._bound[target]):
                self._bound[target][dst] -= offset
            return
        self.havoc(target)
        self.add_var(base)
        self.close_incremental(base, target, offset)
        self.close_incremental(target, base, -offset)

    def rename(self, mapping: Mapping[str, str]) -> None:
        """Rename variables (used when process-set ids change)."""
        def rn(name: str) -> str:
            return mapping.get(name, name)

        self._bound = {
            rn(src): {rn(dst): c for dst, c in dsts.items()}
            for src, dsts in self._bound.items()
        }
        self._shared = False
        self._invalidate()

    def copy_namespace_from(
        self, source_vars: Iterable[str], mapping: Mapping[str, str]
    ) -> None:
        """Duplicate constraints of ``source_vars`` onto fresh copies.

        For each constraint among the source variables (and between a source
        variable and any outside variable), the same constraint is added with
        source variables replaced via ``mapping``.  This implements the
        "state of the new set is a copy of the old set" rule for process-set
        splits.
        """
        self._ensure_closed()
        sources = set(source_vars)
        for new_name in mapping.values():
            self.add_var(new_name)
        additions: List[Tuple[str, str, int]] = []
        for src, dsts in self._bound.items():
            for dst, c in dsts.items():
                src_in = src in sources
                dst_in = dst in sources
                if not (src_in or dst_in):
                    continue
                new_src = mapping.get(src, src) if src_in else src
                new_dst = mapping.get(dst, dst) if dst_in else dst
                additions.append((new_src, new_dst, c))
        for src, dst, c in additions:
            self.add_diff(src, dst, c)

    # -- lattice ----------------------------------------------------------------

    def join(self, other: "ConstraintGraph") -> "ConstraintGraph":
        """Least upper bound (union of solution sets, convex-hull approx)."""
        self._ensure_closed()
        other._ensure_closed()
        if self._infeasible:
            return other.copy()
        if other._infeasible:
            return self.copy()
        result = ConstraintGraph(self._stats, naive_copy=self.naive_copy)
        for name in self.variables() | other.variables():
            result.add_var(name)
        for src, dsts in self._bound.items():
            other_dsts = other._bound.get(src)
            if other_dsts is None:
                continue
            for dst, c in dsts.items():
                oc = other_dsts.get(dst)
                if oc is not None:
                    result._bound.setdefault(src, {})[dst] = max(c, oc)
        result._closed = True  # max of two closed DBMs is closed
        return result

    def meet(self, other: "ConstraintGraph") -> "ConstraintGraph":
        """Greatest lower bound (conjunction of both constraint sets)."""
        result = self.copy()
        for src, dsts in other._bound.items():
            for dst, c in dsts.items():
                result.add_diff(src, dst, c)
        result._closed = False
        return result

    def widen(self, newer: "ConstraintGraph") -> "ConstraintGraph":
        """Standard DBM widening: drop constraints the new state weakened."""
        self._ensure_closed()
        newer._ensure_closed()
        if self._infeasible:
            return newer.copy()
        if newer._infeasible:
            return self.copy()
        result = ConstraintGraph(self._stats, naive_copy=self.naive_copy)
        for name in self.variables() | newer.variables():
            result.add_var(name)
        for src, dsts in self._bound.items():
            newer_dsts = newer._bound.get(src, {})
            for dst, c in dsts.items():
                nc = newer_dsts.get(dst)
                if nc is not None and nc <= c:
                    result._bound.setdefault(src, {})[dst] = c
        # deliberately NOT closed: re-closing after widening can undo it;
        # the result is still a sound (weaker) constraint set
        result._closed = True
        return result

    def equivalent_to(self, other: "ConstraintGraph") -> bool:
        """Semantic equality of two constraint graphs.

        Compares cached canonical fingerprints of the closed systems — a
        hash comparison instead of two fresh closures plus a matrix walk.
        Already-closed graphs (the common case: both sides of an engine
        fixed-point check) are never re-closed, even under the
        ``naive_closure`` ablation, which used to run two full O(n^3)
        closures per call.
        """
        for graph in (self, other):
            if not graph._closed and not graph._infeasible:
                graph.close()
        if self._infeasible or other._infeasible:
            return self._infeasible == other._infeasible
        if self._bound is other._bound:
            return True  # COW siblings, no mutation since the share
        # compare only the constraint sets: variables that are tracked but
        # unconstrained are invisible, exactly like the matrix walk this
        # replaces
        return self._rep_fingerprint()[2] == other._rep_fingerprint()[2]

    def __repr__(self) -> str:
        if self._infeasible:
            return "ConstraintGraph(bottom)"
        parts = []
        for src in sorted(self._bound):
            for dst, c in sorted(self._bound[src].items()):
                parts.append(f"{dst} <= {src} + {c}")
        return f"ConstraintGraph({'; '.join(parts)})"


def edge_diff(
    old: Optional["ConstraintGraph"], new: Optional["ConstraintGraph"]
) -> Optional[dict]:
    """JSON-plain diff of two graphs' explicit constraint sets.

    The provenance flight recorder attaches this to transfer/join/widen
    events so ``repro explain`` can show exactly which difference bounds an
    event added, dropped, or loosened.  Constraints render as the
    ``y <= x + c`` inequalities they encode.  Returns None when nothing
    changed (so silent transfers attach no data); ``old=None`` reports the
    entire new graph as added.
    """
    before = {} if old is None else {
        (src, dst): c for src, dst, c in old._edge_items()
    }
    after = {} if new is None else {
        (src, dst): c for src, dst, c in new._edge_items()
    }

    def _render(src: str, dst: str, c: int) -> str:
        return f"{dst} <= {c}" if src == ZERO else f"{dst} <= {src} + {c}"

    added = [
        _render(src, dst, c)
        for (src, dst), c in sorted(after.items())
        if (src, dst) not in before
    ]
    removed = [
        _render(src, dst, before[(src, dst)])
        for (src, dst) in sorted(before)
        if (src, dst) not in after
    ]
    changed = [
        f"{_render(src, dst, before[(src, dst)])} -> {_render(src, dst, c)}"
        for (src, dst), c in sorted(after.items())
        if (src, dst) in before and before[(src, dst)] != c
    ]
    diff: dict = {}
    if added:
        diff["added"] = added
    if removed:
        diff["removed"] = removed
    if changed:
        diff["changed"] = changed
    if old is not None and new is not None:
        if old.infeasible != new.infeasible:
            diff["infeasible"] = new.infeasible
    return diff or None
