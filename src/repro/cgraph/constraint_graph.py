"""Difference-bound constraint graphs.

A :class:`ConstraintGraph` is a conjunction of inequalities ``y <= x + c``
over named integer variables, plus a distinguished zero node so absolute
bounds (``x <= 5``) are the special case ``x <= ZERO + 5``.  This is the
constraint-graph representation of CLR ch. 24.4/25.5 used by the paper's
Section VII-A state analysis.

Consistency is maintained by transitive closure (Floyd–Warshall, O(n^3)) or
by an incremental single-constraint update (O(n^2)); both are instrumented
through :mod:`repro.cgraph.stats` because reproducing the paper's Section IX
profile requires counting exactly these operations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.cgraph.stats import ClosureStats, global_stats, timed
from repro.expr.linear import LinearExpr
from repro.obs import recorder as _obs

#: distinguished node representing the constant 0
ZERO = "__0__"

#: absence of a constraint (y - x unbounded above)
INF = None


class ConstraintGraph:
    """A (possibly infeasible) conjunction of difference constraints.

    The graph is *closed* when all transitively implied constraints are
    explicit; query methods close on demand.  ``bottom`` (infeasible) states
    arise from contradictory constraints and absorb all further additions.
    """

    def __init__(
        self, stats: Optional[ClosureStats] = None, naive_closure: bool = False
    ):
        # _bound[x][y] = c  <=>  y <= x + c  (edge x --c--> y)
        self._bound: Dict[str, Dict[str, int]] = {ZERO: {}}
        self._closed = True
        self._infeasible = False
        self._stats = stats if stats is not None else global_stats()
        #: ablation switch reproducing the paper's prototype cost profile:
        #: re-run the full O(n^3) closure before every query instead of
        #: tracking closedness (Section IX's dominant cost)
        self.naive_closure = naive_closure

    # -- basics ---------------------------------------------------------------

    def copy(self) -> "ConstraintGraph":
        """Deep copy sharing the stats sink."""
        clone = ConstraintGraph(self._stats, self.naive_closure)
        clone._bound = {src: dict(dsts) for src, dsts in self._bound.items()}
        clone._closed = self._closed
        clone._infeasible = self._infeasible
        return clone

    @property
    def infeasible(self) -> bool:
        """True iff the constraints are contradictory (bottom state)."""
        self._ensure_closed()
        return self._infeasible

    def variables(self) -> Set[str]:
        """All tracked variable names (excluding the zero node)."""
        return {name for name in self._bound if name != ZERO}

    def add_var(self, name: str) -> None:
        """Track a variable (initially unconstrained)."""
        if name not in self._bound:
            self._bound[name] = {}

    def has_var(self, name: str) -> bool:
        """True iff the variable is tracked."""
        return name in self._bound

    # -- constraint entry -------------------------------------------------------

    def add_diff(self, x: str, y: str, c: int) -> None:
        """Assert ``y <= x + c``."""
        if self._infeasible:
            return
        self.add_var(x)
        self.add_var(y)
        if x == y:
            if c < 0:
                self._infeasible = True
            return
        current = self._bound[x].get(y)
        if current is None or c < current:
            self._bound[x][y] = c
            self._closed = False

    def add_upper(self, x: str, c: int) -> None:
        """Assert ``x <= c``."""
        self.add_diff(ZERO, x, c)

    def add_lower(self, x: str, c: int) -> None:
        """Assert ``x >= c``."""
        self.add_diff(x, ZERO, -c)

    def set_const(self, x: str, c: int) -> None:
        """Assert ``x == c``."""
        self.add_upper(x, c)
        self.add_lower(x, c)

    def add_eq_diff(self, x: str, y: str, c: int) -> None:
        """Assert ``y == x + c``."""
        self.add_diff(x, y, c)
        self.add_diff(y, x, -c)

    def assume_leq(self, lhs: LinearExpr, rhs: LinearExpr) -> bool:
        """Assert ``lhs <= rhs`` when expressible as a difference constraint.

        Returns False (and adds nothing) when the inequality is outside the
        difference-constraint fragment; callers treat that as "no
        information", which is sound.
        """
        delta = lhs - rhs  # want delta <= 0
        coeffs = delta.coeffs
        const = delta.constant
        names = sorted(coeffs)
        if not names:
            if const > 0:
                self._infeasible = True
            return True
        if len(names) == 1:
            name = names[0]
            coeff = coeffs[name]
            if coeff == 1:
                self.add_upper(name, -const)
                return True
            if coeff == -1:
                self.add_lower(name, const)
                return True
            return False
        if len(names) == 2:
            a, b = names
            ca, cb = coeffs[a], coeffs[b]
            if ca == 1 and cb == -1:
                # a - b + const <= 0  =>  a <= b - const
                self.add_diff(b, a, -const)
                return True
            if ca == -1 and cb == 1:
                self.add_diff(a, b, -const)
                return True
        return False

    def assume_eq(self, lhs: LinearExpr, rhs: LinearExpr) -> bool:
        """Assert ``lhs == rhs`` (both directions must be expressible)."""
        first = self.assume_leq(lhs, rhs)
        second = self.assume_leq(rhs, lhs)
        return first and second

    # -- closure ---------------------------------------------------------------

    def _ensure_closed(self) -> None:
        if self.naive_closure and not self._infeasible:
            self.close()
            return
        if not self._closed and not self._infeasible:
            self.close()

    def close(self) -> None:
        """Full O(n^3) transitive closure (Floyd-Warshall), instrumented."""
        names = [ZERO] + sorted(self.variables())
        index = {name: i for i, name in enumerate(names)}
        n = len(names)
        with _obs.span("cgraph.closure.full"), timed() as clock:
            matrix: List[List[Optional[int]]] = [[None] * n for _ in range(n)]
            for i in range(n):
                matrix[i][i] = 0
            for src, dsts in self._bound.items():
                i = index[src]
                for dst, c in dsts.items():
                    j = index[dst]
                    if matrix[i][j] is None or c < matrix[i][j]:
                        matrix[i][j] = c
            for k in range(n):
                row_k = matrix[k]
                for i in range(n):
                    via = matrix[i][k]
                    if via is None:
                        continue
                    row_i = matrix[i]
                    for j in range(n):
                        step = row_k[j]
                        if step is None:
                            continue
                        total = via + step
                        if row_i[j] is None or total < row_i[j]:
                            row_i[j] = total
            infeasible = any(matrix[i][i] is not None and matrix[i][i] < 0 for i in range(n))
            bound: Dict[str, Dict[str, int]] = {name: {} for name in names}
            for i, src in enumerate(names):
                for j, dst in enumerate(names):
                    if i != j and matrix[i][j] is not None:
                        bound[src][dst] = matrix[i][j]
        self._stats.record_full(n - 1, clock.elapsed)
        self._bound = bound
        self._infeasible = self._infeasible or infeasible
        self._closed = True

    def close_incremental(self, x: str, y: str, c: int) -> None:
        """O(n^2) re-closure after adding the single constraint ``y <= x + c``.

        Precondition: the graph was closed before the constraint was added.
        Used by hot paths (assignment transfer); instrumented separately.
        """
        if self._infeasible:
            return
        self.add_var(x)
        self.add_var(y)
        names = [ZERO] + sorted(self.variables())
        with _obs.span("cgraph.closure.incremental"), timed() as clock:
            existing = self._bound[x].get(y)
            if existing is not None and existing <= c:
                self._closed = True
                self._stats.record_incremental(len(names) - 1, clock.elapsed)
                return
            self._bound[x][y] = c
            if x == y:
                if c < 0:
                    self._infeasible = True
                self._stats.record_incremental(len(names) - 1, clock.elapsed)
                return
            for u in names:
                to_x = 0 if u == x else self._bound[u].get(x)
                if to_x is None:
                    continue
                for v in names:
                    from_y = 0 if v == y else self._bound[y].get(v)
                    if from_y is None:
                        continue
                    total = to_x + c + from_y
                    if u == v:
                        if total < 0:
                            self._infeasible = True
                        continue
                    current = self._bound[u].get(v)
                    if current is None or total < current:
                        self._bound[u][v] = total
        self._closed = True
        self._stats.record_incremental(len(names) - 1, clock.elapsed)

    # -- queries ---------------------------------------------------------------

    def diff_bound(self, x: str, y: str) -> Optional[int]:
        """The least c with ``y <= x + c`` implied, or None if unbounded."""
        self._ensure_closed()
        if self._infeasible:
            return 0
        if x == y:
            return 0
        if x not in self._bound or y not in self._bound:
            return None
        return self._bound[x].get(y)

    def entails_diff(self, x: str, y: str, c: int) -> bool:
        """True iff ``y <= x + c`` is implied."""
        self._ensure_closed()
        if self._infeasible:
            return True
        bound = self.diff_bound(x, y)
        return bound is not None and bound <= c

    def entails_leq(self, lhs: LinearExpr, rhs: LinearExpr) -> Optional[bool]:
        """Three-valued entailment of ``lhs <= rhs``.

        True: implied.  False: the negation is implied.  None: unknown or
        outside the difference fragment.
        """
        self._ensure_closed()
        if self._infeasible:
            return True
        delta = lhs - rhs
        coeffs = delta.coeffs
        const = delta.constant
        names = sorted(coeffs)
        if not names:
            return const <= 0
        if len(names) == 1:
            name = names[0]
            if not self.has_var(name):
                return None
            coeff = coeffs[name]
            if coeff == 1:
                if self.entails_diff(ZERO, name, -const):
                    return True
                if self.entails_diff(name, ZERO, const - 1):
                    # name >= 1 - const  =>  delta >= 1 > 0
                    return False
                return None
            if coeff == -1:
                # delta = -name + const <= 0  <=>  name >= const
                if self.entails_diff(name, ZERO, -const):
                    return True
                # negation: name <= const - 1
                if self.entails_diff(ZERO, name, const - 1):
                    return False
                return None
            return None
        if len(names) == 2:
            a, b = names
            ca, cb = coeffs[a], coeffs[b]
            if not (self.has_var(a) and self.has_var(b)):
                return None
            if ca == 1 and cb == -1:
                if self.entails_diff(b, a, -const):
                    return True
                if self.entails_diff(a, b, const - 1):
                    return False
                return None
            if ca == -1 and cb == 1:
                if self.entails_diff(a, b, -const):
                    return True
                if self.entails_diff(b, a, const - 1):
                    return False
                return None
        return None

    def entails_eq(self, lhs: LinearExpr, rhs: LinearExpr) -> Optional[bool]:
        """Three-valued entailment of ``lhs == rhs``."""
        first = self.entails_leq(lhs, rhs)
        second = self.entails_leq(rhs, lhs)
        if first is True and second is True:
            return True
        if first is False or second is False:
            return False
        return None

    def const_value(self, name: str) -> Optional[int]:
        """The exact value of a variable, when pinned."""
        upper = self.diff_bound(ZERO, name)
        lower = self.diff_bound(name, ZERO)
        if upper is not None and lower is not None and upper == -lower:
            return upper
        return None

    def eval_const(self, expr: LinearExpr) -> Optional[int]:
        """Exact integer value of an affine expression, when pinned."""
        total = expr.constant
        for name, coeff in expr.coeffs.items():
            value = self.const_value(name)
            if value is None:
                return None
            total += coeff * value
        return total

    def equivalents(self, expr: LinearExpr, vocabulary: Iterable[str]) -> Set[LinearExpr]:
        """All ``var + c`` / constant expressions provably equal to ``expr``.

        ``expr`` must be of shape ``var + c0`` or a constant; this is the
        bound-equivalence-set operation the Section VII process-set
        representation relies on.
        """
        self._ensure_closed()
        result: Set[LinearExpr] = {expr}
        if self._infeasible:
            return result
        split = expr.split_var_plus_const()
        if split is not None:
            base, offset = split
            if not self.has_var(base):
                return result
            value = self.const_value(base)
            if value is not None:
                result.add(LinearExpr.const(value + offset))
            for other in vocabulary:
                if other == base or not self.has_var(other):
                    continue
                forward = self.diff_bound(base, other)
                backward = self.diff_bound(other, base)
                if forward is not None and backward is not None and forward == -backward:
                    # other == base + forward  =>  expr == other + offset - forward
                    result.add(LinearExpr.var(other) + (offset - forward))
            return result
        constant = expr.as_constant()
        if constant is not None:
            for other in vocabulary:
                if not self.has_var(other):
                    continue
                value = self.const_value(other)
                if value is not None:
                    # other == value  =>  constant == other + (constant - value)
                    result.add(LinearExpr.var(other) + (constant - value))
        return result

    # -- transfer ---------------------------------------------------------------

    def havoc(self, name: str) -> None:
        """Forget everything about a variable (e.g. ``x = input()``)."""
        self._ensure_closed()
        if name not in self._bound:
            self.add_var(name)
            return
        self._bound[name] = {}
        for src, dsts in self._bound.items():
            dsts.pop(name, None)
        # projection of a closed graph stays closed

    def remove_var(self, name: str) -> None:
        """Project a variable out entirely."""
        self._ensure_closed()
        if name not in self._bound:
            return
        del self._bound[name]
        for dsts in self._bound.values():
            dsts.pop(name, None)

    def remove_vars(self, names: Iterable[str]) -> None:
        """Project several variables out."""
        self._ensure_closed()
        doomed = set(names)
        for name in doomed:
            self._bound.pop(name, None)
        for dsts in self._bound.values():
            for name in doomed:
                dsts.pop(name, None)

    def assign(self, target: str, expr: Optional[LinearExpr]) -> None:
        """Transfer function for ``target = expr``.

        ``expr`` of shape ``target + c`` is the in-place increment (the
        Fig. 5 loop counter); other affine single-variable or constant
        expressions re-bind the target; anything else (or ``None``) havocs.
        """
        self._ensure_closed()
        if self._infeasible:
            return
        if expr is None:
            self.havoc(target)
            return
        constant = expr.as_constant()
        if constant is not None:
            self.havoc(target)
            self.close_incremental(ZERO, target, constant)
            self.close_incremental(target, ZERO, -constant)
            return
        split = expr.split_var_plus_const()
        if split is None:
            self.havoc(target)
            return
        base, offset = split
        if base == target:
            # x := x + c  — shift every bound that mentions x
            self.add_var(target)
            for src, dsts in self._bound.items():
                if src == target:
                    continue
                if target in dsts:
                    dsts[target] += offset
            for dst in list(self._bound[target]):
                self._bound[target][dst] -= offset
            return
        self.havoc(target)
        self.add_var(base)
        self.close_incremental(base, target, offset)
        self.close_incremental(target, base, -offset)

    def rename(self, mapping: Mapping[str, str]) -> None:
        """Rename variables (used when process-set ids change)."""
        def rn(name: str) -> str:
            return mapping.get(name, name)

        self._bound = {
            rn(src): {rn(dst): c for dst, c in dsts.items()}
            for src, dsts in self._bound.items()
        }

    def copy_namespace_from(
        self, source_vars: Iterable[str], mapping: Mapping[str, str]
    ) -> None:
        """Duplicate constraints of ``source_vars`` onto fresh copies.

        For each constraint among the source variables (and between a source
        variable and any outside variable), the same constraint is added with
        source variables replaced via ``mapping``.  This implements the
        "state of the new set is a copy of the old set" rule for process-set
        splits.
        """
        self._ensure_closed()
        sources = set(source_vars)
        for new_name in mapping.values():
            self.add_var(new_name)
        additions: List[Tuple[str, str, int]] = []
        for src, dsts in self._bound.items():
            for dst, c in dsts.items():
                src_in = src in sources
                dst_in = dst in sources
                if not (src_in or dst_in):
                    continue
                new_src = mapping.get(src, src) if src_in else src
                new_dst = mapping.get(dst, dst) if dst_in else dst
                additions.append((new_src, new_dst, c))
        for src, dst, c in additions:
            self.add_diff(src, dst, c)

    # -- lattice ----------------------------------------------------------------

    def join(self, other: "ConstraintGraph") -> "ConstraintGraph":
        """Least upper bound (union of solution sets, convex-hull approx)."""
        self._ensure_closed()
        other._ensure_closed()
        if self._infeasible:
            return other.copy()
        if other._infeasible:
            return self.copy()
        result = ConstraintGraph(self._stats)
        for name in self.variables() | other.variables():
            result.add_var(name)
        for src, dsts in self._bound.items():
            other_dsts = other._bound.get(src)
            if other_dsts is None:
                continue
            for dst, c in dsts.items():
                oc = other_dsts.get(dst)
                if oc is not None:
                    result._bound.setdefault(src, {})[dst] = max(c, oc)
        result._closed = True  # max of two closed DBMs is closed
        return result

    def meet(self, other: "ConstraintGraph") -> "ConstraintGraph":
        """Greatest lower bound (conjunction of both constraint sets)."""
        result = self.copy()
        for src, dsts in other._bound.items():
            for dst, c in dsts.items():
                result.add_diff(src, dst, c)
        result._closed = False
        return result

    def widen(self, newer: "ConstraintGraph") -> "ConstraintGraph":
        """Standard DBM widening: drop constraints the new state weakened."""
        self._ensure_closed()
        newer._ensure_closed()
        if self._infeasible:
            return newer.copy()
        if newer._infeasible:
            return self.copy()
        result = ConstraintGraph(self._stats)
        for name in self.variables() | newer.variables():
            result.add_var(name)
        for src, dsts in self._bound.items():
            newer_dsts = newer._bound.get(src, {})
            for dst, c in dsts.items():
                nc = newer_dsts.get(dst)
                if nc is not None and nc <= c:
                    result._bound.setdefault(src, {})[dst] = c
        # deliberately NOT closed: re-closing after widening can undo it;
        # the result is still a sound (weaker) constraint set
        result._closed = True
        return result

    def equivalent_to(self, other: "ConstraintGraph") -> bool:
        """Semantic equality of two constraint graphs (via closures)."""
        self._ensure_closed()
        other._ensure_closed()
        if self._infeasible or other._infeasible:
            return self._infeasible == other._infeasible
        names = self.variables() | other.variables() | {ZERO}
        for x in names:
            for y in names:
                if x == y:
                    continue
                mine = self._bound.get(x, {}).get(y)
                theirs = other._bound.get(x, {}).get(y)
                if mine != theirs:
                    return False
        return True

    def __repr__(self) -> str:
        if self._infeasible:
            return "ConstraintGraph(bottom)"
        parts = []
        for src in sorted(self._bound):
            for dst, c in sorted(self._bound[src].items()):
                parts.append(f"{dst} <= {src} + {c}")
        return f"ConstraintGraph({'; '.join(parts)})"
