"""Instrumentation counters for constraint-graph closures.

The paper's Section IX profile attributes 92.5% of analysis time to keeping
the dataflow state consistent: 217 executions of the O(n^3) transitive
closure (average 52.3 variables) plus 78 executions of a cheaper O(n^2)
incremental variant (average 66.3 variables).  These counters let the
benchmark harness reproduce that profile shape on our implementation.

``ClosureStats`` keeps its historical report shape, but every recorded
closure is also forwarded onto the :mod:`repro.obs` metrics API
(``cgraph.closure.*`` counters and histograms) so the Section IX profile
exporter and the engine's span tree see the same events.  The forwarding is
a no-op while observability is disabled.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

from repro.obs import recorder as _obs


@dataclass
class ClosureStats:
    """Aggregated cost of closure operations."""

    full_calls: int = 0
    full_vars: List[int] = field(default_factory=list)
    full_time: float = 0.0
    incremental_calls: int = 0
    incremental_vars: List[int] = field(default_factory=list)
    incremental_time: float = 0.0
    #: closures answered from the memo table instead of being executed
    cache_hits: int = 0
    #: copy-on-write events: copies that shared the bound matrix, and
    #: shared matrices that had to be materialized before a mutation
    cow_shares: int = 0
    cow_materializations: int = 0
    #: wall time of everything else, filled in by harnesses that time the
    #: enclosing analysis
    total_time: float = 0.0

    def record_full(self, num_vars: int, elapsed: float) -> None:
        """Record one O(n^3) full closure."""
        self.full_calls += 1
        self.full_vars.append(num_vars)
        self.full_time += elapsed
        _obs.incr("cgraph.closure.full.calls")
        _obs.observe("cgraph.closure.full.vars", num_vars)
        _obs.observe("cgraph.closure.full.time", elapsed)

    def record_incremental(self, num_vars: int, elapsed: float) -> None:
        """Record one O(n^2) incremental closure."""
        self.incremental_calls += 1
        self.incremental_vars.append(num_vars)
        self.incremental_time += elapsed
        _obs.incr("cgraph.closure.incremental.calls")
        _obs.observe("cgraph.closure.incremental.vars", num_vars)
        _obs.observe("cgraph.closure.incremental.time", elapsed)

    def record_cache_hit(self) -> None:
        """Record one closure answered from the memo table (no execution)."""
        self.cache_hits += 1
        _obs.incr("cgraph.closure.cache_hits")

    def record_cow_share(self) -> None:
        """Record one copy that shared its bound matrix copy-on-write."""
        self.cow_shares += 1
        _obs.incr("cgraph.cow.shares")

    def record_cow_materialization(self) -> None:
        """Record one shared matrix privatized ahead of a mutation."""
        self.cow_materializations += 1
        _obs.incr("cgraph.cow.materializations")

    @property
    def closure_time(self) -> float:
        """Total seconds spent inside closure operations."""
        return self.full_time + self.incremental_time

    def avg_full_vars(self) -> float:
        """Average variable count per full closure."""
        return sum(self.full_vars) / len(self.full_vars) if self.full_vars else 0.0

    def avg_incremental_vars(self) -> float:
        """Average variable count per incremental closure."""
        if not self.incremental_vars:
            return 0.0
        return sum(self.incremental_vars) / len(self.incremental_vars)

    def closure_share(self) -> float:
        """Fraction of total analysis time spent in closures (0..1)."""
        if self.total_time <= 0:
            return 0.0
        return min(1.0, self.closure_time / self.total_time)

    def reset(self) -> None:
        """Zero all counters."""
        self.full_calls = 0
        self.full_vars = []
        self.full_time = 0.0
        self.incremental_calls = 0
        self.incremental_vars = []
        self.incremental_time = 0.0
        self.cache_hits = 0
        self.cow_shares = 0
        self.cow_materializations = 0
        self.total_time = 0.0

    def report(self) -> str:
        """Human-readable summary in the paper's Section IX terms."""
        lines = [
            f"full closures (O(n^3)):        {self.full_calls} calls, "
            f"avg {self.avg_full_vars():.1f} vars, {self.full_time:.4f}s",
            f"incremental closures (O(n^2)): {self.incremental_calls} calls, "
            f"avg {self.avg_incremental_vars():.1f} vars, "
            f"{self.incremental_time:.4f}s",
        ]
        if self.cache_hits or self.cow_shares:
            lines.append(
                f"closure cache hits:            {self.cache_hits}; "
                f"COW shares/materializations:   {self.cow_shares}/"
                f"{self.cow_materializations}"
            )
        if self.total_time > 0:
            lines.append(
                f"closure share of total time:   {100 * self.closure_share():.1f}% "
                f"({self.closure_time:.4f}s of {self.total_time:.4f}s)"
            )
        return "\n".join(lines)


_GLOBAL = ClosureStats()


def global_stats() -> ClosureStats:
    """The process-wide closure statistics instance."""
    return _GLOBAL


def reset_global_stats() -> ClosureStats:
    """Zero and return the process-wide statistics."""
    _GLOBAL.reset()
    return _GLOBAL


class timed:
    """Tiny context manager yielding elapsed seconds via ``.elapsed``."""

    def __enter__(self) -> "timed":
        self._start = time.perf_counter()
        self.elapsed = 0.0
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = time.perf_counter() - self._start
