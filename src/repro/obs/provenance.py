"""Provenance flight recorder: causal tracing of dataflow facts.

The aggregate counters and spans of :mod:`repro.obs.recorder` answer *how
much* the engine did; they cannot answer *why* a particular dataflow fact
holds — why a node fell to ``T``, why a topology is missing an edge, which
widening erased the bound a match needed.  This module records every
state-changing engine event as a :class:`ProvenanceEvent` carrying

* the pCFG node it established a fact at (``node_key``),
* the events it was *caused by* (``parents`` — the event that last defined
  the source node's state, plus, for joins, the event that last defined
  the target's), forming a derivation DAG over the whole run,
* a client-supplied delta (``data``: constraint-graph edge diffs, HSM
  prover proof/refutation traces, pset descriptions — see
  :meth:`repro.core.client.ClientAnalysis.describe_transfer`), and
* monotonic timing (``ts``/``dur``), which is what the Chrome-trace
  exporter (:mod:`repro.obs.export`) turns into a timeline.

Memory is bounded: events live in a ring buffer of ``capacity`` entries;
when the ring overflows, the oldest event is either dropped (counted in
``evicted``) or appended to a JSONL *spill file* so the full journal
survives (``spill_path``).  Lookups transparently fall back to the spill
file, so causal chains remain resolvable after eviction.

Like the metrics recorder, the flight recorder is process-global, disabled
by default, and zero-cost when disabled: the engine fetches
:func:`active` once per run and guards every emit site with a single
``is not None`` check.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import slog

#: default ring capacity (events); explain runs may raise it
DEFAULT_CAPACITY = 65536

#: recursion cap for :func:`_plain` (client deltas are shallow in practice)
_PLAIN_DEPTH = 6


def _plain(value: Any, depth: int = _PLAIN_DEPTH) -> Any:
    """Coerce a client-supplied value to JSON-plain data.

    Events must serialize into the JSONL journal, the Chrome trace, and
    checkpoint snapshots without registering codecs, so anything a client
    attaches is flattened here: containers recurse (depth-capped), scalars
    pass through, everything else becomes ``str``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # NaN/inf are not valid JSON; render them as strings
        return value if value == value and abs(value) != float("inf") else str(value)
    if depth <= 0:
        return str(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=str) if isinstance(value, (set, frozenset)) else value
        return [_plain(item, depth - 1) for item in items]
    if isinstance(value, dict):
        return {str(k): _plain(v, depth - 1) for k, v in value.items()}
    return str(value)


@dataclass(frozen=True)
class ProvenanceEvent:
    """One recorded state-changing engine event (a node of the derivation DAG).

    ``kind`` is one of the engine's event vocabulary: ``run_start``,
    ``entry``, ``transfer``, ``branch``, ``split``, ``match``, ``buffer``,
    ``merge``, ``join``, ``widen``, ``match_attempt``, ``giveup``,
    ``client_fault``, ``cfg_malformed``, ``budget_trip``,
    ``checkpoint_write``, ``checkpoint_resume``, ``checkpoint_rejected``.
    Clients and tools may introduce further kinds; consumers must treat the
    vocabulary as open.
    """

    event_id: int
    kind: str
    step: int = 0
    #: pCFG node key whose state this event (re)defined, if any
    node_key: Optional[tuple] = None
    #: causal parent event ids (may reference spilled/evicted events)
    parents: Tuple[int, ...] = ()
    detail: str = ""
    #: JSON-plain client delta (constraint edge diffs, prover traces, ...)
    data: Optional[dict] = None
    #: seconds since the recorder started
    ts: float = 0.0
    #: measured duration in seconds (0 for instant events)
    dur: float = 0.0

    def to_dict(self) -> dict:
        """JSON-plain rendering (the journal line / snapshot form)."""
        doc: Dict[str, Any] = {
            "id": self.event_id,
            "kind": self.kind,
            "step": self.step,
            "ts": round(self.ts, 9),
        }
        if self.node_key is not None:
            doc["node"] = [list(part) for part in self.node_key]
        if self.parents:
            doc["parents"] = list(self.parents)
        if self.detail:
            doc["detail"] = self.detail
        if self.data is not None:
            doc["data"] = self.data
        if self.dur:
            doc["dur"] = round(self.dur, 9)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ProvenanceEvent":
        node = doc.get("node")
        return cls(
            event_id=int(doc["id"]),
            kind=str(doc["kind"]),
            step=int(doc.get("step", 0)),
            node_key=tuple(tuple(part) for part in node) if node is not None else None,
            parents=tuple(int(p) for p in doc.get("parents", ())),
            detail=str(doc.get("detail", "")),
            data=doc.get("data"),
            ts=float(doc.get("ts", 0.0)),
            dur=float(doc.get("dur", 0.0)),
        )

    def describe(self, cfg=None) -> str:
        """One-line human rendering for causal-chain output."""
        where = ""
        if self.node_key is not None:
            locs, pending = self.node_key
            if cfg is not None:
                labels = ",".join(
                    cfg.node(nid).label or str(nid) for nid in locs
                )
            else:
                labels = ",".join(str(nid) for nid in locs)
            inflight = f" +{len(pending)} in flight" if pending else ""
            where = f" at node ({labels}{inflight})"
        detail = f" — {self.detail}" if self.detail else ""
        return f"#{self.event_id} {self.kind}{where} [step {self.step}]{detail}"


@dataclass
class ProvenanceRecorder:
    """Ring buffer of provenance events with optional spill-to-JSONL."""

    capacity: int = DEFAULT_CAPACITY
    #: overflow sink: evicted events are appended here as JSONL (None: drop)
    spill_path: Optional[str] = None
    evicted: int = field(default=0, init=False)
    #: id of the most recently emitted event (None before the first)
    last_event_id: Optional[int] = field(default=None, init=False)
    #: pCFG node key -> id of the event that last defined its state
    node_event: Dict[tuple, int] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        self.capacity = max(16, int(self.capacity))
        self._events: "OrderedDict[int, ProvenanceEvent]" = OrderedDict()
        self._next_id = 1
        self._start = perf_counter()
        self._spill_cache: Optional[Dict[int, ProvenanceEvent]] = None

    # -- recording -------------------------------------------------------------

    def emit(
        self,
        kind: str,
        node_key: Optional[tuple] = None,
        parents: Tuple[Optional[int], ...] = (),
        detail: str = "",
        data: Optional[dict] = None,
        step: int = 0,
        dur: float = 0.0,
    ) -> int:
        """Record one event; returns its id (the DAG handle)."""
        event_id = self._next_id
        self._next_id += 1
        event = ProvenanceEvent(
            event_id=event_id,
            kind=kind,
            step=step,
            node_key=node_key,
            parents=tuple(p for p in parents if p is not None),
            detail=detail,
            data=_plain(data) if data is not None else None,
            ts=perf_counter() - self._start,
            dur=dur,
        )
        self._events[event_id] = event
        self.last_event_id = event_id
        if node_key is not None:
            self.node_event[node_key] = event_id
        if len(self._events) > self.capacity:
            _, evictee = self._events.popitem(last=False)
            self.evicted += 1
            if self.spill_path is not None:
                self._spill(evictee)
        if slog.enabled_for("debug"):
            slog.debug(f"prov.{kind}", id=event_id, step=step,
                       node=list(node_key[0]) if node_key else None,
                       detail=detail or None)
        return event_id

    def _spill(self, event: ProvenanceEvent) -> None:
        with open(self.spill_path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        if self._spill_cache is not None:
            self._spill_cache[event.event_id] = event

    # -- queries ---------------------------------------------------------------

    @property
    def total_events(self) -> int:
        """Events ever emitted (live + evicted)."""
        return self._next_id - 1

    def events(self) -> List[ProvenanceEvent]:
        """The live (in-ring) events, oldest first."""
        return list(self._events.values())

    def get(self, event_id: int) -> Optional[ProvenanceEvent]:
        """Resolve an event id — from the ring, then from the spill file."""
        event = self._events.get(event_id)
        if event is not None:
            return event
        if self.spill_path is None:
            return None
        if self._spill_cache is None:
            self._spill_cache = {}
            try:
                text = Path(self.spill_path).read_text(encoding="utf-8")
            except OSError:
                text = ""
            for line in text.splitlines():
                if not line.strip():
                    continue
                try:
                    spilled = ProvenanceEvent.from_dict(json.loads(line))
                except (ValueError, KeyError):
                    continue
                self._spill_cache[spilled.event_id] = spilled
        return self._spill_cache.get(event_id)

    def events_for_node(self, locs: tuple) -> List[ProvenanceEvent]:
        """Live events whose node key has the given CFG-location tuple."""
        locs = tuple(locs)
        return [
            event
            for event in self._events.values()
            if event.node_key is not None and tuple(event.node_key[0]) == locs
        ]

    def chain(self, event_id: int, limit: int = 200) -> List[ProvenanceEvent]:
        """The causal chain of an event: its ancestors plus itself.

        Walks the parent DAG backward (breadth-first, deduplicated) and
        returns the events in causal order (oldest first, the queried event
        last).  ``limit`` bounds the walk for pathological fan-in; ancestry
        through evicted events resolves via the spill file when configured,
        and silently truncates otherwise.
        """
        seen = set()
        frontier = [event_id]
        collected: Dict[int, ProvenanceEvent] = {}
        while frontier and len(collected) < limit:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            event = self.get(current)
            if event is None:
                continue
            collected[event.event_id] = event
            frontier.extend(event.parents)
        return [collected[eid] for eid in sorted(collected)]

    # -- checkpoint integration -------------------------------------------------

    def snapshot_state(self) -> dict:
        """JSON-plain journal for a checkpoint snapshot (live events only)."""
        return {
            "next_id": self._next_id,
            "evicted": self.evicted,
            "events": [event.to_dict() for event in self._events.values()],
        }

    def preload(self, state: dict) -> None:
        """Reinstall a journal captured by :meth:`snapshot_state`.

        Used on resume so the recovered run continues the interrupted
        run's causal history seamlessly: event ids keep counting from
        where the snapshot stopped and the per-node defining events are
        rebuilt, so new events link into the restored DAG.
        """
        events = [ProvenanceEvent.from_dict(doc) for doc in state.get("events", [])]
        events.sort(key=lambda event: event.event_id)
        for event in events[-self.capacity:]:
            self._events[event.event_id] = event
            if event.node_key is not None:
                self.node_event[event.node_key] = event.event_id
            self.last_event_id = event.event_id
        self.evicted += int(state.get("evicted", 0))
        top = max((event.event_id for event in events), default=0)
        self._next_id = max(self._next_id, int(state.get("next_id", 1)), top + 1)

    def kind_counts(self) -> Dict[str, int]:
        """Tally of live events by kind (summary output)."""
        counts: Dict[str, int] = {}
        for event in self._events.values():
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


# -- module-level switchboard (mirrors repro.obs.recorder) ---------------------

_active: Optional[ProvenanceRecorder] = None


def active() -> Optional[ProvenanceRecorder]:
    """The installed flight recorder, or None when disabled."""
    return _active


def enabled() -> bool:
    """True iff provenance is currently being recorded."""
    return _active is not None


def enable(
    capacity: int = DEFAULT_CAPACITY, spill_path: Optional[str] = None
) -> ProvenanceRecorder:
    """Install (and return) a flight recorder.

    Keeps the current recorder when one is already installed and no
    arguments force a change — mirroring :func:`repro.obs.enable`.
    """
    global _active
    if _active is None:
        _active = ProvenanceRecorder(capacity=capacity, spill_path=spill_path)
    return _active


def disable() -> None:
    """Stop recording (the recorder object survives for whoever holds it)."""
    global _active
    _active = None


def reset() -> None:
    """Drop the recorder entirely: the pristine disabled state."""
    disable()


@contextmanager
def recording(
    capacity: int = DEFAULT_CAPACITY, spill_path: Optional[str] = None
) -> Iterator[ProvenanceRecorder]:
    """Temporarily install a fresh flight recorder, restoring the previous
    state on exit — how ``repro explain`` / ``repro profile --trace``
    isolate their journals."""
    global _active
    previous = _active
    recorder = ProvenanceRecorder(capacity=capacity, spill_path=spill_path)
    _active = recorder
    try:
        yield recorder
    finally:
        _active = previous


def emit(
    kind: str,
    node_key: Optional[tuple] = None,
    parents: Tuple[Optional[int], ...] = (),
    detail: str = "",
    data: Optional[dict] = None,
    step: int = 0,
    dur: float = 0.0,
) -> Optional[int]:
    """Record one event on the active recorder (None when disabled)."""
    recorder = _active
    if recorder is None:
        return None
    return recorder.emit(
        kind, node_key=node_key, parents=parents, detail=detail,
        data=data, step=step, dur=dur,
    )
