"""Structured logging: engine events mirrored to stderr as single-line JSON.

Replaces ad-hoc prints for operational visibility: when enabled (CLI
``--log-level`` or the ``REPRO_LOG`` environment variable), the engine,
driver and flight recorder mirror noteworthy events to stderr, one JSON
object per line, machine-parseable by any log pipeline::

    {"ts": 1723.512, "level": "warning", "event": "engine.budget_trip", ...}

Levels are the conventional ``debug < info < warning < error``.  Disabled
(the default) costs one integer comparison per call site; callers emitting
expensive payloads should pre-check :func:`enabled_for`.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Optional

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

#: disabled sentinel: above every real level
_OFF = 100

_threshold = _OFF

#: environment knob mirrored by the CLI's ``--log-level``
ENV_VAR = "REPRO_LOG"

#: optional callable returning ambient fields (e.g. the active trace/span
#: ids) folded into every emitted record; explicit fields win on clash.
#: Registered by :mod:`repro.obs.trace` at import — slog itself stays
#: dependency-free.
_context_provider = None


def set_context_provider(provider) -> None:
    """Install a zero-arg callable whose dict result (or None) is merged
    into every record that clears the threshold."""
    global _context_provider
    _context_provider = provider


def configure(level: Optional[str]) -> None:
    """Set the logging threshold; None/""/"off" disables."""
    global _threshold
    if not level or level.lower() in ("off", "none"):
        _threshold = _OFF
        return
    name = level.lower()
    if name not in LEVELS:
        raise ValueError(
            f"unknown log level {level!r} (choose from {sorted(LEVELS)} or 'off')"
        )
    _threshold = LEVELS[name]


def configure_from_env() -> None:
    """Apply ``REPRO_LOG`` if set (invalid values disable, never crash)."""
    value = os.environ.get(ENV_VAR)
    if value is None:
        return
    try:
        configure(value)
    except ValueError:
        print(
            json.dumps({"level": "error", "event": "slog.bad_level", "value": value}),
            file=sys.stderr,
        )


def enabled_for(level: str) -> bool:
    """True when a record at ``level`` would be written."""
    return LEVELS.get(level, _OFF) >= _threshold


def log(level: str, event: str, **fields: Any) -> None:
    """Write one single-line JSON record to stderr (no-op below threshold)."""
    if LEVELS.get(level, _OFF) < _threshold:
        return
    record = {"ts": round(time.time(), 6), "level": level, "event": event}
    if _context_provider is not None:
        try:
            context = _context_provider()
        except Exception:
            context = None
        if context:
            record.update(context)
    for key, value in fields.items():
        if value is not None:
            record[key] = value
    print(json.dumps(record, sort_keys=True, default=str), file=sys.stderr)


def debug(event: str, **fields: Any) -> None:
    log("debug", event, **fields)


def info(event: str, **fields: Any) -> None:
    log("info", event, **fields)


def warning(event: str, **fields: Any) -> None:
    log("warning", event, **fields)


def error(event: str, **fields: Any) -> None:
    log("error", event, **fields)
