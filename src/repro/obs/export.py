"""Provenance exporters: Chrome trace (Perfetto) and JSONL event journal.

Two serializations of a :class:`~repro.obs.provenance.ProvenanceRecorder`'s
derivation DAG:

* :func:`to_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev.  Events are grouped
  into named tracks by kind (propagation, matching, convergence,
  degradation, checkpointing) so a degraded run reads as a timeline:
  you can *see* the widen that preceded the match failure.  The
  ``args`` of every slice carry the event id, parents, node key and
  client delta, so the causal DAG survives the export.
* :func:`to_jsonl` / :func:`write_journal` — one event per line, the
  archival/streaming form (also what the ring buffer spills on overflow,
  so the two are concatenable).

:func:`validate_chrome_trace` is the structural schema check used by the
tests and the ``explain-smoke`` CI job — no Chrome required.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.obs.provenance import ProvenanceEvent, ProvenanceRecorder

#: event kind -> named track (Chrome trace "thread"); unknown kinds land
#: on the "other" track so the vocabulary stays open
KIND_TRACKS = {
    "run_start": "engine",
    "checkpoint_write": "checkpoint",
    "checkpoint_resume": "checkpoint",
    "checkpoint_rejected": "checkpoint",
    "entry": "propagate",
    "transfer": "propagate",
    "branch": "propagate",
    "buffer": "propagate",
    "split": "propagate",
    "merge": "propagate",
    "match": "matching",
    "match_attempt": "matching",
    "join": "convergence",
    "widen": "convergence",
    "giveup": "degradation",
    "client_fault": "degradation",
    "cfg_malformed": "degradation",
    "budget_trip": "degradation",
}

#: stable track order (tid assignment) for a readable Perfetto layout
TRACK_ORDER = (
    "engine",
    "propagate",
    "matching",
    "convergence",
    "degradation",
    "checkpoint",
    "other",
)

_EventsSource = Union[ProvenanceRecorder, Iterable[ProvenanceEvent]]


def _events_of(source: _EventsSource) -> List[ProvenanceEvent]:
    if isinstance(source, ProvenanceRecorder):
        return source.events()
    return list(source)


def to_chrome_trace(source: _EventsSource, process_name: str = "repro") -> dict:
    """Render events as a Chrome Trace Event Format document (a dict)."""
    events = _events_of(source)
    tids = {name: index for index, name in enumerate(TRACK_ORDER)}
    trace: List[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for name, tid in sorted(tids.items(), key=lambda item: item[1]):
        trace.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    for event in events:
        track = KIND_TRACKS.get(event.kind, "other")
        args: Dict[str, object] = {"id": event.event_id, "step": event.step}
        if event.parents:
            args["parents"] = list(event.parents)
        if event.node_key is not None:
            args["node"] = [list(part) for part in event.node_key]
        if event.detail:
            args["detail"] = event.detail
        if event.data is not None:
            args["data"] = event.data
        trace.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": tids[track],
                "name": event.kind,
                "cat": track,
                # Trace Event timestamps/durations are microseconds; zero
                # durations render invisibly, so instants get a 1us floor
                "ts": event.ts * 1e6,
                "dur": max(event.dur * 1e6, 1.0),
                "args": args,
            }
        )
    return {"displayTimeUnit": "ms", "traceEvents": trace}


def write_chrome_trace(
    path, source: _EventsSource, process_name: str = "repro"
) -> Path:
    """Write :func:`to_chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    document = to_chrome_trace(source, process_name=process_name)
    path.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
    return path


def validate_chrome_trace(document: object) -> None:
    """Structural schema check of a Chrome trace document.

    Raises ``ValueError`` naming the first violation; returning means the
    document is loadable by ``chrome://tracing`` / Perfetto (JSON object
    form, complete/metadata phases, numeric non-negative timestamps).
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty array")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        phase = event.get("ph")
        if phase not in ("X", "M", "i", "B", "E", "C"):
            raise ValueError(f"{where} has unsupported phase {phase!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where} is missing a name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where} is missing integer {key!r}")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value != value:
                    raise ValueError(f"{where} has non-numeric {key!r}")
                if value < 0:
                    raise ValueError(f"{where} has negative {key!r}")
        if "args" in event and not isinstance(event["args"], dict):
            raise ValueError(f"{where} args must be an object")


def to_jsonl(source: _EventsSource) -> str:
    """The events as a JSONL journal (one JSON object per line)."""
    lines = [
        json.dumps(event.to_dict(), sort_keys=True)
        for event in _events_of(source)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_journal(path, source: _EventsSource) -> Path:
    """Write the JSONL event journal; returns the path.

    When the source recorder spilled evicted events to the same path, the
    journal is appended so the file holds the complete history; otherwise
    the file is created fresh.
    """
    path = Path(path)
    spill = (
        source.spill_path
        if isinstance(source, ProvenanceRecorder)
        else None
    )
    mode = "a" if spill is not None and Path(spill) == path else "w"
    with open(path, mode, encoding="utf-8") as handle:
        handle.write(to_jsonl(source))
    return path


def read_journal(path) -> List[ProvenanceEvent]:
    """Parse a JSONL journal back into events (malformed lines skipped)."""
    events: List[ProvenanceEvent] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            events.append(ProvenanceEvent.from_dict(json.loads(line)))
        except (ValueError, KeyError):
            continue
    return events
