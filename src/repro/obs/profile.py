"""Section IX profile export: one JSON document plus a human-readable table.

The paper's Section IX attributes 92.5% of analysis time to constraint-graph
consistency maintenance.  :func:`profile_program` re-measures that cost
profile on any program: it runs the simple symbolic analysis under a fresh
:class:`~repro.obs.recorder.Recorder`, then folds the span/counter/histogram
aggregates and the closure statistics into a :class:`Profile` that

* prints a Section IX-style cost table (:meth:`Profile.table`), whose
  closure-share lines are exactly ``ClosureStats.report()``, and
* serializes to JSON (:meth:`Profile.to_json`) for the CI build artifact
  and for ``benchmarks/bench_sec9_profile.py``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from time import perf_counter
from typing import Any, Dict, Optional

from repro.obs.recorder import Recorder, recording

#: span-name prefix -> the paper's Section IX cost category it reproduces
SPAN_CATEGORIES = {
    "cgraph.closure.full": "O(n^3) transitive closure (Sec. IX dominant cost)",
    "cgraph.closure.incremental": "O(n^2) incremental closure",
    "engine.match": "send-receive matching (matchSendsRecvs)",
    "engine.transfer": "client transfer functions",
    "engine.branch": "branch evaluation / process-set splits",
    "engine.canonicalize": "configuration canonicalization",
    "engine.join": "state join at pCFG nodes",
    "engine.widen": "loop widening",
    "hsm.prove": "HSM equality proofs (Sec. VIII-B)",
    "sweep.analyze": "corpus sweep: analyzer leg (fallback ladder)",
    "sweep.oracle": "corpus sweep: concrete interpreter oracle",
    "sweep.run": "corpus sweep: whole-tier wall clock",
}


@dataclass
class Profile:
    """One analysis run's complete cost profile (JSON-plain fields only)."""

    program: str
    mode: str  # "optimized" (default closure strategy) or "naive"
    total_time: float
    closure: Dict[str, Any] = field(default_factory=dict)
    spans: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, Any] = field(default_factory=dict)
    histograms: Dict[str, Any] = field(default_factory=dict)
    engine: Dict[str, Any] = field(default_factory=dict)

    # -- ClosureStats-compatible accessors (the benches read these) ----------

    @property
    def full_calls(self) -> int:
        return self.closure.get("full_calls", 0)

    @property
    def incremental_calls(self) -> int:
        return self.closure.get("incremental_calls", 0)

    def avg_full_vars(self) -> float:
        return self.closure.get("avg_full_vars", 0.0)

    def avg_incremental_vars(self) -> float:
        return self.closure.get("avg_incremental_vars", 0.0)

    def closure_share(self) -> float:
        return self.closure.get("share", 0.0)

    # -- serialization -------------------------------------------------------

    def to_json(self, indent: int = 2) -> str:
        """The profile as a JSON document (round-trips via ``from_json``)."""
        return json.dumps(asdict(self), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Profile":
        return cls(**json.loads(text))

    # -- presentation --------------------------------------------------------

    def table(self) -> str:
        """A Section IX-style cost table.

        The per-phase rows come from the span aggregates; the closing
        closure-share block is ``ClosureStats.report()`` verbatim, so the
        two instruments stay mutually consistent.
        """
        title = f"Section IX cost profile — {self.program} ({self.mode})"
        bar = "=" * len(title)
        lines = [bar, title, bar]
        engine = self.engine
        if engine:
            lines.append(
                f"total {self.total_time:.4f}s | engine steps {engine.get('steps', 0)} | "
                f"pCFG nodes {engine.get('pcfg_nodes', 0)} | "
                f"matches {engine.get('matches', 0)}"
            )
        lines.append("")
        lines.append(
            f"{'phase':32s} {'calls':>8} {'total(s)':>10} {'self(s)':>10} {'share':>7}"
        )
        ordered = sorted(
            self.spans.items(), key=lambda kv: kv[1]["total_time"], reverse=True
        )
        for name, stats in ordered:
            share = stats["total_time"] / self.total_time if self.total_time else 0.0
            lines.append(
                f"{name:32s} {stats['count']:>8} {stats['total_time']:>10.4f} "
                f"{stats['self_time']:>10.4f} {100 * share:>6.1f}%"
            )
        interesting = [
            (name, count)
            for name, count in sorted(self.counters.items())
            if not name.endswith(".calls")
        ]
        if interesting:
            lines.append("")
            lines.append("counters:")
            for name, count in interesting:
                lines.append(f"  {name:30s} {count:>8}")
        report = self.closure.get("report")
        if report:
            lines.append("")
            lines.append(report)
        return "\n".join(lines)


def build_profile(
    program: str,
    mode: str,
    total_time: float,
    stats,
    recorder: Recorder,
    result=None,
) -> Profile:
    """Fold closure stats + recorder aggregates (+ engine result) together.

    ``stats`` is a :class:`~repro.cgraph.stats.ClosureStats`; its
    ``total_time`` should already be set so ``report()`` includes the
    closure-share line.
    """
    snapshot = recorder.snapshot()
    closure = {
        "full_calls": stats.full_calls,
        "full_time": stats.full_time,
        "avg_full_vars": stats.avg_full_vars(),
        "incremental_calls": stats.incremental_calls,
        "incremental_time": stats.incremental_time,
        "avg_incremental_vars": stats.avg_incremental_vars(),
        "closure_time": stats.closure_time,
        "share": stats.closure_share(),
        "report": stats.report(),
    }
    engine: Dict[str, Any] = {}
    if result is not None:
        engine = {
            "steps": result.steps,
            "gave_up": result.gave_up,
            "give_up_reason": result.give_up_reason,
            "confidence": result.confidence,
            "diagnostics": [
                {"code": diag.code, "severity": diag.severity,
                 "message": diag.message}
                for diag in result.diagnostics
            ],
            "pcfg_nodes": result.explored.node_count(),
            "pcfg_edges": result.explored.edge_count(),
            "matches": len(result.match_records),
        }
    return Profile(
        program=program,
        mode=mode,
        total_time=total_time,
        closure=closure,
        spans=snapshot["spans"],
        counters=snapshot["counters"],
        histograms=snapshot["histograms"],
        engine=engine,
    )


def profile_program(
    program_or_spec,
    *,
    name: Optional[str] = None,
    naive: bool = False,
    client=None,
):
    """Profile one simple-symbolic analysis run end to end.

    Returns ``(profile, result)``.  A dedicated recorder is installed for
    the duration of the run (the caller's enable/disable state is
    untouched), and a dedicated :class:`ClosureStats` captures the closure
    counts, exactly like the Section IX harness.
    """
    from repro.analyses.simple_symbolic import SimpleSymbolicClient, analyze_program
    from repro.cgraph.stats import ClosureStats

    stats = ClosureStats()
    if client is None:
        client = SimpleSymbolicClient(stats=stats, naive_closure=naive)
    elif client.stats is not None:
        stats = client.stats
    with recording() as recorder:
        start = perf_counter()
        result, _cfg, _client = analyze_program(program_or_spec, client)
        total = perf_counter() - start
    stats.total_time = total
    label = name or getattr(program_or_spec, "name", None) or "<program>"
    mode = "naive" if naive else "optimized"
    return build_profile(label, mode, total, stats, recorder, result), result
