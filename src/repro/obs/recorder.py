"""Structured tracing and metrics for the pCFG engine.

The observability layer has exactly two states:

* **disabled** (the default): the active recorder is a :class:`NullRecorder`
  whose every operation is a no-op, so instrumented hot paths pay only a
  couple of function calls per event.  Tier-1 timings must not regress.
* **enabled**: the active recorder is a :class:`Recorder` aggregating
  hierarchical *spans* (nested timed regions, with self-time attribution),
  *counters* (monotonic event counts), and *histograms* (value
  distributions: count/total/min/max).

Instrumented code never branches on the state — it calls the module-level
:func:`span` / :func:`incr` / :func:`observe` helpers, which dispatch to
whatever recorder is currently installed.

Concurrency model
-----------------

The default recorder is process-global and unlocked, matching the
single-threaded analysis engine.  The analysis *service* runs concurrent
jobs in worker threads, which needs two extra pieces:

* **per-job isolation** (the fast path): :func:`job_recording` installs a
  private recorder for the current thread only — the same snapshot/merge
  pattern the PR 7 process pools use, so a job's counters never race with
  another job's and are folded into the shared recorder in one locked
  :func:`merge_counters` call at job end;
* **a locked fallback**: ``Recorder(locked=True)`` serializes counter and
  histogram updates (and keeps a per-thread span stack), so the *shared*
  recorder that absorbs those merges — and any stray unisolated
  ``incr`` from a service thread — stays consistent under concurrency.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterator, List, Optional, Union


class _NullSpan:
    """Reusable no-op context manager handed out by the disabled recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every operation is a no-op."""

    __slots__ = ()

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def incr(self, name: str, amount: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def merge_counters(self, counters: Dict[str, int]) -> None:
        pass

    def reset(self) -> None:
        pass

    def snapshot(self) -> Dict[str, dict]:
        return {"spans": {}, "counters": {}, "histograms": {}}


@dataclass
class SpanStats:
    """Aggregated timing of one span name."""

    count: int = 0
    #: wall time inside the span, children included
    total_time: float = 0.0
    #: wall time inside the span minus time inside child spans
    self_time: float = 0.0


#: retained samples per histogram for the percentile summaries; beyond it
#: the reservoir is overwritten cyclically (a recent-window estimate)
RESERVOIR_SIZE = 1024

#: percentile points reported in snapshots (p50/p90/p99)
PERCENTILES = (0.50, 0.90, 0.99)


def percentile(values, q: float) -> Optional[float]:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 1]).

    The one percentile definition in the codebase: histogram snapshots,
    the metrics exposition, and the load generator's latency summary all
    route through it, so their numbers agree by construction.  Returns
    None for an empty series — never NaN.
    """
    if not values:
        return None
    ordered = sorted(values)
    last = len(ordered) - 1
    return ordered[min(last, int(q * last + 0.5))]


@dataclass
class HistogramStats:
    """Summary statistics of one observed value stream."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def __post_init__(self) -> None:
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        if value != value:  # NaN would poison total/mean/percentiles and
            return          # serialize as invalid JSON; drop it at the door
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < RESERVOIR_SIZE:
            self._samples.append(value)
        else:
            self._samples[(self.count - 1) % RESERVOIR_SIZE] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentiles(self) -> Optional[Dict[str, float]]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` from the sample
        reservoir, or None for an empty series — never NaN.  Estimated by
        nearest-rank over up to ``RESERVOIR_SIZE`` retained samples."""
        if not self._samples:
            return None
        return {f"p{int(q * 100)}": percentile(self._samples, q) for q in PERCENTILES}

    def samples(self) -> List[float]:
        """A copy of the retained sample reservoir (for re-summarizing at
        other percentile points, e.g. the metrics exposition)."""
        return list(self._samples)


class _Span:
    """A live span: measures one enter/exit and feeds the recorder."""

    __slots__ = ("_recorder", "name", "_start", "_child_time")

    def __init__(self, recorder: "Recorder", name: str):
        self._recorder = recorder
        self.name = name

    def __enter__(self) -> "_Span":
        self._child_time = 0.0
        self._recorder._stack.append(self)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = perf_counter() - self._start
        recorder = self._recorder
        stack = recorder._stack
        stack.pop()
        lock = recorder._lock
        if lock is not None:
            with lock:
                stats = recorder.spans.setdefault(self.name, SpanStats())
                stats.count += 1
                stats.total_time += elapsed
                stats.self_time += elapsed - self._child_time
        else:
            stats = recorder.spans.setdefault(self.name, SpanStats())
            stats.count += 1
            stats.total_time += elapsed
            stats.self_time += elapsed - self._child_time
        if stack:
            stack[-1]._child_time += elapsed
        return False


class Recorder:
    """The enabled recorder: aggregates spans, counters, and histograms.

    ``locked=True`` makes counter/histogram updates and merges
    thread-safe and keeps one span stack *per thread*, so a recorder
    shared by concurrent service threads aggregates consistently.  The
    default (unlocked) recorder stays free of any synchronization cost.
    """

    enabled = True

    def __init__(self, locked: bool = False) -> None:
        self.spans: Dict[str, SpanStats] = {}
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, HistogramStats] = {}
        self._lock: Optional[threading.Lock] = threading.Lock() if locked else None
        self._tls: Optional[threading.local] = threading.local() if locked else None
        self._serial_stack: List[_Span] = []

    @property
    def _stack(self) -> List["_Span"]:
        if self._tls is None:
            return self._serial_stack
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(self, name: str) -> _Span:
        """A context manager timing one region under ``name``."""
        return _Span(self, name)

    def incr(self, name: str, amount: int = 1) -> None:
        """Bump a monotonic counter."""
        lock = self._lock
        if lock is not None:
            with lock:
                self.counters[name] = self.counters.get(name, 0) + amount
        else:
            self.counters[name] = self.counters.get(name, 0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one value into a histogram."""
        lock = self._lock
        if lock is not None:
            with lock:
                self.histograms.setdefault(name, HistogramStats()).add(value)
        else:
            self.histograms.setdefault(name, HistogramStats()).add(value)

    def merge_counters(self, counters: Dict[str, int]) -> None:
        """Fold a counter snapshot from another process into this recorder.

        Worker processes (the sharded engine, sweep/batch pool workers)
        cannot share the parent's recorder; they enable a private one,
        return ``dict(recorder.counters)`` with their result, and the
        parent merges it here so ``engine.*``/``sweep.*`` counts survive
        the pool.  Service job threads use the same pattern through
        :func:`job_recording`.  Spans and histograms are deliberately not
        merged: their wall-clock attribution is only meaningful within
        one process.
        """
        lock = self._lock
        if lock is not None:
            with lock:
                for name, amount in counters.items():
                    self.counters[name] = self.counters.get(name, 0) + amount
        else:
            for name, amount in counters.items():
                self.counters[name] = self.counters.get(name, 0) + amount

    def reset(self) -> None:
        """Drop everything collected so far."""
        self.spans.clear()
        self.counters.clear()
        self.histograms.clear()
        self._stack.clear()

    def metrics_view(self):
        """A consistent ``(counters, histograms)`` copy for exposition.

        ``histograms`` maps name -> ``(count, total, samples)``.  Taken
        under the lock when this recorder is the locked shared instance,
        so a /metrics scrape never races a job thread mid-update (dict
        iteration during mutation raises RuntimeError).
        """
        lock = self._lock
        if lock is not None:
            with lock:
                return dict(self.counters), {
                    name: (h.count, h.total, h.samples())
                    for name, h in self.histograms.items()
                }
        return dict(self.counters), {
            name: (h.count, h.total, h.samples())
            for name, h in self.histograms.items()
        }

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-serializable copy of all aggregates."""
        return {
            "spans": {
                name: {
                    "count": s.count,
                    "total_time": s.total_time,
                    "self_time": s.self_time,
                }
                for name, s in self.spans.items()
            },
            "counters": dict(self.counters),
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    "mean": h.mean,
                    # None (never NaN) for an empty series, so the profile
                    # JSON stays strictly valid
                    "percentiles": h.percentiles(),
                }
                for name, h in self.histograms.items()
            },
        }


AnyRecorder = Union[Recorder, NullRecorder]

_NULL = NullRecorder()
_active: AnyRecorder = _NULL

#: per-thread recorder override (see :func:`job_recording`); checked before
#: the process-global recorder so concurrent jobs stay isolated
_tls = threading.local()


def active_recorder() -> AnyRecorder:
    """The currently installed recorder (Null when disabled).

    A thread-local override installed by :func:`job_recording` shadows
    the process-global recorder for the current thread.
    """
    override = getattr(_tls, "override", None)
    if override is not None:
        return override
    return _active


def enabled() -> bool:
    """True iff observability is currently collecting."""
    return active_recorder().enabled


def enable(recorder: Optional[Recorder] = None) -> Recorder:
    """Install (and return) an aggregating recorder.

    With no argument, keeps the current recorder if one is already enabled,
    otherwise installs a fresh one.
    """
    global _active
    if recorder is None:
        if isinstance(_active, Recorder):
            return _active
        recorder = Recorder()
    _active = recorder
    return recorder


def disable() -> None:
    """Return to the zero-cost disabled state (collected data is kept on
    the old recorder object if the caller holds a reference)."""
    global _active
    _active = _NULL


def reset() -> None:
    """Disable and drop all collected data: the pristine default state.

    Also clears the *current thread's* job-recording override, so test
    isolation fixtures return this thread to the global recorder."""
    global _active
    if isinstance(_active, Recorder):
        _active.reset()
    _active = _NULL
    _tls.override = None


@contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Temporarily install ``recorder`` (default: a fresh one), restoring
    the previous state on exit.  This is how profiling drivers isolate
    their measurements from the global recorder.  The swap is
    process-global; concurrent job threads should use
    :func:`job_recording` instead."""
    global _active
    previous = _active
    installed = recorder if recorder is not None else Recorder()
    _active = installed
    try:
        yield installed
    finally:
        _active = previous


@contextmanager
def job_recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Install a private recorder for the *current thread only*.

    The per-request isolation the analysis service uses: each concurrent
    job records into its own recorder (no locks on the hot path, no
    cross-job races), and the caller folds ``dict(recorder.counters)``
    into the shared recorder with one :func:`merge_counters` call when
    the job finishes — the same snapshot/merge pattern the PR 7 process
    pools established.  Nesting restores the previous override on exit.
    """
    installed = recorder if recorder is not None else Recorder()
    previous = getattr(_tls, "override", None)
    _tls.override = installed
    try:
        yield installed
    finally:
        _tls.override = previous


def span(name: str):
    """Time a region: ``with obs.span("engine.step"): ...``"""
    return active_recorder().span(name)


def incr(name: str, amount: int = 1) -> None:
    """Bump a counter on the active recorder."""
    active_recorder().incr(name, amount)


def observe(name: str, value: float) -> None:
    """Record a histogram value on the active recorder."""
    active_recorder().observe(name, value)


def merge_counters(counters: Optional[Dict[str, int]]) -> None:
    """Fold a worker's counter snapshot into the active recorder (no-op
    when disabled or when the snapshot is None/empty)."""
    if counters:
        active_recorder().merge_counters(counters)


def counter_snapshot() -> Optional[Dict[str, int]]:
    """A plain-dict copy of the active recorder's counters for shipping
    across a process boundary, or None when observability is disabled."""
    recorder = active_recorder()
    if isinstance(recorder, Recorder):
        return dict(recorder.counters)
    return None
