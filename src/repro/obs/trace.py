"""Cross-process request tracing: trace-context propagation + span shards.

One analysis request crosses four process/thread boundaries before it is
answered: the HTTP handler thread, the daemon's job worker thread, the
process-isolated attempt child, and (for large programs) the sharded
engine's pool workers.  This module gives that request one identity — a
``trace_id`` minted at admission — and records what each process did on
its behalf as *span shards*: per-process JSONL files of completed spans,
stitched back into a single Chrome trace by :func:`stitch` (the
``repro trace <trace_id>`` command).

Design points:

* **Context is thread-local and explicit across processes.**
  :func:`activate` installs a :class:`TraceContext` for the current
  thread; anything shipped to another process carries
  ``ctx.to_dict()`` in its payload (journal record, pipe message, shard
  task) and re-activates it on the far side.  Nothing is ambient magic:
  a process that was not handed a context records nothing.
* **Disabled mode is two attribute reads.**  With no active context or
  no configured sink, :func:`span` yields without allocating a child
  context and writes nothing — the engine's tier-1 timings stay flat.
* **Writes never raise.**  A full disk degrades tracing, not analysis;
  failed appends are counted (``trace.write_errors``) and dropped.
* **slog correlation.**  Importing this module registers a context
  provider with :mod:`repro.obs.slog`, so every emitted log line of a
  thread with an active context carries ``trace``/``span`` fields.

Shard files live under the sink directory (the daemon uses
``<state_dir>/traces``) named ``<trace_id>-<os_pid>.jsonl``; one line
per completed span::

    {"trace": ..., "span": ..., "parent": ..., "name": "serve.job",
     "ts": 1723.4, "dur": 0.12, "pid": 4711, "tid": 139..., "proc":
     "daemon", "data": {...}}

The stitcher assigns each OS pid a small integer Chrome pid (ordered by
first span start), maps thread idents to small tids, and validates the
result with :func:`repro.obs.export.validate_chrome_trace`.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional

from repro.obs import slog
from repro.obs import recorder as obs
from repro.obs.export import validate_chrome_trace


@dataclass(frozen=True)
class TraceContext:
    """The identity a request carries across process boundaries."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Optional[str]]:
        return {"trace": self.trace_id, "span": self.span_id, "parent": self.parent_id}

    @classmethod
    def from_dict(cls, document) -> Optional["TraceContext"]:
        """Rebuild a shipped context; None for anything malformed (a peer
        speaking an older protocol must not crash the receiver)."""
        if not isinstance(document, dict):
            return None
        trace_id = document.get("trace")
        span_id = document.get("span")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        if not isinstance(span_id, str) or not span_id:
            return None
        parent = document.get("parent")
        return cls(trace_id, span_id, parent if isinstance(parent, str) else None)


_local = threading.local()

#: process-global span-shard sink (a directory) and the human-readable
#: role this process plays in stitched traces ("daemon", "worker", ...)
_sink: Optional[Path] = None
_process_name = "repro"


def mint_id() -> str:
    """A fresh 16-hex-digit id (trace or span)."""
    return uuid.uuid4().hex[:16]


def mint(trace_id: Optional[str] = None) -> TraceContext:
    """A fresh root context (admission mints one per request).

    ``trace_id`` lets a client-supplied id (``X-Repro-Trace`` header)
    win, so callers can correlate with their own systems; ids are
    sanitized to at most 64 name-safe characters.
    """
    if trace_id:
        cleaned = "".join(c for c in str(trace_id) if c.isalnum() or c in "-_")[:64]
        trace_id = cleaned or None
    return TraceContext(trace_id or mint_id(), mint_id(), None)


def current() -> Optional[TraceContext]:
    """The current thread's active context, or None."""
    return getattr(_local, "ctx", None)


def current_trace_id() -> Optional[str]:
    ctx = getattr(_local, "ctx", None)
    return ctx.trace_id if ctx is not None else None


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Install ``ctx`` for the current thread (None is a no-op)."""
    if ctx is None:
        yield None
        return
    previous = getattr(_local, "ctx", None)
    _local.ctx = ctx
    try:
        yield ctx
    finally:
        _local.ctx = previous


def configure_sink(path, process_name: str = "repro") -> Optional[Path]:
    """Point span-shard writes at a directory (None disables).

    The daemon configures ``<state_dir>/traces`` before accepting work;
    forked attempt children inherit the setting, pool workers receive it
    in their task payload.
    """
    global _sink, _process_name
    _process_name = str(process_name) if process_name else "repro"
    if path is None:
        _sink = None
        return None
    _sink = Path(path)
    try:
        _sink.mkdir(parents=True, exist_ok=True)
    except OSError:
        obs.incr("trace.write_errors")
        _sink = None
    return _sink


def sink() -> Optional[Path]:
    return _sink


def _write_record(record: dict) -> None:
    path = _sink / f"{record['trace']}-{os.getpid()}.jsonl"
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    except (OSError, ValueError, TypeError):
        obs.incr("trace.write_errors")


@contextmanager
def span(name: str, **data) -> Iterator[Optional[TraceContext]]:
    """Record one named span under the active context.

    Enters a child context (so nested spans and slog lines parent
    correctly) and appends a span record to this process's shard file on
    exit.  With no active context or no sink, this is a cheap no-op.
    """
    ctx = getattr(_local, "ctx", None)
    if ctx is None or _sink is None:
        yield None
        return
    child = TraceContext(ctx.trace_id, mint_id(), ctx.span_id)
    _local.ctx = child
    start = time.time()
    try:
        yield child
    finally:
        _local.ctx = ctx
        _write_record(
            {
                "trace": child.trace_id,
                "span": child.span_id,
                "parent": child.parent_id,
                "name": name,
                "ts": start,
                "dur": max(time.time() - start, 0.0),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "proc": _process_name,
                "data": {k: v for k, v in data.items() if v is not None},
            }
        )


def event(name: str, **data) -> None:
    """Record an instantaneous marker span (duration 0)."""
    ctx = getattr(_local, "ctx", None)
    if ctx is None or _sink is None:
        return
    _write_record(
        {
            "trace": ctx.trace_id,
            "span": mint_id(),
            "parent": ctx.span_id,
            "name": name,
            "ts": time.time(),
            "dur": 0.0,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "proc": _process_name,
            "data": {k: v for k, v in data.items() if v is not None},
        }
    )


# -- stitching -----------------------------------------------------------------


def load_spans(sink_dir, trace_id: str) -> List[dict]:
    """All intact span records of one trace across every process shard.

    Malformed lines (torn writes, partial shards) are skipped — the
    stitcher works with whatever survived, like every other recovery
    path in this codebase.
    """
    records: List[dict] = []
    root = Path(sink_dir)
    if not root.is_dir():
        return records
    for path in sorted(root.glob(f"{trace_id}-*.jsonl")):
        try:
            lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
        except OSError:
            continue
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if not isinstance(record, dict) or record.get("trace") != trace_id:
                continue
            if not isinstance(record.get("name"), str) or not record["name"]:
                continue
            ts, dur = record.get("ts"), record.get("dur")
            if not isinstance(ts, (int, float)) or ts != ts:
                continue
            if not isinstance(dur, (int, float)) or dur != dur or dur < 0:
                continue
            records.append(record)
    records.sort(key=lambda r: (r["ts"], str(r.get("span", ""))))
    return records


def stitch(sink_dir, trace_id: str) -> dict:
    """Stitch one trace's per-process span shards into a Chrome trace.

    Each OS process becomes a Chrome ``pid`` (small integers, ordered by
    first span start), each thread a ``tid`` within it; ``args`` carry
    the span/parent ids so the cross-process call tree survives the
    export.  The result passes :func:`validate_chrome_trace` or this
    raises ``ValueError``.
    """
    records = load_spans(sink_dir, trace_id)
    if not records:
        raise ValueError(
            f"no span shards for trace {trace_id!r} under {sink_dir}"
        )
    by_pid: Dict[int, List[dict]] = {}
    for record in records:
        pid = record.get("pid")
        by_pid.setdefault(pid if isinstance(pid, int) else 0, []).append(record)
    ordered = sorted(by_pid, key=lambda pid: (min(r["ts"] for r in by_pid[pid]), pid))
    base_ts = min(record["ts"] for record in records)
    events: List[dict] = []
    for chrome_pid, os_pid in enumerate(ordered, start=1):
        group = by_pid[os_pid]
        proc = next(
            (r["proc"] for r in group if isinstance(r.get("proc"), str) and r["proc"]),
            "repro",
        )
        events.append(
            {
                "ph": "M",
                "pid": chrome_pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"{proc} (pid {os_pid})"},
            }
        )
        tids: Dict[object, int] = {}
        for record in group:
            ident = record.get("tid")
            if ident not in tids:
                tids[ident] = len(tids)
                events.append(
                    {
                        "ph": "M",
                        "pid": chrome_pid,
                        "tid": tids[ident],
                        "name": "thread_name",
                        "args": {"name": f"thread {len(tids) - 1}"},
                    }
                )
            args: Dict[str, object] = {
                "trace": record["trace"],
                "span": record.get("span"),
            }
            if record.get("parent"):
                args["parent"] = record["parent"]
            data = record.get("data")
            if isinstance(data, dict) and data:
                args["data"] = data
            events.append(
                {
                    "ph": "X",
                    "pid": chrome_pid,
                    "tid": tids[ident],
                    "name": record["name"],
                    "cat": "trace",
                    # microseconds, rebased to the trace start; zero-length
                    # markers get the same 1us floor as the provenance export
                    "ts": max((record["ts"] - base_ts) * 1e6, 0.0),
                    "dur": max(record["dur"] * 1e6, 1.0),
                    "args": args,
                }
            )
    document = {
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id, "processes": len(ordered)},
        "traceEvents": events,
    }
    validate_chrome_trace(document)
    return document


def _slog_context() -> Optional[Dict[str, str]]:
    ctx = getattr(_local, "ctx", None)
    if ctx is None:
        return None
    return {"trace": ctx.trace_id, "span": ctx.span_id}


slog.set_context_provider(_slog_context)
