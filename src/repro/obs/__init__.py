"""repro.obs — observability for the pCFG engine.

Hierarchical span tracing, typed counters/histograms, and a Section IX
profile exporter.  Disabled by default at zero cost; enable with::

    from repro import obs

    recorder = obs.enable()
    ...run an analysis...
    print(recorder.snapshot())

or profile a whole run in one call::

    from repro.obs import profile_program

    profile, result = profile_program(programs.get("exchange_with_root"))
    print(profile.table())          # Section IX-style cost table
    profile.to_json()               # the CI build artifact

The CLI equivalent is ``python -m repro profile <program>``.

Two sibling subsystems share the module: :mod:`repro.obs.provenance` (the
causal flight recorder behind ``repro explain`` and the Chrome-trace
export of :mod:`repro.obs.export`) and :mod:`repro.obs.slog` (structured
JSON logging to stderr, the ``--log-level`` / ``REPRO_LOG`` knob).
"""

from repro.obs import export, metrics, provenance, slog, trace
from repro.obs.profile import SPAN_CATEGORIES, Profile, build_profile, profile_program
from repro.obs.provenance import ProvenanceEvent, ProvenanceRecorder
from repro.obs.recorder import (
    HistogramStats,
    NullRecorder,
    Recorder,
    SpanStats,
    active_recorder,
    disable,
    enable,
    enabled,
    incr,
    observe,
    recording,
    reset,
    span,
)

__all__ = [
    "HistogramStats",
    "NullRecorder",
    "Profile",
    "ProvenanceEvent",
    "ProvenanceRecorder",
    "Recorder",
    "SPAN_CATEGORIES",
    "SpanStats",
    "active_recorder",
    "build_profile",
    "disable",
    "enable",
    "enabled",
    "export",
    "incr",
    "metrics",
    "observe",
    "profile_program",
    "provenance",
    "recording",
    "reset",
    "slog",
    "span",
    "trace",
]
