"""repro.obs — observability for the pCFG engine.

Hierarchical span tracing, typed counters/histograms, and a Section IX
profile exporter.  Disabled by default at zero cost; enable with::

    from repro import obs

    recorder = obs.enable()
    ...run an analysis...
    print(recorder.snapshot())

or profile a whole run in one call::

    from repro.obs import profile_program

    profile, result = profile_program(programs.get("exchange_with_root"))
    print(profile.table())          # Section IX-style cost table
    profile.to_json()               # the CI build artifact

The CLI equivalent is ``python -m repro profile <program>``.
"""

from repro.obs.profile import SPAN_CATEGORIES, Profile, build_profile, profile_program
from repro.obs.recorder import (
    HistogramStats,
    NullRecorder,
    Recorder,
    SpanStats,
    active_recorder,
    disable,
    enable,
    enabled,
    incr,
    observe,
    recording,
    reset,
    span,
)

__all__ = [
    "HistogramStats",
    "NullRecorder",
    "Profile",
    "Recorder",
    "SPAN_CATEGORIES",
    "SpanStats",
    "active_recorder",
    "build_profile",
    "disable",
    "enable",
    "enabled",
    "incr",
    "observe",
    "profile_program",
    "recording",
    "reset",
    "span",
]
