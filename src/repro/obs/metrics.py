"""Prometheus text exposition for the analysis service (stdlib only).

:func:`render` turns the process's live telemetry into the Prometheus
text format, version 0.0.4 — the lingua franca every scraper speaks —
without importing any client library:

* **obs recorder counters** become per-name counter families
  (``engine.steps`` -> ``repro_engine_steps_total``), so the worker
  counters the daemon merges home via ``counter_snapshot`` /
  ``merge_counters`` are scrapeable instead of dying with the worker;
* **obs recorder histograms** become summary families (quantiles from
  the shared nearest-rank :func:`repro.obs.recorder.percentile`, plus
  ``_count``/``_sum``).  Names carrying a trailing dimension — the
  RED-style ``serve.http.latency_ms.<endpoint>`` and
  ``serve.tenant.latency_ms.<tenant>`` series — are folded into one
  family with a proper label instead of exploding the namespace;
* **service gauges** (queue depth/capacity, jobs, draining, cache
  resident/disk entries, per-rung breaker state) come from the live
  :class:`~repro.serve.daemon.AnalysisService` when one is passed;
* **fault-plane trip counts** are exported whenever a schedule is
  engaged, so a `repro faults` run can watch itself misbehave.

The render is defensive by contract: :func:`render` itself may raise
(it honors the ``metrics.render.fail`` injection point precisely so the
harness can prove the daemon survives), but the HTTP handler catches
everything and answers with :func:`fallback_exposition` — minimal,
always-parseable text — because a monitoring endpoint that can take the
service down inverts its purpose.

:func:`parse_exposition` / :func:`validate_exposition` are the
structural checks used by the tests, the ``telemetry-smoke`` CI job and
the fault harness; like :func:`~repro.obs.export.validate_chrome_trace`
they need no external tooling.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.faults import plane as faults
from repro.obs import recorder as obs
from repro.obs.recorder import percentile

#: content type a compliant scraper expects from /metrics
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: quantile points of every summary family (the shared nearest-rank
#: estimator; p95 exists for the load generator's summary)
QUANTILES = (0.5, 0.9, 0.95, 0.99)

#: dotted-name prefixes whose final segment is a label, not part of the
#: metric name: (prefix, family name, label key)
_LABELED_HISTOGRAMS = (
    ("serve.http.latency_ms.", "repro_serve_http_latency_ms", "endpoint"),
    ("serve.tenant.latency_ms.", "repro_serve_tenant_latency_ms", "tenant"),
)

#: counter prefixes carrying trailing labels: (prefix, family, label keys);
#: the request counter ends in ``.<endpoint>.<code>``
_LABELED_COUNTERS = (
    ("serve.http.requests.", "repro_serve_http_requests_total", ("endpoint", "code")),
)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(-?[0-9eE.+-]+|NaN|[+-]Inf)$"
)


def _mangle(name: str) -> str:
    """A dotted obs name as a legal Prometheus metric name."""
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name).strip("_")


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value or value in (math.inf, -math.inf):
        return "0"
    return repr(float(value))


class _Family:
    """One metric family: TYPE/HELP header plus its samples."""

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: List[Tuple[str, Dict[str, object], float]] = []

    def add(self, value, labels: Optional[Dict[str, object]] = None, suffix: str = ""):
        self.samples.append((suffix, dict(labels or {}), value))

    def lines(self) -> List[str]:
        out = [
            f"# HELP {self.name} {_escape(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels, value in self.samples:
            label_text = ""
            if labels:
                inner = ",".join(
                    f'{key}="{_escape(val)}"' for key, val in sorted(labels.items())
                )
                label_text = "{" + inner + "}"
            out.append(f"{self.name}{suffix}{label_text} {_fmt(value)}")
        return out


def _counter_families(counters: Dict[str, int]) -> List[_Family]:
    labeled: Dict[str, _Family] = {}
    plain: List[_Family] = []
    for name in sorted(counters):
        value = counters[name]
        for prefix, family_name, keys in _LABELED_COUNTERS:
            if name.startswith(prefix):
                tail = name[len(prefix):].split(".")
                if len(tail) == len(keys):
                    family = labeled.get(family_name)
                    if family is None:
                        family = labeled[family_name] = _Family(
                            family_name, "counter", f"requests by {'/'.join(keys)}"
                        )
                    family.add(value, dict(zip(keys, tail)))
                    break
        else:
            family = _Family(
                _mangle(name) + "_total", "counter", f"obs counter {name}"
            )
            family.add(value)
            plain.append(family)
    return plain + sorted(labeled.values(), key=lambda f: f.name)


def _histogram_families(histograms) -> List[_Family]:
    #: family name -> (_Family, help) accumulating labeled series
    grouped: Dict[str, _Family] = {}
    out: List[_Family] = []
    for name in sorted(histograms):
        count, total, samples = histograms[name]
        target = None
        labels: Dict[str, object] = {}
        for prefix, family_name, key in _LABELED_HISTOGRAMS:
            if name.startswith(prefix) and name[len(prefix):]:
                target = grouped.get(family_name)
                if target is None:
                    target = grouped[family_name] = _Family(
                        family_name, "summary", f"obs histogram {prefix}<{key}>"
                    )
                labels = {key: name[len(prefix):]}
                break
        if target is None:
            target = _Family(_mangle(name), "summary", f"obs histogram {name}")
            out.append(target)
        for q in QUANTILES:
            estimate = percentile(samples, q)
            if estimate is not None:
                target.add(estimate, {**labels, "quantile": str(q)})
        target.add(count, labels, suffix="_count")
        target.add(total, labels, suffix="_sum")
    return out + sorted(grouped.values(), key=lambda f: f.name)


def _service_families(service) -> List[_Family]:
    try:
        stats = service.stats()
    except Exception:
        stats = None
    if not isinstance(stats, dict):
        return []
    families: List[_Family] = []

    def gauge(name: str, help_text: str, value) -> None:
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            family = _Family(name, "gauge", help_text)
            family.add(value)
            families.append(family)

    gauge("repro_serve_uptime_seconds", "daemon uptime", stats.get("uptime_sec"))
    gauge("repro_serve_draining", "1 once graceful drain began", stats.get("draining"))
    gauge("repro_serve_queue_depth", "admission queue depth", stats.get("queue_depth"))
    gauge("repro_serve_queue_size", "admission queue capacity", stats.get("queue_size"))
    gauge("repro_serve_jobs", "jobs tracked by the daemon", stats.get("jobs"))
    gauge("repro_serve_workers", "job worker threads", stats.get("workers"))
    cache = stats.get("cache")
    if isinstance(cache, dict):
        for key, help_text in (
            ("resident_entries", "result-cache entries resident in memory"),
            ("warm_snapshots", "warm-start snapshots held"),
            ("disk_entries", "result-cache entries on disk"),
        ):
            gauge(f"repro_serve_cache_{key}", help_text, cache.get(key))
    breaker = stats.get("breaker")
    if isinstance(breaker, dict) and breaker:
        state = _Family(
            "repro_serve_breaker_open", "gauge", "1 when the rung's breaker is open"
        )
        failures = _Family(
            "repro_serve_breaker_failures", "gauge", "consecutive failures per rung"
        )
        for rung in sorted(breaker):
            entry = breaker[rung]
            if not isinstance(entry, dict):
                continue
            state.add(int(entry.get("state") == "open"), {"rung": rung})
            count = entry.get("failures")
            if isinstance(count, (int, float)):
                failures.add(count, {"rung": rung})
        if state.samples:
            families.append(state)
        if failures.samples:
            families.append(failures)
    return families


def _fault_families() -> List[_Family]:
    plane = faults.active()
    if plane is None:
        return []
    coverage = plane.coverage()
    hits = _Family(
        "repro_fault_arrivals_total", "counter", "arrivals at each injection point"
    )
    fired = _Family(
        "repro_fault_injections_total", "counter", "faults actually injected per point"
    )
    for point in sorted(coverage):
        entry = coverage[point]
        hits.add(entry.get("hits", 0), {"point": point})
        fired.add(entry.get("fired", 0), {"point": point})
    return [hits, fired]


def render(service=None) -> str:
    """The full exposition document.  May raise (injected render faults,
    future bugs); HTTP callers must catch and fall back to
    :func:`fallback_exposition`."""
    fault = faults.check("metrics.render.fail")
    if fault is not None:
        raise RuntimeError("injected fault metrics.render.fail: registry exploded")
    obs.incr("serve.metrics.scrapes")
    recorder = obs.active_recorder()
    if isinstance(recorder, obs.Recorder):
        counters, histograms = recorder.metrics_view()
    else:
        counters, histograms = {}, {}
    families: List[_Family] = []
    up = _Family("repro_up", "gauge", "1 while the exposition renders")
    up.add(1)
    families.append(up)
    families.extend(_counter_families(counters))
    families.extend(_histogram_families(histograms))
    if service is not None:
        families.extend(_service_families(service))
    families.extend(_fault_families())
    lines: List[str] = []
    for family in families:
        lines.extend(family.lines())
    return "\n".join(lines) + "\n"


def fallback_exposition(errors: int = 1) -> str:
    """The degraded-but-parseable document served when :func:`render`
    raises: the scrape keeps succeeding and the error itself becomes a
    series an alert can watch."""
    return (
        "# HELP repro_up 1 while the exposition renders\n"
        "# TYPE repro_up gauge\n"
        "repro_up 0\n"
        "# HELP repro_metrics_render_errors_total render failures served degraded\n"
        "# TYPE repro_metrics_render_errors_total counter\n"
        f"repro_metrics_render_errors_total {int(errors)}\n"
    )


# -- scrape-side helpers (tests, CI smoke, loadgen) ----------------------------


def validate_exposition(text: str) -> List[str]:
    """Structural check of exposition text; returns the problems found
    (empty list == parseable).  Covers the failure modes a crashed or
    interleaved render would produce: non-comment garbage lines, illegal
    metric names, unparseable or NaN sample values."""
    problems: List[str] = []
    if not isinstance(text, str) or not text.strip():
        return ["exposition text is empty"]
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {number}: malformed comment {line!r}")
            elif parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "summary", "histogram", "untyped"):
                    problems.append(f"line {number}: unknown TYPE {kind!r}")
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            problems.append(f"line {number}: unparseable sample {line!r}")
            continue
        if not _NAME_OK.match(match.group(1)):
            problems.append(f"line {number}: illegal metric name {match.group(1)!r}")
        raw = match.group(3)
        if raw == "NaN":
            problems.append(f"line {number}: NaN sample value")
            continue
        try:
            float(raw)
        except ValueError:
            problems.append(f"line {number}: bad sample value {raw!r}")
    return problems


def parse_exposition(text: str) -> Dict[str, float]:
    """Samples as a flat ``name{sorted,labels} -> value`` map (comment
    lines and malformed samples skipped); the scrape-side complement of
    :func:`render` used by the smoke checks and ``--metrics-url``."""
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            continue
        try:
            value = float(match.group(3))
        except ValueError:
            continue
        samples[match.group(1) + (match.group(2) or "")] = value
    return samples


def sample_names(text: str) -> List[str]:
    """Bare metric names (labels stripped) present in exposition text."""
    names = set()
    for key in parse_exposition(text):
        names.add(key.split("{", 1)[0])
    return sorted(names)
