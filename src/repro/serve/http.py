"""HTTP surface of the analysis service (stdlib ``http.server`` only).

A deliberately thin translation layer: every policy decision lives in
:class:`repro.serve.daemon.AnalysisService`; this module maps requests
onto it and service verdicts onto status codes:

====================  ===========================================
``POST /v1/analyze``  submit one program.  ``{"wait": true}``
                      (default) blocks until the result is ready
                      (200); ``wait=false`` or a wait timeout
                      returns 202 + a job id to poll.  Cache hits
                      return 200 immediately with
                      ``"cache": "hit"``.  Shed load is 429 with a
                      ``Retry-After`` header; a draining daemon
                      answers 503.  Parse errors are 400.
``POST /v1/batch``    submit many programs; answered/cached items
                      inline, the rest as one batch job.
``GET /v1/jobs/<id>`` poll a job (200 done / 202 still running /
                      404 unknown).
``GET /healthz``      liveness: 200 as long as the process serves.
``GET /readyz``       readiness: 503 once draining (load
                      balancers stop routing before shutdown).
``GET /stats``        queue depth, cache and breaker state, obs
                      counters.
====================  ===========================================

The server is a ``ThreadingHTTPServer``: admission is cheap (parse +
hash + fsync) and executions happen on the service's own worker
threads/processes, so request threads only ever block on an Event wait.

``run_server`` wires SIGTERM to a graceful drain: stop admitting,
finish accepted work, then exit.  A ``daemon.json`` discovery file
(pid, host, port) is maintained in the state directory for tooling —
the load generator, the smoke tests, and operators.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from time import perf_counter
from typing import Optional, Tuple

from repro.core.checkpoint import atomic_write_text
from repro.faults import plane as faults
from repro.obs import metrics
from repro.obs import recorder as obs
from repro.obs import slog
from repro.obs import trace
from repro.serve.daemon import AnalysisService, AnalyzeRequest, ServiceConfig

#: request bodies above this are rejected outright (413) — an admission
#: control of its own: a 100 MB "program" is a client bug or an attack
MAX_BODY_BYTES = 8 * 1024 * 1024

#: ceiling on the synchronous wait a request may ask for — an unbounded
#: ``wait_timeout_sec`` would let one client pin a handler thread forever
MAX_WAIT_SEC = 600.0

#: how much of an oversized body the server is willing to swallow so the
#: 413 actually reaches the client (responding without reading leaves
#: the client mid-upload against a dead socket: it sees EPIPE, not our
#: status).  Bodies beyond this get the 413 + an immediate close.
DRAIN_CEILING_BYTES = 64 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    # the service instance is attached to the server object
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> AnalysisService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing --------------------------------------------------------------

    def log_message(self, fmt, *args):  # quiet by default; slog has it
        slog.debug("serve.http", request=fmt % args)

    def _send_json(self, code: int, document: dict, headers: Optional[dict] = None) -> None:
        body = json.dumps(document).encode("utf-8")
        self._send_body(code, body, "application/json", headers)

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        self._send_body(code, text.encode("utf-8"), content_type)

    def _send_body(
        self, code: int, body: bytes, content_type: str, headers: Optional[dict] = None
    ) -> None:
        self._status_code = code
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        try:
            if faults.check("http.client.disconnect") is not None:
                raise BrokenPipeError(
                    "injected fault http.client.disconnect: peer reset mid-response"
                )
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            # client hung up; the job (if any) still completes.  Close the
            # socket so a half-sent response (headers promised a body we
            # never delivered) cannot poison a keep-alive connection.
            obs.incr("serve.http.client_disconnects")
            self.close_connection = True

    def _read_body(self) -> Optional[dict]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_json(400, {"error": "bad Content-Length"})
            return None
        if length > MAX_BODY_BYTES:
            obs.incr("serve.http.body_too_large")
            if length <= DRAIN_CEILING_BYTES:
                remaining = length
                while remaining > 0:
                    chunk = self.rfile.read(min(remaining, 64 * 1024))
                    if not chunk:
                        break
                    remaining -= len(chunk)
            else:
                self.close_connection = True
            self._send_json(
                413,
                {
                    "error": "request body too large",
                    "limit_bytes": MAX_BODY_BYTES,
                    "got_bytes": length,
                },
            )
            return None
        raw = self.rfile.read(length) if length else b""
        try:
            document = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "request body is not valid JSON"})
            return None
        if not isinstance(document, dict):
            self._send_json(400, {"error": "request body must be a JSON object"})
            return None
        return document

    # -- RED accounting --------------------------------------------------------

    _ENDPOINTS = {
        "/healthz": "healthz",
        "/readyz": "readyz",
        "/stats": "stats",
        "/metrics": "metrics",
        "/v1/analyze": "analyze",
        "/v1/batch": "batch",
    }

    def _endpoint_name(self) -> str:
        if self.path.startswith("/v1/jobs/"):
            return "jobs"
        return self._ENDPOINTS.get(self.path, "other")

    def _dispatch(self, route) -> None:
        """Route one request, recording the RED series every endpoint
        exposes on /metrics: a per-endpoint latency histogram and a
        per-endpoint/per-status request counter."""
        endpoint = self._endpoint_name()
        self._status_code = 0
        start = perf_counter()
        try:
            route()
        finally:
            obs.observe(
                f"serve.http.latency_ms.{endpoint}",
                (perf_counter() - start) * 1000.0,
            )
            obs.incr(f"serve.http.requests.{endpoint}.{self._status_code or 0}")

    # -- GET -------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(self._route_get)

    def _route_get(self) -> None:
        if self.path == "/healthz":
            self._send_json(200, {"status": "ok"})
        elif self.path == "/readyz":
            if self.service.draining:
                self._send_json(503, {"status": "draining"})
            else:
                self._send_json(200, {"status": "ready"})
        elif self.path == "/stats":
            self._send_json(200, self.service.stats())
        elif self.path == "/metrics":
            self._handle_metrics()
        elif self.path.startswith("/v1/jobs/"):
            job_id = self.path[len("/v1/jobs/"):]
            job = self.service.get_job(job_id)
            if job is None:
                self._send_json(404, {"error": f"unknown job {job_id!r}"})
            elif job.done.is_set():
                self._send_json(200, {"job": job.id, "state": "done", "result": job.result})
            else:
                self._send_json(202, {"job": job.id, "state": job.state})
        else:
            self._send_json(404, {"error": f"no route for {self.path!r}"})

    def _handle_metrics(self) -> None:
        """Serve the Prometheus exposition.  A monitoring endpoint must
        never be the thing that takes the daemon down: any render failure
        (including the injected ``metrics.render.fail`` fault) degrades
        to a minimal, still-parseable document instead of a 500."""
        try:
            text = metrics.render(self.service)
        except Exception as exc:
            obs.incr("serve.metrics.render_errors")
            slog.warning("serve.metrics_render_failed", error=str(exc))
            errors = 1
            recorder = obs.active_recorder()
            if isinstance(recorder, obs.Recorder):
                errors = recorder.counters.get("serve.metrics.render_errors", 1)
            text = metrics.fallback_exposition(errors)
        self._send_text(200, text, metrics.CONTENT_TYPE)

    # -- POST ------------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch(self._route_post)

    def _route_post(self) -> None:
        document = self._read_body()
        if document is None:
            return
        if self.path == "/v1/analyze":
            self._handle_analyze(document)
        elif self.path == "/v1/batch":
            self._handle_batch(document)
        else:
            self._send_json(404, {"error": f"no route for {self.path!r}"})

    def _shed_response(self, info: dict) -> None:
        if info.get("reason") == "draining":
            self._send_json(
                503, {"error": "draining", **info},
                headers={"Retry-After": info.get("retry_after_sec", 1)},
            )
        else:
            self._send_json(
                429, {"error": "overloaded", **info},
                headers={"Retry-After": info.get("retry_after_sec", 1)},
            )

    def _handle_analyze(self, document: dict) -> None:
        try:
            request = AnalyzeRequest.from_json(document)
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        # one trace per admitted request; a client-supplied X-Repro-Trace
        # id wins so callers can correlate with their own systems
        span_ctx = trace.mint(self.headers.get("X-Repro-Trace"))
        with trace.activate(span_ctx):
            if document.get("stream"):
                self._stream_analyze(document, request, span_ctx)
                return
            wait = bool(document.get("wait", True))
            with trace.span("http.analyze"):
                status, payload = self.service.submit(request)
            if status == "hit":
                self._send_json(
                    200, {"cache": "hit", "trace": span_ctx.trace_id, "result": payload}
                )
            elif status == "rejected":
                self._send_json(400, {"error": payload})
            elif status == "shed":
                self._shed_response(payload)
            else:  # accepted
                job = payload
                if wait and job.wait(self._wait_budget(document)):
                    self._send_json(
                        200,
                        {
                            "cache": "miss",
                            "job": job.id,
                            "trace": job.trace_id or span_ctx.trace_id,
                            "result": job.result,
                        },
                    )
                else:
                    self._send_json(
                        202,
                        {
                            "job": job.id,
                            "state": job.state,
                            "trace": job.trace_id or span_ctx.trace_id,
                        },
                    )

    # -- streaming diagnostics -------------------------------------------------

    def _begin_stream(self) -> None:
        self._status_code = 200
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()

    def _send_chunk(self, event: dict) -> bool:
        """One JSONL event as one HTTP/1.1 chunk; False once the client
        is gone (the job still completes server-side)."""
        data = (json.dumps(event) + "\n").encode("utf-8")
        frame = ("%X\r\n" % len(data)).encode("ascii") + data + b"\r\n"
        try:
            if faults.check("http.client.disconnect") is not None:
                raise BrokenPipeError(
                    "injected fault http.client.disconnect: peer reset mid-stream"
                )
            self.wfile.write(frame)
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            obs.incr("serve.http.client_disconnects")
            self.close_connection = True
            return False

    def _end_stream(self) -> None:
        try:
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            obs.incr("serve.http.client_disconnects")
            self.close_connection = True

    def _stream_analyze(self, document: dict, request: AnalyzeRequest, span_ctx) -> None:
        """Incremental mode: the job's life as chunked JSONL events —
        ``admission`` then (cache miss) ``rung``/``progress``/
        ``diagnostic`` as execution emits them, terminated by ``result``
        (or ``timeout`` once the wait budget is spent; the job id in the
        timeout event still polls via ``/v1/jobs/<id>``)."""
        subscriber: "queue.Queue" = queue.Queue()
        with trace.span("http.analyze", stream=True):
            status, payload = self.service.submit(request, subscriber=subscriber)
        if status == "rejected":
            self._send_json(400, {"error": payload})
            return
        if status == "shed":
            self._shed_response(payload)
            return
        obs.incr("serve.http.streams")
        base = {"trace": span_ctx.trace_id}
        self._begin_stream()
        if status == "hit":
            if self._send_chunk({"event": "admission", "cache": "hit", **base}):
                self._send_chunk({"event": "result", "result": payload, **base})
            self._end_stream()
            return
        job = payload
        if not self._send_chunk(
            {"event": "admission", "cache": "miss", "job": job.id, **base}
        ):
            return
        deadline = time.monotonic() + self._wait_budget(document)
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._send_chunk(
                    {"event": "timeout", "job": job.id, "state": job.state, **base}
                )
                break
            try:
                event = subscriber.get(timeout=min(remaining, 0.25))
            except queue.Empty:
                if job.done.is_set() and subscriber.empty():
                    # completed before our subscription saw the result event
                    event = {"event": "result", "job": job.id, "result": job.result}
                else:
                    continue
            if not self._send_chunk({**base, **event}):
                return
            if event.get("event") == "result":
                break
        self._end_stream()

    def _handle_batch(self, document: dict) -> None:
        raw_items = document.get("programs")
        if not isinstance(raw_items, list) or not raw_items:
            self._send_json(400, {"error": "'programs' must be a non-empty list"})
            return
        shared = {k: document.get(k) for k in ("tenant", "deadline_sec", "max_steps",
                                               "max_state_bytes") if k in document}
        try:
            requests = [
                AnalyzeRequest.from_json(
                    {**shared, **(item if isinstance(item, dict) else {"program": item})}
                )
                for item in raw_items
            ]
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        span_ctx = trace.mint(self.headers.get("X-Repro-Trace"))
        with trace.activate(span_ctx):
            with trace.span("http.batch", items=len(requests)):
                status, payload = self.service.submit_batch(requests)
            if status == "hit":
                self._send_json(200, payload)
            elif status == "shed":
                self._shed_response(payload)
            else:
                job = payload
                if bool(document.get("wait", True)) and job.wait(self._wait_budget(document)):
                    self._send_json(200, {"job": job.id, **job.result})
                else:
                    self._send_json(202, {"job": job.id, "state": job.state})

    def _wait_budget(self, document: dict) -> float:
        try:
            requested = float(document.get("wait_timeout_sec", 60.0))
        except (TypeError, ValueError):
            return 60.0
        return max(0.0, min(requested, MAX_WAIT_SEC))


class AnalysisHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], service: AnalysisService):
        super().__init__(address, _Handler)
        self.service = service


def write_discovery(state_dir: Path, host: str, port: int) -> Path:
    """Publish the daemon's coordinates for tooling (atomic write)."""
    path = Path(state_dir) / "daemon.json"
    atomic_write_text(
        path, json.dumps({"pid": os.getpid(), "host": host, "port": port})
    )
    return path


def run_server(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 8642,
    *,
    ready: Optional[threading.Event] = None,
    install_signals: bool = True,
    drain_timeout_sec: float = 30.0,
) -> int:
    """Start the service + HTTP server and block until shutdown.

    SIGTERM/SIGINT trigger the graceful path: mark draining (readyz
    goes 503), finish accepted work (bounded by ``drain_timeout_sec``;
    unfinished jobs stay journaled for the next daemon), stop.  Returns
    the port actually bound (0 requests an ephemeral port).
    """
    service = AnalysisService(config)
    service.start()
    server = AnalysisHTTPServer((host, port), service)
    bound_port = server.server_address[1]
    discovery = write_discovery(config.state_dir, host, bound_port)
    stop_requested = threading.Event()

    def _on_signal(signum, frame):
        slog.info("serve.signal", signum=signum)
        service.begin_drain()  # readyz flips immediately
        stop_requested.set()
        # shutdown() must not run on the serving thread; hand it off
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _on_signal)
        signal.signal(signal.SIGINT, _on_signal)
    if ready is not None:
        ready.set()
    slog.info("serve.listening", host=host, port=bound_port)
    try:
        server.serve_forever(poll_interval=0.2)
    finally:
        server.server_close()
        service.drain(timeout=drain_timeout_sec)
        try:
            discovery.unlink()
        except OSError:
            pass
    return bound_port


def discover(state_dir) -> Optional[Tuple[str, int]]:
    """Read the daemon.json discovery file, verifying the port answers."""
    path = Path(state_dir) / "daemon.json"
    try:
        doc = json.loads(path.read_text())
        host, port = str(doc["host"]), int(doc["port"])
    except (OSError, ValueError, KeyError):
        return None
    try:
        with socket.create_connection((host, port), timeout=1.0):
            return host, port
    except OSError:
        return None
