"""Corpus-replay load generator for the analysis service.

Replays a duplicate-heavy mix of corpus-generator programs against a
running daemon — the access pattern a popular service actually sees
(most submissions are programs someone already submitted) — and
measures the service-level numbers the bench baseline gates on:

* requests/sec (wall-clock over the whole replay),
* cache-hit rate (servings answered from the content-addressed cache),
* shed rate (429s under pressure),
* latency percentiles.

The default replay is **warm-first**: one copy of each distinct program
is submitted (and completes) before the duplicate storm starts, so the
duplicates measure steady-state cache behavior rather than racing the
first analysis of their own key.  ``warm_first=False`` races everything
concurrently instead, which additionally exercises request coalescing.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional

from repro.obs.recorder import percentile


def corpus_mix(count: int, duplicates: int, seed: int = 1337) -> List[str]:
    """``count`` distinct generated programs, each repeated ``duplicates``
    times, shuffled deterministically by ``seed``."""
    from repro.corpus.generator import generate

    distinct = [generate(seed + index).source for index in range(count)]
    mix = [source for source in distinct for _ in range(duplicates)]
    random.Random(seed).shuffle(mix)
    return mix


def _post_json(url: str, document: dict, timeout: float = 120.0) -> Dict[str, object]:
    body = json.dumps(document).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}, method="POST"
    )
    start = time.perf_counter()
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            payload = json.loads(response.read().decode("utf-8"))
            code = response.status
    except urllib.error.HTTPError as exc:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except Exception:
            payload = {}
        code = exc.code
    except (urllib.error.URLError, OSError, ValueError) as exc:
        return {"code": 0, "latency": time.perf_counter() - start, "error": str(exc)}
    return {"code": code, "latency": time.perf_counter() - start, "payload": payload}


def _percentile(values: List[float], q: float) -> float:
    # one nearest-rank implementation for the whole telemetry plane: the
    # recorder's histograms, the /metrics summaries, and these latencies
    # must agree on what "p99" means
    return percentile(values, q) or 0.0


def scrape_metrics(base_url: str, timeout: float = 10.0) -> Dict[str, float]:
    """One ``/metrics`` scrape, parsed into a flat ``name{labels}`` map."""
    from repro.obs import metrics as metrics_mod

    url = base_url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        text = response.read().decode("utf-8")
    problems = metrics_mod.validate_exposition(text)
    if problems:
        raise ValueError(f"unparseable /metrics exposition: {problems[0]}")
    return metrics_mod.parse_exposition(text)


def run_load(
    base_url: str,
    programs: List[str],
    concurrency: int = 8,
    warm_distinct: Optional[List[str]] = None,
    deadline_sec: float = 20.0,
) -> Dict[str, object]:
    """Replay ``programs`` against ``base_url`` and summarize.

    ``warm_distinct`` (the distinct program set) enables the warm-first
    phase.  Returns the metrics document the bench workload publishes.
    """
    url = base_url.rstrip("/") + "/v1/analyze"
    if warm_distinct:
        for source in warm_distinct:
            _post_json(url, {"program": source, "deadline_sec": deadline_sec})
    outcomes: List[Dict[str, object]] = []
    outcomes_lock = threading.Lock()
    work: List[str] = list(programs)
    work_lock = threading.Lock()

    def pump() -> None:
        while True:
            with work_lock:
                if not work:
                    return
                source = work.pop()
            outcome = _post_json(url, {"program": source, "deadline_sec": deadline_sec})
            with outcomes_lock:
                outcomes.append(outcome)

    start = time.perf_counter()
    threads = [threading.Thread(target=pump, daemon=True) for _ in range(max(1, concurrency))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start

    total = len(outcomes)
    hits = sum(
        1 for o in outcomes
        if o.get("code") == 200 and isinstance(o.get("payload"), dict)
        and o["payload"].get("cache") == "hit"
    )
    ok = sum(1 for o in outcomes if o.get("code") in (200, 202))
    shed = sum(1 for o in outcomes if o.get("code") == 429)
    errors = sum(1 for o in outcomes if o.get("code") not in (200, 202, 429))
    latencies = [o["latency"] for o in outcomes if "latency" in o]
    return {
        "requests": total,
        "elapsed_sec": elapsed,
        "requests_per_sec": total / elapsed if elapsed > 0 else 0.0,
        "ok": ok,
        "cache_hits": hits,
        "cache_hit_rate": hits / total if total else 0.0,
        "shed": shed,
        "shed_rate": shed / total if total else 0.0,
        "errors": errors,
        "latency_ms": {
            "p50": _percentile(latencies, 0.50) * 1000.0,
            "p90": _percentile(latencies, 0.90) * 1000.0,
            "p95": _percentile(latencies, 0.95) * 1000.0,
            "p99": _percentile(latencies, 0.99) * 1000.0,
        },
    }
