"""Crash-safe job journal: an append-only JSONL write-ahead log.

The durability contract of the service is *journal-first*: a job is
acknowledged to the client only after its ``accepted`` record (carrying
the full request) is on disk, so a daemon that is SIGKILLed at any phase
and restarted can replay the journal and finish every job it ever
admitted — at-least-once execution, made effectively-once by the
content-addressed result cache (re-running an already-cached job is an
O(1) lookup).

Record stream per job id::

    accepted   {"event": "accepted", "job": ..., "request": {...}, ...}
    started    {"event": "started", "job": ..., "attempt": 0}
    retry      {"event": "retry", "job": ..., "attempt": 1, "error": ...}
    done       {"event": "done", "job": ..., "result": {...}}

Recovery folds the stream: any ``accepted`` without a matching ``done``
is re-queued; ``done`` records keep completed results addressable across
restarts.  Appends are flushed and fsynced one line at a time, and a
torn trailing line (the one write a crash can interrupt) is detected and
dropped on load.  Startup compaction rewrites the journal atomically to
just the live tail (pending ``accepted`` + all ``done``), bounding
replay time for a long-lived daemon.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.checkpoint import atomic_write_text
from repro.obs import recorder as obs


class JobJournal:
    """Append-only JSONL log with fsync-per-record durability."""

    def __init__(self, path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- writing ---------------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync before returning).

        The fsync is the point of the journal: ``accepted`` must survive
        a SIGKILL that lands the instant after the client got its 202.
        """
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        obs.incr("serve.journal.appends")

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- reading / recovery ----------------------------------------------------

    def load(self) -> List[dict]:
        """All intact records, oldest first.

        A torn trailing line — the only damage a crash mid-append can
        cause — is dropped (counted as ``serve.journal.torn``).  A torn
        line anywhere *else* would mean external corruption; those are
        dropped too, keeping recovery total.
        """
        if not self.path.exists():
            return []
        records: List[dict] = []
        try:
            raw = self.path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            obs.incr("serve.journal.read_errors")
            return []
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                obs.incr("serve.journal.torn")
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def fold(self) -> Tuple[Dict[str, dict], Dict[str, dict]]:
        """Fold the record stream into ``(pending, done)`` maps by job id.

        ``pending`` holds the last ``accepted`` record of every job with
        no ``done`` record — the work a recovering daemon must re-queue.
        ``done`` holds each job's final record.
        """
        accepted: Dict[str, dict] = {}
        done: Dict[str, dict] = {}
        for record in self.load():
            job_id = record.get("job")
            event = record.get("event")
            if not isinstance(job_id, str):
                continue
            if event == "accepted":
                accepted[job_id] = record
            elif event == "done":
                done[job_id] = record
        pending = {job_id: rec for job_id, rec in accepted.items() if job_id not in done}
        return pending, done

    def compact(self, keep: Optional[List[dict]] = None) -> int:
        """Atomically rewrite the journal to just the live records.

        With no argument, keeps each pending job's ``accepted`` record
        and every ``done`` record (in original order).  Returns the
        number of records kept.  The rewrite goes through the same
        durable write-rename as every other state file, so a crash
        mid-compaction leaves the previous journal intact.
        """
        if keep is None:
            pending, done = self.fold()
            keep = []
            for record in self.load():
                job_id = record.get("job")
                event = record.get("event")
                if event == "accepted" and job_id in pending:
                    keep.append(record)
                elif event == "done" and job_id in done:
                    keep.append(record)
        text = "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n" for record in keep
        )
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            atomic_write_text(self.path, text)
        obs.incr("serve.journal.compactions")
        return len(keep)
