"""Crash-safe job journal: an append-only JSONL write-ahead log.

The durability contract of the service is *journal-first*: a job is
acknowledged to the client only after its ``accepted`` record (carrying
the full request) is on disk, so a daemon that is SIGKILLed at any phase
and restarted can replay the journal and finish every job it ever
admitted — at-least-once execution, made effectively-once by the
content-addressed result cache (re-running an already-cached job is an
O(1) lookup).

Record stream per job id::

    accepted   {"event": "accepted", "job": ..., "request": {...}, ...}
    started    {"event": "started", "job": ..., "attempt": 0}
    retry      {"event": "retry", "job": ..., "attempt": 1, "error": ...}
    done       {"event": "done", "job": ..., "result": {...}}

Recovery folds the stream: any ``accepted`` without a matching ``done``
is re-queued; ``done`` records keep completed results addressable across
restarts.  Appends are flushed and fsynced one line at a time, and a
torn trailing line (the one write a crash can interrupt) is detected and
dropped on load.  Startup compaction rewrites the journal atomically to
just the live tail (pending ``accepted`` + all ``done``), bounding
replay time for a long-lived daemon.
"""

from __future__ import annotations

import errno
import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.checkpoint import atomic_write_text
from repro.faults import plane as faults
from repro.obs import recorder as obs
from repro.obs import slog


class JobJournal:
    """Append-only JSONL log with fsync-per-record durability."""

    def __init__(self, path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle = None
        #: True when the last write left a partial line on disk; the next
        #: append starts with a newline so records never merge
        self._dirty_tail = False
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- writing ---------------------------------------------------------------

    def _open_handle(self):
        if self._handle is None:
            # an existing file not ending in "\n" carries a torn tail from
            # a previous writer's crash; start our first record on a fresh
            # line so the torn bytes stay an isolated, droppable line
            try:
                with open(self.path, "rb") as probe:
                    probe.seek(0, os.SEEK_END)
                    if probe.tell() > 0:
                        probe.seek(-1, os.SEEK_END)
                        self._dirty_tail = probe.read(1) != b"\n"
            except OSError:
                pass
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def append(self, record: dict) -> bool:
        """Durably append one record (flush + fsync before returning).

        The fsync is the point of the journal: ``accepted`` must survive
        a SIGKILL that lands the instant after the client got its 202.

        Never raises: a failed append (disk full, I/O error) degrades
        *durability* — the record will not survive a crash — but must
        not take down admission, which would turn a full disk into a
        total outage.  Returns False and counts
        ``serve.journal.append_errors`` on failure.
        """
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            try:
                handle = self._open_handle()
                prefix = "\n" if self._dirty_tail else ""
                if faults.check("journal.append.enospc") is not None:
                    raise OSError(
                        errno.ENOSPC,
                        "injected fault journal.append.enospc: no space left on device",
                    )
                torn = faults.check("journal.append.torn")
                if torn is not None:
                    # a crash mid-append: partial bytes on disk, no newline
                    handle.write(prefix + line[: max(1, int(len(line) * torn.arg))])
                    handle.flush()
                    self._dirty_tail = True
                    raise OSError(
                        errno.EIO,
                        "injected fault journal.append.torn: crashed mid-append",
                    )
                handle.write(prefix + line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
                self._dirty_tail = False
            except OSError as exc:
                obs.incr("serve.journal.append_errors")
                slog.warning(
                    "serve.journal_append_failed",
                    record_event=str(record.get("event", "")),
                    error=str(exc),
                )
                # the handle's position/buffer state is suspect; reopen lazily
                if self._handle is not None:
                    try:
                        self._handle.close()
                    except OSError:
                        pass
                    self._handle = None
                return False
        obs.incr("serve.journal.appends")
        return True

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # -- reading / recovery ----------------------------------------------------

    def load(self) -> List[dict]:
        """All intact records, oldest first.

        A torn trailing line — the only damage a crash mid-append can
        cause — is *expected* wreckage: it is dropped with a WARNING
        (``serve.journal_torn_tail``, counted as ``serve.journal.torn``)
        and recovery proceeds with everything before it.  A torn line
        anywhere else means external corruption; those are dropped too
        (``serve.journal.corrupt_interior``), keeping recovery total —
        a damaged journal degrades to fewer replayed records, never to
        a daemon that cannot start.
        """
        if not self.path.exists():
            return []
        records: List[dict] = []
        try:
            raw = self.path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            obs.incr("serve.journal.read_errors")
            return []
        lines = [line.strip() for line in raw.splitlines()]
        last_index = len(lines) - 1
        for index, line in enumerate(lines):
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                if index == last_index:
                    obs.incr("serve.journal.torn")
                    slog.warning(
                        "serve.journal_torn_tail",
                        path=str(self.path),
                        discarded_bytes=len(line),
                        detail="partial final record from a mid-append crash; "
                               "discarded, replaying the intact prefix",
                    )
                else:
                    obs.incr("serve.journal.corrupt_interior")
                    slog.warning(
                        "serve.journal_corrupt_record",
                        path=str(self.path),
                        line=index + 1,
                    )
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def fold(self) -> Tuple[Dict[str, dict], Dict[str, dict]]:
        """Fold the record stream into ``(pending, done)`` maps by job id.

        ``pending`` holds the last ``accepted`` record of every job with
        no ``done`` record — the work a recovering daemon must re-queue.
        ``done`` holds each job's final record.
        """
        accepted: Dict[str, dict] = {}
        done: Dict[str, dict] = {}
        for record in self.load():
            job_id = record.get("job")
            event = record.get("event")
            if not isinstance(job_id, str):
                continue
            if event == "accepted":
                accepted[job_id] = record
            elif event == "done":
                done[job_id] = record
        pending = {job_id: rec for job_id, rec in accepted.items() if job_id not in done}
        return pending, done

    def compact(self, keep: Optional[List[dict]] = None) -> int:
        """Atomically rewrite the journal to just the live records.

        With no argument, keeps each pending job's ``accepted`` record
        and every ``done`` record (in original order).  Returns the
        number of records kept.  The rewrite goes through the same
        durable write-rename as every other state file, so a crash
        mid-compaction leaves the previous journal intact.
        """
        if keep is None:
            pending, done = self.fold()
            keep = []
            for record in self.load():
                job_id = record.get("job")
                event = record.get("event")
                if event == "accepted" and job_id in pending:
                    keep.append(record)
                elif event == "done" and job_id in done:
                    keep.append(record)
        text = "".join(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n" for record in keep
        )
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            self._dirty_tail = False
            try:
                atomic_write_text(self.path, text, fault_scope="journal")
            except OSError as exc:
                # compaction is an optimization; the uncompacted journal
                # is still a correct (if longer) record of the same work
                obs.incr("serve.journal.compact_errors")
                slog.warning("serve.journal_compact_failed", error=str(exc))
                return -1
        obs.incr("serve.journal.compactions")
        return len(keep)
