"""Retry policy and per-rung circuit breaker for the analysis service.

Two distinct failure domains get two distinct mechanisms:

* **Attempt-level faults** — a worker process dying, a hung worker hit
  by its watchdog timeout — are *transient*: the job is retried with
  exponential backoff plus full jitter (``RetryPolicy``), bounded by
  ``max_retries``.  Jitter matters even in a single daemon: a burst of
  jobs that all hit the same sick worker pool must not retry in
  lockstep.
* **Rung-level faults** — a precision rung of the fallback ladder
  repeatedly giving up or throwing client faults — are *systemic*: a
  per-rung ``CircuitBreaker`` opens after ``threshold`` consecutive
  failures and the scheduler skips that rung (the ladder's cheaper
  rungs still answer), half-opens after ``cooldown_sec`` to probe once,
  and closes again on a probe success.  The final baseline rung is
  never breaker-filtered — the service always has a total answer.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs import recorder as obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class TransientJobError(RuntimeError):
    """An attempt-level fault worth retrying (worker lost, watchdog
    timeout, unpicklable reply).  Anything else escaping a job attempt is
    treated as a permanent fault and degrades without retrying."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with full jitter."""

    max_retries: int = 2
    backoff_base_sec: float = 0.05
    backoff_cap_sec: float = 2.0

    def delay(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The sleep before retry number ``attempt`` (0-based): uniform
        in ``[0, min(cap, base * 2**attempt)]`` — AWS-style full jitter."""
        ceiling = min(self.backoff_cap_sec, self.backoff_base_sec * (2 ** attempt))
        draw = (rng or random).random()
        return ceiling * draw


class _Circuit:
    __slots__ = ("state", "failures", "opened_at")

    def __init__(self) -> None:
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0


class CircuitBreaker:
    """Per-name (per-rung) three-state circuit breaker.  Thread-safe."""

    def __init__(
        self,
        threshold: int = 3,
        cooldown_sec: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.threshold = max(1, int(threshold))
        self.cooldown_sec = float(cooldown_sec)
        self._clock = clock
        self._lock = threading.Lock()
        self._circuits: Dict[str, _Circuit] = {}

    def _get(self, name: str) -> _Circuit:
        circuit = self._circuits.get(name)
        if circuit is None:
            circuit = self._circuits[name] = _Circuit()
        return circuit

    def allows(self, name: str) -> bool:
        """Whether ``name`` may run now.

        An open circuit whose cooldown has elapsed transitions to
        half-open and admits exactly one probe; while the probe is in
        flight further calls are refused.
        """
        with self._lock:
            circuit = self._get(name)
            if circuit.state == CLOSED:
                return True
            if circuit.state == OPEN:
                if self._clock() - circuit.opened_at >= self.cooldown_sec:
                    circuit.state = HALF_OPEN
                    obs.incr("serve.breaker.probes")
                    return True
                return False
            # HALF_OPEN: one probe is already out
            return False

    def record_success(self, name: str) -> None:
        with self._lock:
            circuit = self._get(name)
            if circuit.state == HALF_OPEN:
                obs.incr("serve.breaker.closed")
            circuit.state = CLOSED
            circuit.failures = 0

    def record_failure(self, name: str) -> None:
        with self._lock:
            circuit = self._get(name)
            circuit.failures += 1
            if circuit.state == HALF_OPEN or circuit.failures >= self.threshold:
                if circuit.state != OPEN:
                    obs.incr("serve.breaker.opened")
                circuit.state = OPEN
                circuit.opened_at = self._clock()
                circuit.failures = 0

    def state(self, name: str) -> str:
        with self._lock:
            return self._get(name).state

    def snapshot(self) -> Dict[str, str]:
        """Rung name -> state, for ``/stats``."""
        with self._lock:
            return {name: c.state for name, c in self._circuits.items()}
