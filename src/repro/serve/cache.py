"""Content-addressed result cache for the analysis service.

At millions-of-users scale the common case is the *same* program being
submitted over and over.  The cache turns that case into an O(1) lookup:
results are keyed by a digest of

* the **CFG structural fingerprint** (:func:`repro.core.checkpoint.
  cfg_fingerprint`) — the identity check checkpoints already use, so two
  textually different builds of the same program share a key while any
  structural drift (different program, changed lowering) misses;
* the **ladder** (which rungs, in order, would answer); and
* the **effective engine limits** (canonicalized field-by-field) — a
  tenant with a bigger budget must never be served a smaller budget's
  partial answer, and vice versa.

Entries are one JSON file per key, written with the same durable
atomic write-rename the checkpointer uses, so a SIGKILL mid-store never
leaves a torn entry — a cache directory is always a set of valid entries.

Near-miss warm starts
---------------------

A cached entry may carry the budget-trip **snapshot** of the run that
produced it.  A submission with the same CFG + client but *different*
limits misses the cache, but :meth:`ResultCache.warm_snapshot` hands the
scheduler that snapshot so the new run warm-starts through the engine's
existing ``run(resume=...)`` path instead of recomputing the explored
prefix.  Snapshot identity checks (CFG fingerprint + client class) stay
with the engine — a stale snapshot degrades to a cold start, never a
wrong answer.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro import __version__
from repro.core import diagnostics
from repro.core.checkpoint import Snapshot, atomic_write_text
from repro.core.engine import EngineLimits
from repro.faults import plane as faults
from repro.obs import recorder as obs
from repro.obs import slog

#: cache entry format version; bump on any incompatible schema change
#: (v2: per-entry integrity checksum — bit-flipped entries must miss)
ENTRY_FORMAT = "repro-serve-cache/2"


def entry_checksum(entry: Dict[str, object]) -> str:
    """Integrity digest over an entry's canonical JSON (checksum field
    excluded).  The atomic write-rename protects against *torn* entries;
    this protects against the disk handing back *wrong bytes* — a
    bit-flip that still parses as JSON must miss, not serve garbage."""
    body = json.dumps(
        {k: v for k, v in entry.items() if k != "checksum"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def canonical_limits(limits: EngineLimits) -> Dict[str, object]:
    """A stable, JSON-able rendering of the effective engine limits.

    Every field participates: changing any precision or budget knob must
    change the cache key (a cheaper budget's partial answer is not the
    answer to a bigger budget's question).
    """
    return {key: value for key, value in sorted(asdict(limits).items())}


def compute_key(cfg_fp: str, ladder_id: str, limits: EngineLimits) -> str:
    """The content address of one analysis question.

    ``cfg_fp`` is the CFG structural fingerprint, ``ladder_id`` names the
    rung sequence that would answer (e.g. ``"cartesian>cartesian-
    escalated>simple-symbolic>mpi-cfg"``), and ``limits`` are the
    *effective* (tenant-clamped) engine limits.  The engine version is
    folded in so an upgraded analyzer never serves a previous build's
    answers.
    """
    body = json.dumps(
        {
            "v": __version__,
            "format": ENTRY_FORMAT,
            "cfg": cfg_fp,
            "ladder": ladder_id,
            "limits": canonical_limits(limits),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def render_report(report) -> Dict[str, object]:
    """Flatten a :class:`~repro.core.driver.FallbackReport` into the
    JSON-plain result document the service returns and caches."""
    result = report.result
    return {
        "confidence": result.confidence,
        "rung": report.rung_name,
        "matches": sorted([s, r] for s, r in result.matches),
        "topology": result.topology.describe(),
        "diagnostics": [diag.format() for diag in result.diagnostics],
        "diagnostic_codes": sorted({diag.code for diag in result.diagnostics}),
        "summary": diagnostics.summarize(result.diagnostics),
        "steps": result.steps,
        "resumed_from": getattr(result, "resumed_from", ""),
        "rungs": [
            {
                "name": outcome.name,
                "confidence": outcome.confidence,
                "diagnostics": diagnostics.summarize(outcome.result.diagnostics),
            }
            for outcome in report.rungs
        ],
    }


class ResultCache:
    """Disk-backed, crash-safe, content-addressed result store.

    One JSON file per key under ``directory``; an in-memory LRU mirror
    bounds the resident set (``max_entries``) while the disk keeps
    everything.  All operations are thread-safe — the service's worker
    threads store while its admission path looks up.
    """

    def __init__(self, directory, max_entries: int = 4096):
        self.directory = Path(directory)
        self.max_entries = int(max_entries)
        self._lock = threading.Lock()
        #: key -> entry (most-recently-used last)
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        #: (cfg fingerprint, snapshot client name) -> key of an entry
        #: carrying a warm-start snapshot
        self._warm: Dict[Tuple[str, str], str] = {}
        self.directory.mkdir(parents=True, exist_ok=True)
        self._load_index()

    # -- internals -------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _read_entry(self, path: Path) -> Optional[dict]:
        """Read + verify one on-disk entry; evict it if it is corrupt.

        Verification layers: valid JSON, a dict, our format version, and
        the integrity checksum.  Unparseable bytes or a checksum mismatch
        mean the file is damaged (bit rot, truncation, external edit) —
        the entry is *deleted* (``serve.cache.corrupt_evictions``) so the
        damage cannot be re-served or re-indexed.  A well-formed entry of
        a *different* format version is merely skipped: it belongs to
        another build, not to the trash.
        """
        try:
            raw = path.read_bytes()
        except OSError:
            obs.incr("serve.cache.read_errors")
            return None
        fault = faults.check("cache.read.corrupt")
        if fault is not None:
            raw = faults.corrupt_bytes(raw, fault.arg)
        try:
            entry = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._evict_corrupt(path, "undecodable")
            return None
        if not isinstance(entry, dict):
            self._evict_corrupt(path, "not an object")
            return None
        if entry.get("format") != ENTRY_FORMAT:
            obs.incr("serve.cache.index_skipped")
            return None
        if entry.get("checksum") != entry_checksum(entry):
            self._evict_corrupt(path, "checksum mismatch")
            return None
        return entry

    def _evict_corrupt(self, path: Path, why: str) -> None:
        obs.incr("serve.cache.corrupt_evictions")
        slog.warning("serve.cache_corrupt_entry", path=str(path), reason=why)
        try:
            path.unlink()
        except OSError:
            pass

    def _load_index(self) -> None:
        """Rebuild the in-memory index from the entry files on disk.

        Unreadable, malformed, or corrupt files are skipped or evicted
        (counted), never fatal: a half-written entry cannot exist (atomic
        rename), but a damaged disk can still hand us garbage and the
        cache must shrug it off.
        """
        for path in sorted(self.directory.glob("*.json")):
            entry = self._read_entry(path)
            if entry is None:
                continue
            key = entry.get("key") or path.stem
            self._remember(key, entry)

    def _remember(self, key: str, entry: dict) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        snapshot = entry.get("snapshot")
        if isinstance(snapshot, dict):
            client = str(snapshot.get("client", ""))
            cfg_fp = str(entry.get("cfg", ""))
            if client and cfg_fp:
                self._warm[(cfg_fp, client)] = key

    # -- the public surface ----------------------------------------------------

    def lookup(self, key: str) -> Optional[dict]:
        """The cached result document for ``key``, or None.

        Falls back to disk when the LRU mirror evicted the entry, so the
        resident-set bound never turns into a correctness miss.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                obs.incr("serve.cache.hits")
                return entry
        path = self._path(key)
        if path.exists():
            entry = self._read_entry(path)
            if entry is not None:
                with self._lock:
                    self._remember(key, entry)
                obs.incr("serve.cache.hits")
                return entry
        obs.incr("serve.cache.misses")
        return None

    def store(
        self,
        key: str,
        cfg_fp: str,
        ladder_id: str,
        limits: EngineLimits,
        result: Dict[str, object],
        snapshot_payload: Optional[dict] = None,
    ) -> dict:
        """Persist one result document (durable atomic write) and index it."""
        entry = {
            "format": ENTRY_FORMAT,
            "key": key,
            "cfg": cfg_fp,
            "ladder": ladder_id,
            "limits": canonical_limits(limits),
            "result": result,
            "snapshot": snapshot_payload,
            "created": time.time(),
        }
        entry["checksum"] = entry_checksum(entry)
        try:
            atomic_write_text(
                self._path(key),
                json.dumps(entry, sort_keys=True),
                fault_scope="cache",
            )
        except OSError:
            # a cache that cannot persist still serves from memory
            obs.incr("serve.cache.write_errors")
        else:
            obs.incr("serve.cache.stores")
        with self._lock:
            self._remember(key, entry)
        return entry

    def warm_snapshot(self, cfg_fp: str, client_name: str) -> Optional[Snapshot]:
        """A cached budget-trip snapshot usable to warm-start ``cfg_fp``
        under ``client_name``, or None.  The engine re-verifies identity
        on resume, so a wrong guess costs a cold start, never soundness."""
        with self._lock:
            key = self._warm.get((cfg_fp, client_name))
            entry = self._entries.get(key) if key else None
        if entry is None:
            return None
        payload = entry.get("snapshot")
        if not isinstance(payload, dict):
            return None
        obs.incr("serve.cache.warm_candidates")
        return Snapshot(payload=payload)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "resident_entries": len(self._entries),
                "warm_snapshots": len(self._warm),
                "disk_entries": sum(1 for _ in self.directory.glob("*.json")),
            }
