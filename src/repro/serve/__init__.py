"""Analysis-as-a-service: the long-running daemon behind ``repro serve``.

Layering (each module testable without the ones above it):

* :mod:`repro.serve.cache` — content-addressed result cache keyed on
  CFG fingerprint + ladder + effective limits, with warm-start snapshots;
* :mod:`repro.serve.journal` — crash-safe append-only job journal
  (journal-first admission, replay-on-restart recovery);
* :mod:`repro.serve.retry` — retry policy (backoff + jitter) and
  per-rung circuit breaker;
* :mod:`repro.serve.daemon` — the scheduler: admission control, tenant
  QoS budgets, worker-process isolation, degraded-mode answers, drain;
* :mod:`repro.serve.http` — the stdlib HTTP surface;
* :mod:`repro.serve.loadgen` — the corpus-replay load generator.
"""

from repro.serve.cache import ResultCache, compute_key, render_report
from repro.serve.daemon import (
    AnalysisService,
    AnalyzeRequest,
    ServiceConfig,
    TenantBudget,
)
from repro.serve.http import discover, run_server
from repro.serve.journal import JobJournal
from repro.serve.retry import CircuitBreaker, RetryPolicy, TransientJobError

__all__ = [
    "AnalysisService",
    "AnalyzeRequest",
    "CircuitBreaker",
    "JobJournal",
    "ResultCache",
    "RetryPolicy",
    "ServiceConfig",
    "TenantBudget",
    "TransientJobError",
    "compute_key",
    "discover",
    "render_report",
    "run_server",
]
