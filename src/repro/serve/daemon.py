"""The analysis service scheduler: admission control, QoS budgets,
crash-safe execution, retry/backoff, and graceful drain.

This is the long-running core behind ``repro serve``.  The HTTP layer
(:mod:`repro.serve.http`) is a thin translation onto this class; every
robustness property lives here so it can be tested without sockets.

Life of a job
-------------

1. **Admission** (:meth:`AnalysisService.submit`): parse the program
   (a parse error is the client's bug — rejected immediately, never
   queued), clamp the requested budgets to the tenant's QoS envelope,
   compute the content-addressed cache key.  A cache hit returns the
   stored result in O(1) without touching the queue.  A key already
   queued/running *coalesces*: the duplicate attaches to the in-flight
   job instead of doubling the work.  Otherwise admission is
   journal-first — the ``accepted`` record (with the full request) is
   fsynced to the job journal *before* the job enters the bounded
   queue, so an accepted job survives any crash.  A full queue sheds
   the request (the HTTP layer turns that into 429 + Retry-After); a
   draining daemon refuses new work (503).
2. **Execution** (worker threads): each attempt runs the precision
   ladder in a disposable **worker process** with a watchdog timeout —
   a crashed or hung attempt can never take the daemon down or wedge a
   worker thread.  Transient faults (worker lost, watchdog fired) are
   retried with exponential backoff + full jitter, bounded by the retry
   policy.  Per-rung circuit breakers skip a rung that keeps failing
   (the baseline rung is never skipped).  When the queue is above the
   pressure threshold, new executions run only the cheap baseline rung:
   a degraded-but-sound answer beats a timeout.
3. **Completion**: the rendered result is journaled (``done``), stored
   in the result cache (only clean, non-degraded results), and every
   waiter — including coalesced duplicates — is released.  If retries
   exhaust, the job still completes with an inline baseline answer
   carrying a ``RETRY_EXHAUSTED`` service diagnostic: every accepted
   job terminates with an answer, never a hang.

Recovery replays the journal on startup: accepted-but-not-done jobs are
re-queued (at-least-once; the cache makes re-execution cheap), done
records stay addressable, and the journal is compacted.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue
import random
import threading
import time
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core import diagnostics
from repro.core.checkpoint import Snapshot, cfg_fingerprint
from repro.core.driver import (
    analyze_batch,
    analyze_with_fallback,
    baseline_ladder,
    default_ladder,
)
from repro.core.engine import EngineLimits
from repro.faults import plane as faults
from repro.lang import parse
from repro.lang.cfg import build_cfg
from repro.lang.parser import ParseError
from repro.obs import recorder as obs
from repro.obs import slog
from repro.obs import trace
from repro.serve.cache import ResultCache, compute_key, render_report
from repro.serve.journal import JobJournal
from repro.serve.retry import CircuitBreaker, RetryPolicy, TransientJobError

#: ladder identifier baked into cache keys (rung names, in order)
DEFAULT_LADDER_ID = "cartesian>cartesian-escalated>simple-symbolic>mpi-cfg"
BASELINE_LADDER_ID = "mpi-cfg"


# -- requests and QoS ----------------------------------------------------------


@dataclass(frozen=True)
class TenantBudget:
    """Per-tenant QoS envelope: requested budgets are clamped into it."""

    name: str = "default"
    #: hard per-job wall-clock ceiling (also the default when unrequested)
    deadline_sec: float = 30.0
    #: retained-state ceiling per job (None: unlimited)
    max_state_bytes: Optional[int] = None
    #: engine-step ceiling per job
    max_steps: int = 20_000


@dataclass(frozen=True)
class AnalyzeRequest:
    """One submission: a program plus the budgets it asks for."""

    program: str
    tenant: str = "default"
    deadline_sec: Optional[float] = None
    max_steps: Optional[int] = None
    max_state_bytes: Optional[int] = None
    #: fault-injection hook for crash tests; honored only when the
    #: service was started with ``allow_test_faults=True``
    test_fault: Optional[dict] = None

    def to_json(self) -> dict:
        doc = {"program": self.program, "tenant": self.tenant}
        if self.deadline_sec is not None:
            doc["deadline_sec"] = self.deadline_sec
        if self.max_steps is not None:
            doc["max_steps"] = self.max_steps
        if self.max_state_bytes is not None:
            doc["max_state_bytes"] = self.max_state_bytes
        if self.test_fault is not None:
            doc["test_fault"] = self.test_fault
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "AnalyzeRequest":
        if not isinstance(doc, dict) or not isinstance(doc.get("program"), str):
            raise ValueError("request must be an object with a 'program' string")
        return cls(
            program=doc["program"],
            tenant=str(doc.get("tenant", "default")),
            deadline_sec=doc.get("deadline_sec"),
            max_steps=doc.get("max_steps"),
            max_state_bytes=doc.get("max_state_bytes"),
            test_fault=doc.get("test_fault"),
        )


@dataclass
class ServiceConfig:
    """Everything tunable about the service."""

    state_dir: Path
    workers: int = 2
    queue_size: int = 64
    #: queue fill fraction above which new executions degrade to the
    #: baseline-only ladder (the cheap rung of the QoS story)
    degrade_at: float = 0.75
    #: "process" isolates each attempt in a disposable worker process
    #: (production); "inline" runs in the worker thread (tests, and the
    #: in-process bench harness)
    isolation: str = "process"
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 3
    breaker_cooldown_sec: float = 30.0
    #: Retry-After seconds advertised on shed responses
    retry_after_sec: int = 1
    #: extra seconds on top of the ladder's worst-case deadline before
    #: the watchdog declares an attempt hung
    timeout_grace_sec: float = 5.0
    #: absolute per-attempt watchdog override (None: derived from limits)
    job_timeout_sec: Optional[float] = None
    #: process-pool width handed to ``analyze_batch`` for batch jobs
    batch_jobs: int = 1
    cache_entries: int = 4096
    allow_test_faults: bool = False
    tenants: Dict[str, TenantBudget] = field(default_factory=dict)

    def budget_for(self, tenant: str) -> TenantBudget:
        return self.tenants.get(tenant) or self.tenants.get("default") or TenantBudget()


@dataclass
class Job:
    """One admitted unit of work (a single program or a batch)."""

    id: str
    kind: str  # "analyze" | "batch"
    request: Optional[AnalyzeRequest] = None
    batch: Optional[List[AnalyzeRequest]] = None
    key: str = ""
    cfg_fp: str = ""
    limits: Optional[EngineLimits] = None
    state: str = "queued"  # queued | running | done
    result: Optional[dict] = None
    attempts: int = 0
    done: threading.Event = field(default_factory=threading.Event)
    #: trace context (:meth:`TraceContext.to_dict`) minted at admission;
    #: rides the journal so a recovered job keeps its request identity
    trace: Optional[dict] = None
    #: admission wall-clock, for the per-tenant latency series
    created: float = field(default_factory=time.time)
    #: streaming subscribers: queues fed every progress/diagnostic/result
    #: event of this job (attached at admission, before execution starts)
    subscribers: List["queue.Queue"] = field(default_factory=list)

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self.done.wait(timeout)

    def subscribe(self) -> "queue.Queue":
        subscriber: "queue.Queue" = queue.Queue()
        self.subscribers.append(subscriber)
        return subscriber

    def publish(self, event: dict) -> None:
        for subscriber in list(self.subscribers):
            try:
                subscriber.put_nowait(event)
            except queue.Full:  # pragma: no cover - unbounded by default
                pass

    @property
    def trace_id(self) -> Optional[str]:
        return self.trace.get("trace") if isinstance(self.trace, dict) else None

    def status(self) -> dict:
        doc = {"job": self.id, "state": self.state, "kind": self.kind}
        if self.result is not None:
            doc["result"] = self.result
        return doc


# -- worker-process attempt execution -----------------------------------------


def _apply_test_fault(fault: Optional[dict]) -> None:
    """Honor a fault-injection directive inside the worker process.

    ``{"kind": "crash"}`` kills the worker outright (SIGKILL-equivalent:
    ``os._exit``, no cleanup).  ``{"kind": "hang_if_missing", "path": p}``
    hangs unless the marker file exists — a crash test restarts the
    daemon, touches the marker, and watches the replayed job succeed.
    ``{"kind": "sleep", "sec": s}`` delays, for queue-pressure tests.
    """
    if not fault:
        return
    kind = fault.get("kind")
    if kind == "crash":
        os._exit(3)
    elif kind == "hang_if_missing":
        if not Path(str(fault.get("path", ""))).exists():
            time.sleep(float(fault.get("sec", 600.0)))
    elif kind == "sleep":
        time.sleep(float(fault.get("sec", 0.1)))


def _attempt_child(
    conn, source, limits, ladder_kind, resume_payload, capture, fault,
    trace_ctx=None, trace_sink=None, stream=False,
):
    """Worker-process body: run the ladder, ship a JSON-plain reply.

    Everything sent back is plain dicts/lists/scalars, so the reply
    never trips on pickling a domain object, and the parent can journal
    and cache it as-is.  ``trace_ctx``/``trace_sink`` re-establish the
    request's trace context in this process (its spans land in a shard
    file of its own); with ``stream`` the ladder's progress events are
    forwarded over the pipe as ``("progress", event)`` messages ahead of
    the final 4-tuple reply.
    """
    try:
        _apply_test_fault(fault)
        if trace_sink:
            trace.configure_sink(trace_sink, "worker")
        span_ctx = trace.TraceContext.from_dict(trace_ctx) if trace_ctx else None
        progress = None
        if stream:
            def progress(event, _conn=conn):
                try:
                    _conn.send(("progress", dict(event)))
                except Exception:  # a dead pipe must not kill the attempt
                    pass
        with trace.activate(span_ctx), trace.span("serve.attempt", ladder=ladder_kind):
            with obs.recording() if capture else _null_context() as _:
                program = parse(source)
                ladder = (
                    baseline_ladder(limits) if ladder_kind == "baseline" else default_ladder(limits)
                )
                resume = Snapshot(payload=resume_payload) if resume_payload else None
                report = analyze_with_fallback(
                    program, limits=limits, ladder=ladder, resume=resume,
                    progress=progress,
                )
                rendered = render_report(report)
                snap = getattr(report.result, "snapshot", None)
                snapshot_payload = snap.payload if snap is not None else None
                counters = obs.counter_snapshot() if capture else None
        conn.send(("ok", rendered, snapshot_payload, counters))
    except BaseException as exc:  # the reply channel must never go silent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}", None, None))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return multiprocessing.get_context()


# -- the service ---------------------------------------------------------------


class AnalysisService:
    """The scheduler: owns the queue, the cache, the journal, the
    workers, and every robustness policy.  Start with :meth:`start`,
    stop with :meth:`drain` (graceful) or :meth:`stop` (immediate)."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.state_dir = Path(config.state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self.state_dir / "cache", max_entries=config.cache_entries)
        self.journal = JobJournal(self.state_dir / "journal.jsonl")
        self.queue: "queue.Queue[Job]" = queue.Queue(maxsize=config.queue_size)
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            cooldown_sec=config.breaker_cooldown_sec,
        )
        self.jobs: Dict[str, Job] = {}
        #: cache key -> in-flight job, for request coalescing
        self._inflight: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._threads: List[threading.Thread] = []
        self._rng = random.Random()
        self.started_at: Optional[float] = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Recover journaled work, then start the worker threads.

        Installs a process-global *locked* recorder if observability is
        not already enabled, so concurrent service threads always have a
        thread-safe shared recorder to merge into.
        """
        if not obs.enabled():
            obs.enable(obs.Recorder(locked=True))
        trace.configure_sink(self.state_dir / "traces", "daemon")
        self.started_at = time.time()
        self._recover()
        for index in range(max(1, self.config.workers)):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        slog.info(
            "serve.started",
            workers=len(self._threads),
            queue_size=self.config.queue_size,
            state_dir=str(self.state_dir),
        )

    def _recover(self) -> None:
        """Replay the journal: re-queue accepted-but-unfinished jobs,
        re-index completed ones, compact."""
        pending, done = self.journal.fold()
        for job_id, record in done.items():
            job = Job(id=job_id, kind=str(record.get("kind", "analyze")), state="done")
            job.result = record.get("result")
            job.done.set()
            self.jobs[job_id] = job
        requeued = 0
        for job_id, record in sorted(pending.items(), key=lambda kv: kv[1].get("seq", 0)):
            job = self._rebuild_job(job_id, record)
            if job is None:
                continue
            self.jobs[job_id] = job
            if job.key:
                self._inflight[job.key] = job
            try:
                self.queue.put_nowait(job)
            except queue.Full:
                # more journaled work than queue slots: finish inline with
                # the baseline so recovery still terminates every job
                self._complete_degraded(job, "recovery-overflow")
                continue
            requeued += 1
        self.journal.compact()
        if requeued or done:
            obs.incr("serve.recovered_jobs", requeued)
            slog.info("serve.recovered", requeued=requeued, completed=len(done))

    def _rebuild_job(self, job_id: str, record: dict) -> Optional[Job]:
        kind = str(record.get("kind", "analyze"))
        try:
            if kind == "batch":
                batch = [AnalyzeRequest.from_json(doc) for doc in record.get("batch", [])]
                if not batch:
                    return None
                return Job(id=job_id, kind="batch", batch=batch)
            request = AnalyzeRequest.from_json(record.get("request", {}))
            key, cfg_fp, limits = self._admission_identity(request)
            shipped = record.get("trace")
            return Job(
                id=job_id, kind="analyze", request=request,
                key=key, cfg_fp=cfg_fp, limits=limits,
                trace=shipped if isinstance(shipped, dict) else None,
            )
        except (ValueError, ParseError):
            obs.incr("serve.recovery_dropped")
            return None

    def begin_drain(self) -> None:
        """Stop admitting; already-accepted work keeps running."""
        if not self._draining.is_set():
            self._draining.set()
            slog.info("serve.draining")

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: refuse new work, finish the queue, stop.

        Returns True when every accepted job completed in time.  Jobs
        still unfinished at the deadline stay journaled — the next
        daemon finishes them.
        """
        self.begin_drain()
        deadline = time.monotonic() + timeout
        clean = True
        for job in list(self.jobs.values()):
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not job.wait(remaining):
                if not job.done.is_set():
                    clean = False
        self.stop()
        return clean

    def stop(self) -> None:
        self._draining.set()
        self._stopped.set()
        for thread in self._threads:
            thread.join(timeout=2.0)
        self.journal.close()
        slog.info("serve.stopped")

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # -- admission -------------------------------------------------------------

    def effective_limits(self, request: AnalyzeRequest) -> EngineLimits:
        """The request's budgets clamped into its tenant's QoS envelope."""
        budget = self.config.budget_for(request.tenant)
        deadline = budget.deadline_sec
        if request.deadline_sec is not None:
            deadline = min(float(request.deadline_sec), budget.deadline_sec)
        max_steps = budget.max_steps
        if request.max_steps is not None:
            max_steps = min(int(request.max_steps), budget.max_steps)
        max_state = budget.max_state_bytes
        if request.max_state_bytes is not None:
            max_state = (
                int(request.max_state_bytes)
                if budget.max_state_bytes is None
                else min(int(request.max_state_bytes), budget.max_state_bytes)
            )
        return EngineLimits(
            max_steps=max_steps, deadline_sec=deadline, max_state_bytes=max_state
        )

    def _admission_identity(self, request: AnalyzeRequest) -> Tuple[str, str, EngineLimits]:
        """Parse + fingerprint + key.  Raises ParseError for client bugs."""
        program = parse(request.program)
        cfg = build_cfg(program)
        cfg_fp = cfg_fingerprint(cfg)
        limits = self.effective_limits(request)
        key = compute_key(cfg_fp, DEFAULT_LADDER_ID, limits)
        return key, cfg_fp, limits

    def submit(self, request: AnalyzeRequest, subscriber=None) -> Tuple[str, object]:
        """Admit one request.

        Returns one of::

            ("hit", result_document)      # O(1) cache hit
            ("accepted", Job)             # queued (or coalesced onto an
                                          # identical in-flight job)
            ("rejected", message)         # parse error — client bug
            ("shed", info)                # queue full or draining

        ``subscriber`` (a queue) is attached to the job *at admission*,
        inside the lock, so a streaming client observes every event the
        execution emits — subscribing after submit would race the worker.
        The thread's active trace context (if any) becomes the job's.
        """
        if request.test_fault is not None and not self.config.allow_test_faults:
            request = replace(request, test_fault=None)
        span_ctx = trace.current()
        try:
            key, cfg_fp, limits = self._admission_identity(request)
        except ParseError as exc:
            obs.incr("serve.rejected")
            return "rejected", f"parse error: {exc}"
        entry = self.cache.lookup(key)
        if entry is not None:
            obs.incr("serve.served_from_cache")
            return "hit", entry["result"]
        if self._draining.is_set():
            obs.incr("serve.shed.draining")
            return "shed", {"reason": "draining", "retry_after_sec": self.config.retry_after_sec}
        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None and not inflight.done.is_set():
                obs.incr("serve.coalesced")
                if subscriber is not None:
                    inflight.subscribers.append(subscriber)
                return "accepted", inflight
            job = Job(
                id=uuid.uuid4().hex[:12], kind="analyze", request=request,
                key=key, cfg_fp=cfg_fp, limits=limits,
                trace=span_ctx.to_dict() if span_ctx is not None else None,
            )
            if subscriber is not None:
                job.subscribers.append(subscriber)
            # journal-first: the 202 promise must survive a SIGKILL that
            # lands before the queue drains
            accepted_record = {
                "event": "accepted",
                "job": job.id,
                "kind": "analyze",
                "seq": time.time(),
                "request": request.to_json(),
            }
            if job.trace:
                accepted_record["trace"] = job.trace
            self.journal.append(accepted_record)
            try:
                if faults.check("daemon.queue.overflow") is not None:
                    raise queue.Full
                self.queue.put_nowait(job)
            except queue.Full:
                # shed *after* journaling would strand the record; mark it
                # done-as-shed so recovery does not resurrect shed work
                self.journal.append(
                    {"event": "done", "job": job.id, "kind": "analyze",
                     "result": None, "shed": True}
                )
                obs.incr("serve.shed.queue_full")
                return "shed", {
                    "reason": "queue_full",
                    "retry_after_sec": self.config.retry_after_sec,
                }
            self.jobs[job.id] = job
            self._inflight[key] = job
        obs.incr("serve.accepted")
        return "accepted", job

    def submit_batch(self, requests: List[AnalyzeRequest]) -> Tuple[str, object]:
        """Admit a batch: cached items are answered inline; the misses
        become one queued job executed through ``driver.analyze_batch``."""
        if self._draining.is_set():
            obs.incr("serve.shed.draining")
            return "shed", {"reason": "draining", "retry_after_sec": self.config.retry_after_sec}
        prelim: List[Optional[dict]] = []
        misses: List[AnalyzeRequest] = []
        for request in requests:
            if request.test_fault is not None and not self.config.allow_test_faults:
                request = replace(request, test_fault=None)
            try:
                key, _cfg_fp, _limits = self._admission_identity(request)
            except ParseError as exc:
                prelim.append({"error": f"parse error: {exc}"})
                continue
            entry = self.cache.lookup(key)
            if entry is not None:
                obs.incr("serve.served_from_cache")
                prelim.append({"cache": "hit", "result": entry["result"]})
            else:
                prelim.append(None)
                misses.append(request)
        if not misses:
            return "hit", {"results": prelim}
        span_ctx = trace.current()
        job = Job(
            id=uuid.uuid4().hex[:12], kind="batch", batch=misses,
            trace=span_ctx.to_dict() if span_ctx is not None else None,
        )
        job.result = None
        job._prelim = prelim  # filled result skeleton; misses in order
        with self._lock:
            self.journal.append(
                {
                    "event": "accepted",
                    "job": job.id,
                    "kind": "batch",
                    "seq": time.time(),
                    "batch": [request.to_json() for request in misses],
                }
            )
            try:
                self.queue.put_nowait(job)
            except queue.Full:
                self.journal.append(
                    {"event": "done", "job": job.id, "kind": "batch",
                     "result": None, "shed": True}
                )
                obs.incr("serve.shed.queue_full")
                return "shed", {
                    "reason": "queue_full",
                    "retry_after_sec": self.config.retry_after_sec,
                }
            self.jobs[job.id] = job
        obs.incr("serve.accepted_batch")
        return "accepted", job

    def get_job(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    # -- execution -------------------------------------------------------------

    def _worker_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                job = self.queue.get(timeout=0.2)
            except queue.Empty:
                continue
            try:
                span_ctx = trace.TraceContext.from_dict(job.trace) if job.trace else None
                with trace.activate(span_ctx), obs.span("serve.job"), trace.span(
                    "serve.job", job=job.id, kind=job.kind
                ):
                    if job.kind == "batch":
                        self._run_batch_job(job)
                    else:
                        self._run_job(job)
            except Exception as exc:  # the loop must survive anything
                slog.warning("serve.worker_error", job=job.id, error=str(exc))
                self._complete_degraded(job, f"worker-error: {exc}")
            finally:
                self.queue.task_done()

    def _under_pressure(self) -> bool:
        return self.queue.qsize() >= self.config.degrade_at * self.config.queue_size

    def _ladder_plan(self, job: Job) -> Tuple[str, str]:
        """(ladder kind, degradation marker) for this execution."""
        if self._under_pressure():
            obs.incr("serve.degraded.overload")
            return "baseline", "overload"
        return "default", ""

    def _attempt_timeout(self, limits: EngineLimits, ladder_kind: str) -> float:
        if self.config.job_timeout_sec is not None:
            return self.config.job_timeout_sec
        per_rung = limits.deadline_sec or 30.0
        rungs = 1 if ladder_kind == "baseline" else 4
        return per_rung * rungs + self.config.timeout_grace_sec

    def _run_job(self, job: Job) -> None:
        job.state = "running"
        started_record = {"event": "started", "job": job.id, "attempt": job.attempts}
        if job.trace_id:
            started_record["trace"] = job.trace_id
        self.journal.append(started_record)
        progress = None
        if job.subscribers:
            def progress(event: dict, _job=job) -> None:
                _job.publish({**event, "job": _job.id})
        ladder_kind, degraded = self._ladder_plan(job)
        exec_limits = job.limits
        pressure = faults.check("daemon.clock.pressure")
        if pressure is not None:
            # the wall clock collapsed under us (NTP step, noisy neighbor,
            # injected): run under a near-zero deadline.  The cache key was
            # computed from the *admitted* limits, so the squeezed answer
            # must be marked degraded — degraded results are never cached,
            # which keeps the key ↔ budget contract intact.
            squeezed = min(exec_limits.deadline_sec or 0.05, 0.05)
            exec_limits = replace(exec_limits, deadline_sec=squeezed)
            degraded = degraded or "clock-pressure"
            obs.incr("serve.degraded.clock_pressure")
        warm = self.cache.warm_snapshot(job.cfg_fp, "CartesianClient")
        attempt = 0
        while True:
            try:
                rendered, snapshot_payload = self._execute_attempt(
                    job, ladder_kind, warm, exec_limits, progress=progress
                )
                break
            except TransientJobError as exc:
                obs.incr("serve.attempt_failures")
                if attempt >= self.config.retry.max_retries:
                    slog.warning("serve.retries_exhausted", job=job.id, error=str(exc))
                    self._complete_degraded(job, f"retries-exhausted: {exc}")
                    return
                delay = self.config.retry.delay(attempt, self._rng)
                slog.info(
                    "serve.retry", job=job.id, attempt=attempt,
                    delay_sec=round(delay, 3), error=str(exc),
                )
                retry_record = {
                    "event": "retry", "job": job.id, "attempt": attempt, "error": str(exc),
                }
                if job.trace_id:
                    retry_record["trace"] = job.trace_id
                self.journal.append(retry_record)
                obs.incr("serve.retries")
                time.sleep(delay)
                attempt += 1
                job.attempts = attempt
        if degraded:
            rendered["degraded"] = degraded
            rendered.setdefault("service_diagnostics", []).append(
                f"DEGRADED: {degraded}"
            )
        if progress is not None:
            for diagnostic in rendered.get("diagnostics", []) or []:
                progress({"event": "diagnostic", "diagnostic": str(diagnostic)})
        self._record_breaker(rendered)
        clean = not degraded
        if clean:
            self.cache.store(
                job.key, job.cfg_fp, DEFAULT_LADDER_ID, job.limits,
                rendered, snapshot_payload,
            )
        self._finish(job, rendered)

    def _execute_attempt(
        self,
        job: Job,
        ladder_kind: str,
        warm: Optional[Snapshot],
        limits: Optional[EngineLimits] = None,
        progress=None,
    ) -> Tuple[dict, Optional[dict]]:
        """One attempt, isolated per config.  Raises TransientJobError on
        worker loss or watchdog timeout.  ``progress`` (when the job has
        streaming subscribers) receives the ladder's rung/heartbeat
        events; under process isolation the child forwards them over the
        reply pipe and this side fans them out."""
        request = job.request
        limits = limits if limits is not None else job.limits
        fault = request.test_fault if self.config.allow_test_faults else None
        if faults.check("daemon.worker.kill") is not None:
            # decided parent-side so the plane's coverage accounting stays
            # in one process; in process isolation the child honors the
            # same crash directive the SIGKILL crash suite uses
            fault = {"kind": "crash"}
        if self.config.isolation == "inline":
            return self._execute_inline(
                request, limits, ladder_kind, warm, fault, progress=progress
            )
        timeout = self._attempt_timeout(limits, ladder_kind)
        span_ctx = trace.current()
        sink = trace.sink()
        ctx = _fork_context()
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_attempt_child,
            args=(
                child_conn, request.program, limits, ladder_kind,
                warm.payload if warm is not None else None,
                obs.enabled(), fault,
                span_ctx.to_dict() if span_ctx is not None else None,
                str(sink) if sink is not None else None,
                progress is not None,
            ),
        )
        process.start()
        child_conn.close()
        reply = None
        try:
            deadline = time.monotonic() + timeout
            while reply is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    obs.incr("serve.watchdog_timeouts")
                    raise TransientJobError(f"attempt timed out after {timeout:.1f}s")
                if not parent_conn.poll(min(remaining, 0.5)):
                    continue
                try:
                    message = parent_conn.recv()
                except (EOFError, OSError):
                    obs.incr("serve.worker_lost")
                    raise TransientJobError("worker process died without replying")
                if (
                    isinstance(message, tuple)
                    and len(message) == 2
                    and message[0] == "progress"
                ):
                    if progress is not None and isinstance(message[1], dict):
                        progress(message[1])
                    continue
                reply = message
        finally:
            parent_conn.close()
            if process.is_alive():
                process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - terminate() sufficed so far
                process.kill()
                process.join(timeout=5.0)
        status, payload, snapshot_payload, counters = reply
        obs.merge_counters(counters)
        if status != "ok":
            # an exception inside the ladder is a daemon-side bug (the
            # driver is supposed to be total); retry in case it was
            # environmental, degrade if it persists
            raise TransientJobError(f"attempt failed: {payload}")
        if warm is not None and payload.get("resumed_from"):
            obs.incr("serve.cache.warm_starts")
        return payload, snapshot_payload

    def _execute_inline(self, request, limits, ladder_kind, warm, fault, progress=None):
        """In-thread attempt (tests / bench): per-job recorder isolation
        via ``job_recording`` keeps concurrent jobs' counters separate."""
        if fault and fault.get("kind") == "crash":
            raise TransientJobError("injected crash")
        if fault and fault.get("kind") == "sleep":
            time.sleep(float(fault.get("sec", 0.1)))
        program = parse(request.program)
        ladder = baseline_ladder(limits) if ladder_kind == "baseline" else default_ladder(limits)
        with trace.span("serve.attempt", ladder=ladder_kind), obs.job_recording() as recorder:
            report = analyze_with_fallback(
                program, limits=limits, ladder=ladder, resume=warm,
                progress=progress,
            )
            rendered = render_report(report)
            counters = dict(recorder.counters)
        obs.merge_counters(counters)
        snap = getattr(report.result, "snapshot", None)
        if warm is not None and rendered.get("resumed_from"):
            obs.incr("serve.cache.warm_starts")
        return rendered, (snap.payload if snap is not None else None)

    def _run_batch_job(self, job: Job) -> None:
        """Execute a batch job through ``driver.analyze_batch`` (the
        shared batch entry point), caching each item's result."""
        job.state = "running"
        self.journal.append({"event": "started", "job": job.id, "attempt": 0})
        limits = self.effective_limits(job.batch[0])
        programs: List[Optional[object]] = []
        errors: List[Optional[str]] = []
        for request in job.batch:
            try:
                programs.append(parse(request.program))
                errors.append(None)
            except ParseError as exc:
                programs.append(None)
                errors.append(f"parse error: {exc}")
        parsed = [program for program in programs if program is not None]
        with obs.job_recording() as recorder:
            # analyze_batch yields in input order, so reports line up with
            # the parsed sublist positionally
            reports = [
                report
                for _item, report in analyze_batch(
                    parsed, limits=limits, jobs=self.config.batch_jobs
                )
            ]
            counters = dict(recorder.counters)
        obs.merge_counters(counters)
        results: List[dict] = []
        cursor = 0
        for request, program, error in zip(job.batch, programs, errors):
            if program is None:
                results.append({"error": error})
                continue
            rendered = render_report(reports[cursor])
            cursor += 1
            try:
                key, cfg_fp, item_limits = self._admission_identity(request)
                self.cache.store(key, cfg_fp, DEFAULT_LADDER_ID, item_limits, rendered)
            except ParseError:  # pragma: no cover - parsed above
                pass
            results.append({"cache": "miss", "result": rendered})
        prelim = getattr(job, "_prelim", None)
        if prelim is not None:
            merged, cursor = [], 0
            for slot in prelim:
                if slot is None:
                    merged.append(results[cursor])
                    cursor += 1
                else:
                    merged.append(slot)
            document = {"results": merged}
        else:
            document = {"results": results}
        self._finish(job, document)

    # -- completion ------------------------------------------------------------

    def _record_breaker(self, rendered: dict) -> None:
        """Feed per-rung outcomes to the circuit breaker: a rung that
        gave up or threw client faults counts as a failure."""
        for rung in rendered.get("rungs", []):
            name = rung.get("name", "")
            if not name or name == "mpi-cfg":
                continue
            failed = (
                rung.get("confidence") == diagnostics.GAVE_UP
                or diagnostics.CLIENT_FAULT in str(rung.get("diagnostics", ""))
            )
            if failed:
                self.breaker.record_failure(name)
            else:
                self.breaker.record_success(name)

    def _complete_degraded(self, job: Job, reason: str) -> None:
        """Terminal fallback: answer with the inline baseline (total,
        cheap, cannot fail) plus a service diagnostic.  Every accepted
        job ends here at the latest — an answer, never a hang."""
        try:
            if job.kind == "batch":
                document = {
                    "results": [
                        {"error": f"degraded: {reason}"} for _ in (job.batch or [])
                    ]
                }
            else:
                program = parse(job.request.program)
                report = analyze_with_fallback(
                    program, limits=job.limits, ladder=baseline_ladder(job.limits)
                )
                document = render_report(report)
                document["degraded"] = reason
                document["service_diagnostics"] = [f"RETRY_EXHAUSTED: {reason}"]
        except Exception as exc:  # pragma: no cover - baseline is total
            document = {"error": f"degraded and baseline failed: {exc}"}
        obs.incr("serve.degraded.terminal")
        self._finish(job, document)

    def _finish(self, job: Job, document: dict) -> None:
        done_record = {"event": "done", "job": job.id, "kind": job.kind, "result": document}
        if job.trace_id:
            done_record["trace"] = job.trace_id
        self.journal.append(done_record)
        job.result = document
        job.state = "done"
        with self._lock:
            if job.key and self._inflight.get(job.key) is job:
                del self._inflight[job.key]
        tenant = None
        if job.request is not None:
            tenant = job.request.tenant
        elif job.batch:
            tenant = job.batch[0].tenant
        if tenant:
            obs.observe(
                f"serve.tenant.latency_ms.{tenant}",
                (time.time() - job.created) * 1000.0,
            )
        job.done.set()
        job.publish({"event": "result", "job": job.id, "result": document})
        obs.incr("serve.completed")

    # -- introspection ---------------------------------------------------------

    def stats(self) -> dict:
        recorder = obs.active_recorder()
        counters = dict(recorder.counters) if isinstance(recorder, obs.Recorder) else {}
        return {
            "uptime_sec": time.time() - self.started_at if self.started_at else 0.0,
            "draining": self.draining,
            "queue_depth": self.queue.qsize(),
            "queue_size": self.config.queue_size,
            "jobs": len(self.jobs),
            "workers": len(self._threads),
            "cache": self.cache.stats(),
            "breaker": self.breaker.snapshot(),
            "counters": {
                name: value for name, value in sorted(counters.items())
                if name.startswith(("serve.", "driver.", "engine."))
            },
        }


def load_tenants(path) -> Dict[str, TenantBudget]:
    """Parse a ``{"tenant": {"deadline_sec": ..., ...}}`` JSON file."""
    doc = json.loads(Path(path).read_text())
    tenants = {}
    for name, spec in doc.items():
        tenants[name] = TenantBudget(
            name=name,
            deadline_sec=float(spec.get("deadline_sec", 30.0)),
            max_state_bytes=spec.get("max_state_bytes"),
            max_steps=int(spec.get("max_steps", 20_000)),
        )
    return tenants
