"""Shared test/benchmark scaffolding.

``tests/conftest.py`` and ``benchmarks/conftest.py`` both need the same
isolation guarantee: no closure stats, memo tables, obs recorder state,
flight-recorder provenance, or structured-logging sink may leak from one
test into the next.  The reset logic lives here — once — and the two
conftests re-export :func:`observability_fixture` as their autouse fixture.
"""

from __future__ import annotations

import pytest


def reset_state() -> None:
    """Reset every piece of cross-cutting global state to a clean slate."""
    from repro.cgraph.constraint_graph import clear_closure_caches
    from repro.cgraph.stats import reset_global_stats
    from repro.faults import plane as fault_plane
    from repro.obs import provenance, slog, trace
    from repro.obs import recorder as obs_recorder

    reset_global_stats()
    clear_closure_caches()
    obs_recorder.reset()
    provenance.reset()
    fault_plane.reset()
    slog.configure(None)
    trace.configure_sink(None)


def observability_fixture():
    """An autouse fixture isolating tests from each other's global state.

    Usage (in a conftest)::

        _reset_observability = observability_fixture()
    """

    @pytest.fixture(autouse=True)
    def _reset_observability():
        reset_state()
        yield
        reset_state()

    return _reset_observability
