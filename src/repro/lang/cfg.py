"""Control-flow graph construction for MPL programs.

The pCFG framework (Section V) is defined over the per-process CFG of the
analyzed program, so every analysis in this library starts here.  Nodes carry
one statement each (or a branch condition); edges are labelled ``True`` /
``False`` out of branches and unlabelled otherwise.

``for`` loops are desugared into ``init; while (var <= stop) { body; var++ }``
which is exactly the shape of the paper's Fig. 5 loop and lets the
constraint-graph client derive the loop invariant through widening.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lang.ast import (
    Assert,
    Assign,
    BinOp,
    Compare,
    Expr,
    For,
    If,
    Num,
    Print,
    Program,
    Recv,
    Send,
    Skip,
    Stmt,
    Var,
    While,
)


class NodeKind(enum.Enum):
    """What a CFG node does."""

    ENTRY = "entry"
    EXIT = "exit"
    ASSIGN = "assign"
    BRANCH = "branch"
    SEND = "send"
    RECV = "recv"
    PRINT = "print"
    ASSERT = "assert"
    SKIP = "skip"


@dataclass
class CFGNode:
    """One CFG node: a statement or a branch condition.

    ``stmt`` holds the originating AST statement (for ``BRANCH`` nodes of
    ``if``/``while`` it is the structured statement, and ``cond`` holds the
    branch condition).
    """

    node_id: int
    kind: NodeKind
    stmt: Optional[Stmt] = None
    cond: Optional[Expr] = None
    label: str = ""

    def is_comm(self) -> bool:
        """True for send/receive nodes (the paper's ``isCommOp``)."""
        return self.kind in (NodeKind.SEND, NodeKind.RECV)

    def describe(self) -> str:
        """Human-readable one-line description."""
        if self.kind == NodeKind.ENTRY:
            return "entry"
        if self.kind == NodeKind.EXIT:
            return "exit"
        if self.kind == NodeKind.BRANCH:
            return f"branch {self.cond}"
        return str(self.stmt)

    def __repr__(self) -> str:
        tag = self.label or self.node_id
        return f"<CFGNode {tag}: {self.describe()}>"


@dataclass
class CFG:
    """A control-flow graph with a unique entry and a unique exit node."""

    nodes: Dict[int, CFGNode] = field(default_factory=dict)
    edges: Dict[int, List[Tuple[int, Optional[bool]]]] = field(default_factory=dict)
    entry: int = 0
    exit: int = 0

    # -- construction helpers ----------------------------------------------

    def add_node(
        self,
        kind: NodeKind,
        stmt: Optional[Stmt] = None,
        cond: Optional[Expr] = None,
    ) -> int:
        """Create a node and return its id."""
        node_id = len(self.nodes)
        self.nodes[node_id] = CFGNode(node_id, kind, stmt, cond)
        self.edges[node_id] = []
        return node_id

    def add_edge(self, src: int, dst: int, label: Optional[bool] = None) -> None:
        """Add a (possibly labelled) edge."""
        if (dst, label) not in self.edges[src]:
            self.edges[src].append((dst, label))

    # -- queries -------------------------------------------------------------

    def node(self, node_id: int) -> CFGNode:
        """The node with the given id."""
        return self.nodes[node_id]

    def successors(self, node_id: int) -> List[Tuple[int, Optional[bool]]]:
        """Outgoing ``(target, label)`` pairs."""
        return list(self.edges[node_id])

    def succ_ids(self, node_id: int) -> List[int]:
        """Outgoing target ids."""
        return [dst for dst, _ in self.edges[node_id]]

    def predecessors(self, node_id: int) -> List[int]:
        """Ids of all nodes with an edge into ``node_id``."""
        return [src for src, targets in self.edges.items()
                if any(dst == node_id for dst, _ in targets)]

    def comm_nodes(self) -> List[CFGNode]:
        """All send/receive nodes."""
        return [node for node in self.nodes.values() if node.is_comm()]

    def reverse_postorder(self) -> List[int]:
        """Reverse postorder node ids from the entry (for worklist seeding)."""
        seen = set()
        order: List[int] = []

        def visit(node_id: int) -> None:
            stack = [(node_id, iter(self.succ_ids(node_id)))]
            seen.add(node_id)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for succ in successors:
                    if succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.succ_ids(succ))))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.entry)
        return list(reversed(order))

    def rpo_index(self) -> Dict[int, int]:
        """Map node id to its reverse-postorder rank."""
        return {node_id: rank for rank, node_id in enumerate(self.reverse_postorder())}

    def assign_letter_labels(self) -> None:
        """Give nodes the paper-style letter labels A, B, C... in RPO."""
        letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
        for rank, node_id in enumerate(self.reverse_postorder()):
            if rank < len(letters):
                self.nodes[node_id].label = letters[rank]
            else:
                self.nodes[node_id].label = f"N{rank}"

    def to_dot(self) -> str:
        """Graphviz rendering (for documentation and debugging)."""
        lines = ["digraph cfg {"]
        for node in self.nodes.values():
            text = node.describe().replace('"', "'")
            lines.append(f'  n{node.node_id} [label="{node.label or node.node_id}: {text}"];')
        for src, targets in self.edges.items():
            for dst, label in targets:
                attr = "" if label is None else f' [label="{label}"]'
                lines.append(f"  n{src} -> n{dst}{attr};")
        lines.append("}")
        return "\n".join(lines)


class _Builder:
    """Translates a statement list into CFG nodes and edges."""

    def __init__(self) -> None:
        self.cfg = CFG()

    def build(self, program: Program) -> CFG:
        entry = self.cfg.add_node(NodeKind.ENTRY)
        self.cfg.entry = entry
        heads, tails = self._build_block(list(program.body))
        exit_id = self.cfg.add_node(NodeKind.EXIT)
        self.cfg.exit = exit_id
        if heads is None:
            self.cfg.add_edge(entry, exit_id)
        else:
            self.cfg.add_edge(entry, heads)
            for tail, label in tails:
                self.cfg.add_edge(tail, exit_id, label)
        self.cfg.assign_letter_labels()
        return self.cfg

    def _build_block(
        self, stmts: List[Stmt]
    ) -> Tuple[Optional[int], List[Tuple[int, Optional[bool]]]]:
        """Build a block; returns (first node id or None, dangling exits)."""
        first: Optional[int] = None
        dangling: List[Tuple[int, Optional[bool]]] = []
        for stmt in stmts:
            head, tails = self._build_stmt(stmt)
            if first is None:
                first = head
            for tail, label in dangling:
                self.cfg.add_edge(tail, head, label)
            dangling = tails
        return first, dangling

    def _build_stmt(self, stmt: Stmt) -> Tuple[int, List[Tuple[int, Optional[bool]]]]:
        if isinstance(stmt, Skip):
            node = self.cfg.add_node(NodeKind.SKIP, stmt)
            return node, [(node, None)]
        if isinstance(stmt, Assign):
            node = self.cfg.add_node(NodeKind.ASSIGN, stmt)
            return node, [(node, None)]
        if isinstance(stmt, Print):
            node = self.cfg.add_node(NodeKind.PRINT, stmt)
            return node, [(node, None)]
        if isinstance(stmt, Assert):
            node = self.cfg.add_node(NodeKind.ASSERT, stmt)
            return node, [(node, None)]
        if isinstance(stmt, Send):
            node = self.cfg.add_node(NodeKind.SEND, stmt)
            return node, [(node, None)]
        if isinstance(stmt, Recv):
            node = self.cfg.add_node(NodeKind.RECV, stmt)
            return node, [(node, None)]
        if isinstance(stmt, If):
            return self._build_if(stmt)
        if isinstance(stmt, While):
            return self._build_while(stmt)
        if isinstance(stmt, For):
            return self._build_for(stmt)
        raise TypeError(f"unknown statement type {type(stmt).__name__}")

    def _build_if(self, stmt: If) -> Tuple[int, List[Tuple[int, Optional[bool]]]]:
        branch = self.cfg.add_node(NodeKind.BRANCH, stmt, cond=stmt.cond)
        exits: List[Tuple[int, Optional[bool]]] = []
        then_head, then_tails = self._build_block(list(stmt.then_body))
        if then_head is None:
            exits.append((branch, True))
        else:
            self.cfg.add_edge(branch, then_head, True)
            exits.extend(then_tails)
        else_head, else_tails = self._build_block(list(stmt.else_body))
        if else_head is None:
            exits.append((branch, False))
        else:
            self.cfg.add_edge(branch, else_head, False)
            exits.extend(else_tails)
        return branch, exits

    def _build_while(self, stmt: While) -> Tuple[int, List[Tuple[int, Optional[bool]]]]:
        branch = self.cfg.add_node(NodeKind.BRANCH, stmt, cond=stmt.cond)
        body_head, body_tails = self._build_block(list(stmt.body))
        if body_head is None:
            self.cfg.add_edge(branch, branch, True)
        else:
            self.cfg.add_edge(branch, body_head, True)
            for tail, label in body_tails:
                self.cfg.add_edge(tail, branch, label)
        return branch, [(branch, False)]

    def _build_for(self, stmt: For) -> Tuple[int, List[Tuple[int, Optional[bool]]]]:
        init = Assign(stmt.var, stmt.start)
        init_node = self.cfg.add_node(NodeKind.ASSIGN, init)
        cond = Compare("<=", Var(stmt.var), stmt.stop)
        loop = While(
            cond,
            tuple(stmt.body) + (Assign(stmt.var, BinOp("+", Var(stmt.var), Num(1))),),
        )
        loop_head, loop_tails = self._build_stmt(loop)
        self.cfg.add_edge(init_node, loop_head)
        return init_node, loop_tails


def build_cfg(program: Program) -> CFG:
    """Build the control-flow graph of an MPL program."""
    return _Builder().build(program)
