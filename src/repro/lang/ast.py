"""Abstract syntax for MPL.

Expressions are integer-valued (booleans are represented as 0/1, as in C).
The two distinguished read-only variables are ``id`` (the executing process'
rank) and ``np`` (the total process count); they are ordinary :class:`Var`
nodes at the AST level and acquire their meaning in the interpreter and the
analyses.

Statements mirror the paper's pseudocode: assignment, ``if``/``while``/
``for``, ``send value -> dest``, ``receive var <- src``, ``print``, ``assert``
and ``skip``.  ``send``/``receive`` accept an optional message type tag
(``send x -> 0 : float``) used by the MPI-CFG baseline and the type-mismatch
bug detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class of all MPL expressions."""

    def children(self) -> Tuple["Expr", ...]:
        """Direct sub-expressions."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def free_vars(self) -> set:
        """Names of all variables mentioned in the expression."""
        return {node.name for node in self.walk() if isinstance(node, Var)}


@dataclass(frozen=True)
class Num(Expr):
    """Integer literal."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """Variable reference (including ``id`` and ``np``)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic or logical binary operation.

    ``op`` is one of ``+ - * / %`` (``/`` is flooring integer division, as in
    the paper's ``id/nrows``) or ``and`` / ``or`` on 0/1 values.
    """

    op: str
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operation: ``-`` (negate) or ``not``."""

    op: str
    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        if self.op == "not":
            return f"(not {self.operand})"
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Compare(Expr):
    """Comparison producing 0/1: ``== != < <= > >=``."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def negated(self) -> "Compare":
        """The comparison with opposite truth value."""
        opposite = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
        return Compare(opposite[self.op], self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class InputExpr(Expr):
    """Non-deterministic external input (``input()`` in source).

    The execution model allows processes to read arbitrary input; the
    analyses treat it as an unknown value.
    """

    def __str__(self) -> str:
        return "input()"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class of all MPL statements."""

    def substatements(self) -> Tuple[List["Stmt"], ...]:
        """Nested statement blocks (bodies of structured statements)."""
        return ()

    def walk(self) -> Iterator["Stmt"]:
        """Yield this statement and all nested statements, pre-order."""
        yield self
        for block in self.substatements():
            for stmt in block:
                yield from stmt.walk()


@dataclass(frozen=True)
class Skip(Stmt):
    """No-op."""

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Assign(Stmt):
    """``target = value``."""

    target: str
    value: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.value}"


@dataclass(frozen=True)
class If(Stmt):
    """``if cond then ... else ... end`` (else branch may be empty)."""

    cond: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()

    def substatements(self) -> Tuple[List[Stmt], ...]:
        return (list(self.then_body), list(self.else_body))

    def __str__(self) -> str:
        return f"if {self.cond} then ... end"


@dataclass(frozen=True)
class While(Stmt):
    """``while cond do ... end``."""

    cond: Expr
    body: Tuple[Stmt, ...]

    def substatements(self) -> Tuple[List[Stmt], ...]:
        return (list(self.body),)

    def __str__(self) -> str:
        return f"while {self.cond} do ... end"


@dataclass(frozen=True)
class For(Stmt):
    """``for var = start to stop do ... end`` — inclusive upper bound.

    Desugared during CFG construction into ``var = start; while var <= stop``
    with a ``var = var + 1`` increment, matching the paper's Fig. 5 loop.
    """

    var: str
    start: Expr
    stop: Expr
    body: Tuple[Stmt, ...]

    def substatements(self) -> Tuple[List[Stmt], ...]:
        return (list(self.body),)

    def __str__(self) -> str:
        return f"for {self.var} = {self.start} to {self.stop} do ... end"


@dataclass(frozen=True)
class Send(Stmt):
    """``send value -> dest [: mtype]`` — blocking send to process ``dest``."""

    value: Expr
    dest: Expr
    mtype: str = "int"

    def __str__(self) -> str:
        suffix = f" : {self.mtype}" if self.mtype != "int" else ""
        return f"send {self.value} -> {self.dest}{suffix}"


@dataclass(frozen=True)
class Recv(Stmt):
    """``receive target <- src [: mtype]`` — blocking receive from ``src``."""

    target: str
    src: Expr
    mtype: str = "int"

    def __str__(self) -> str:
        suffix = f" : {self.mtype}" if self.mtype != "int" else ""
        return f"receive {self.target} <- {self.src}{suffix}"


@dataclass(frozen=True)
class Print(Stmt):
    """``print expr`` — observable output."""

    value: Expr

    def __str__(self) -> str:
        return f"print {self.value}"


@dataclass(frozen=True)
class Assert(Stmt):
    """``assert cond`` — a programmer-supplied invariant.

    The analyses consume asserts as trusted facts (e.g. ``assert np ==
    nrows * ncols`` seeds the Cartesian client's invariant system, exactly as
    in the paper's Fig. 6 example); the interpreter checks them.
    """

    cond: Expr

    def __str__(self) -> str:
        return f"assert {self.cond}"


@dataclass(frozen=True)
class Program:
    """A whole MPL program: the statement list every process executes."""

    body: Tuple[Stmt, ...]
    source: Optional[str] = field(default=None, compare=False)

    def walk(self) -> Iterator[Stmt]:
        """All statements in the program, pre-order."""
        for stmt in self.body:
            yield from stmt.walk()

    def sends(self) -> List[Send]:
        """Every send statement in the program."""
        return [stmt for stmt in self.walk() if isinstance(stmt, Send)]

    def recvs(self) -> List[Recv]:
        """Every receive statement in the program."""
        return [stmt for stmt in self.walk() if isinstance(stmt, Recv)]

    def variables(self) -> set:
        """All variable names assigned or read anywhere in the program."""
        names = set()
        for stmt in self.walk():
            if isinstance(stmt, Assign):
                names.add(stmt.target)
                names.update(stmt.value.free_vars())
            elif isinstance(stmt, (If, While)):
                names.update(stmt.cond.free_vars())
            elif isinstance(stmt, For):
                names.add(stmt.var)
                names.update(stmt.start.free_vars())
                names.update(stmt.stop.free_vars())
            elif isinstance(stmt, Send):
                names.update(stmt.value.free_vars())
                names.update(stmt.dest.free_vars())
            elif isinstance(stmt, Recv):
                names.add(stmt.target)
                names.update(stmt.src.free_vars())
            elif isinstance(stmt, (Print, Assert)):
                expr = stmt.value if isinstance(stmt, Print) else stmt.cond
                names.update(expr.free_vars())
        return names
