"""Corpus of MPL programs: every example from the paper plus extras.

Each entry is registered with metadata describing where in the paper it comes
from, which communication pattern it implements, and which client analysis is
expected to handle it.  The benchmark harness and the test suite both draw
from this registry.

The three headline examples:

* :data:`EXCHANGE_WITH_ROOT` — Fig. 1 / Fig. 5 (mdcask): process 0 exchanges
  a message with every other process inside a loop.
* :data:`TRANSPOSE_SQUARE` / :data:`TRANSPOSE_RECT` — Fig. 6 (NAS-CG):
  exchange with the transpose process on a square or 2:1 rectangular grid.
* :data:`SHIFT_RIGHT` — Fig. 7: 1-D nearest-neighbor shift with three
  process roles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.lang.ast import Program
from repro.lang.parser import parse


@dataclass(frozen=True)
class ProgramSpec:
    """A named corpus program with provenance metadata."""

    name: str
    source: str
    description: str
    paper_ref: str
    pattern: str
    #: which client analysis should fully resolve it:
    #: "simple" (Section VII), "cartesian" (Section VIII), or "none"
    #: (expected conservative give-up / buggy program).
    client: str = "simple"
    #: inputs consumed by ``input()`` calls, keyed by variable name the
    #: program assigns them to; values are callables of np in the interpreter
    #: helpers (kept simple here: documented in each entry).
    notes: str = ""

    def parse(self) -> Program:
        """Parse the program source."""
        return parse(self.source)


_REGISTRY: Dict[str, ProgramSpec] = {}


def register(spec: ProgramSpec) -> ProgramSpec:
    """Add a spec to the global corpus registry."""
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate program name {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ProgramSpec:
    """Look up a corpus program by name."""
    return _REGISTRY[name]


def names() -> List[str]:
    """All registered program names, sorted."""
    return sorted(_REGISTRY)


def all_specs() -> List[ProgramSpec]:
    """All registered programs, sorted by name."""
    return [_REGISTRY[name] for name in names()]


def by_client(client: str) -> List[ProgramSpec]:
    """All programs a given client analysis is expected to resolve."""
    return [spec for spec in all_specs() if spec.client == client]


# ---------------------------------------------------------------------------
# Fig. 2 — ping-pong constant propagation example
# ---------------------------------------------------------------------------

PINGPONG = register(
    ProgramSpec(
        name="pingpong",
        source="""
            if id == 0 then
                x = 5
                send x -> 1
                receive y <- 1
                print y
            elif id == 1 then
                receive y <- 0
                send y -> 0
                print y
            else
                skip
            end
        """,
        description=(
            "Processes 0 and 1 exchange a value initialized to 5 by process 0 "
            "and both print it; constant propagation must prove both prints "
            "emit 5."
        ),
        paper_ref="Fig. 2",
        pattern="pairwise-exchange",
    )
)

# ---------------------------------------------------------------------------
# Fig. 1 / Fig. 5 — mdcask exchange with root
# ---------------------------------------------------------------------------

EXCHANGE_WITH_ROOT = register(
    ProgramSpec(
        name="exchange_with_root",
        source="""
            x = 5
            if id == 0 then
                for i = 1 to np - 1 do
                    send x -> i
                    receive y <- i
                end
            else
                receive y <- 0
                send x -> 0
            end
        """,
        description=(
            "mdcask pattern: process 0 exchanges a message with every other "
            "process inside a loop. Detecting it enables the broadcast+gather "
            "collective rewrite of Fig. 1."
        ),
        paper_ref="Fig. 1 / Fig. 5",
        pattern="exchange-with-root",
    )
)

GATHER_TO_ROOT = register(
    ProgramSpec(
        name="gather_to_root",
        source="""
            x = id
            if id == 0 then
                for i = 1 to np - 1 do
                    receive y <- i
                end
            else
                send x -> 0
            end
        """,
        description="All non-root processes send one message to process 0.",
        paper_ref="Fig. 1 (first phase)",
        pattern="gather",
    )
)

BROADCAST_FANOUT = register(
    ProgramSpec(
        name="broadcast_fanout",
        source="""
            x = 7
            if id == 0 then
                for i = 1 to np - 1 do
                    send x -> i
                end
            else
                receive y <- 0
            end
        """,
        description=(
            "Fan-out broadcast: root sends one message to every other "
            "process. This is the Section IX profiling workload."
        ),
        paper_ref="Sec. IX",
        pattern="broadcast",
    )
)

SCATTER_FROM_ROOT = register(
    ProgramSpec(
        name="scatter_from_root",
        source="""
            if id == 0 then
                for i = 1 to np - 1 do
                    x = i * 10
                    send x -> i
                end
            else
                receive y <- 0
            end
        """,
        description="Scatter: root sends a distinct value to each process.",
        paper_ref="Sec. VII (scatter-gather family)",
        pattern="scatter",
    )
)

# ---------------------------------------------------------------------------
# Fig. 7 — 1-D nearest-neighbor shift (three process roles)
# ---------------------------------------------------------------------------

SHIFT_RIGHT = register(
    ProgramSpec(
        name="shift_right",
        source="""
            x = id
            if id == 0 then
                send x -> id + 1
            elif id == np - 1 then
                receive y <- id - 1
            else
                receive y <- id - 1
                send x -> id + 1
            end
        """,
        description=(
            "Shift along one mesh dimension: interior processes receive from "
            "the left and send to the right; edges only send or only receive."
        ),
        paper_ref="Fig. 7 / Fig. 8",
        pattern="shift",
    )
)

NEIGHBOR_EXCHANGE_1D = register(
    ProgramSpec(
        name="neighbor_exchange_1d",
        source="""
            x = id
            if id == 0 then
                send x -> id + 1
                receive y <- id + 1
            elif id == np - 1 then
                receive y <- id - 1
                send x -> id - 1
            else
                receive y <- id - 1
                send x -> id + 1
                receive z <- id + 1
                send x -> id - 1
            end
        """,
        description=(
            "Full 1-D nearest-neighbor exchange (both directions), the "
            "2d+1 = 3 role pattern of PDE stencils."
        ),
        paper_ref="Sec. VIII-C",
        pattern="nearest-neighbor",
    )
)

RING_SHIFT_NOWRAP = register(
    ProgramSpec(
        name="ring_shift_nowrap",
        source="""
            x = 1
            if id < np - 1 then
                send x -> id + 1
            end
            if id > 0 then
                receive y <- id - 1
            end
        """,
        description="Open-ended ring: send right, receive from left.",
        paper_ref="Fig. 7 variant",
        pattern="shift",
    )
)

# ---------------------------------------------------------------------------
# Fig. 6 — NAS-CG transpose on square and rectangular grids
# ---------------------------------------------------------------------------

TRANSPOSE_SQUARE = register(
    ProgramSpec(
        name="transpose_square",
        source="""
            nrows = input()
            ncols = input()
            assert np == ncols * nrows
            assert ncols == nrows
            x = id
            send x -> (id % nrows) * nrows + id / nrows
            receive y <- (id % nrows) * nrows + id / nrows
        """,
        description=(
            "NAS-CG transpose, square grid: each process exchanges with the "
            "process at the transposed grid location."
        ),
        paper_ref="Fig. 6 (ncols == nrows)",
        pattern="transpose",
        client="cartesian",
    )
)

TRANSPOSE_RECT = register(
    ProgramSpec(
        name="transpose_rect",
        source="""
            nrows = input()
            ncols = input()
            assert np == ncols * nrows
            assert ncols == nrows * 2
            x = id
            send x -> 2 * ((id / 2) % nrows) * nrows + (id / (2 * nrows)) * 2 + id % 2
            receive y <- 2 * ((id / 2) % nrows) * nrows + (id / (2 * nrows)) * 2 + id % 2
        """,
        description=(
            "NAS-CG transpose, rectangular grid (ncols == 2*nrows): the "
            "folded exchange formula from the CG benchmark."
        ),
        paper_ref="Fig. 6 (ncols == 2*nrows)",
        pattern="transpose",
        client="cartesian",
    )
)

# ---------------------------------------------------------------------------
# Buggy programs for the error-detection client
# ---------------------------------------------------------------------------

MESSAGE_LEAK = register(
    ProgramSpec(
        name="message_leak",
        source="""
            x = 3
            if id == 0 then
                send x -> 1
                send x -> 1
            elif id == 1 then
                receive y <- 0
            else
                skip
            end
        """,
        description=(
            "Process 0 sends two messages but process 1 receives only one: "
            "the second message is leaked (sent but never received)."
        ),
        paper_ref="Sec. I (error detection)",
        pattern="buggy",
        client="none",
        notes="expected diagnosis: message leak on the second send",
    )
)

TYPE_MISMATCH = register(
    ProgramSpec(
        name="type_mismatch",
        source="""
            x = 3
            if id == 0 then
                send x -> 1 : float
            elif id == 1 then
                receive y <- 0 : int
            else
                skip
            end
        """,
        description=(
            "Matched send/receive pair with inconsistent message types "
            "(float vs int)."
        ),
        paper_ref="Sec. I (error detection)",
        pattern="buggy",
        client="none",
        notes="expected diagnosis: type mismatch on the matched pair",
    )
)

STUCK_RECEIVE = register(
    ProgramSpec(
        name="stuck_receive",
        source="""
            if id == 0 then
                receive y <- 1
            else
                skip
            end
        """,
        description=(
            "Process 0 blocks on a receive no process ever sends to: the "
            "analysis must give up with T and the bug detector must flag the "
            "stuck receive."
        ),
        paper_ref="Sec. VI (T on unmatched communication)",
        pattern="buggy",
        client="none",
        notes="expected diagnosis: permanently blocked receive",
    )
)

RING_MODULAR = register(
    ProgramSpec(
        name="ring_modular",
        source="""
            x = id
            send x -> (id + 1) % np
            receive y <- (id + np - 1) % np
        """,
        description=(
            "True wrap-around ring using modular arithmetic. Beyond both "
            "clients' message-expression abstractions; documents the "
            "conservative give-up path (T)."
        ),
        paper_ref="Sec. X (limitations)",
        pattern="ring",
        client="none",
        notes="expected: conservative T, no unsound matching",
    )
)

# ---------------------------------------------------------------------------
# Larger compositions
# ---------------------------------------------------------------------------

MDCASK_FULL = register(
    ProgramSpec(
        name="mdcask_full",
        source="""
            x = 5
            if id == 0 then
                for i = 1 to np - 1 do
                    receive y <- i
                end
                for i = 1 to np - 1 do
                    send x -> i
                    receive y <- i
                end
            else
                send x -> 0
                receive y <- 0
                send x -> 0
            end
        """,
        description=(
            "The full Fig. 1 mdcask structure: a gather-to-root phase "
            "followed by an exchange-with-root phase."
        ),
        paper_ref="Fig. 1",
        pattern="gather+exchange-with-root",
    )
)

MASTER_WORKER = register(
    ProgramSpec(
        name="master_worker",
        source="""
            if id == 0 then
                for i = 1 to np - 1 do
                    w = i * 100
                    send w -> i
                end
                for i = 1 to np - 1 do
                    receive r <- i
                end
            else
                receive w <- 0
                r = w + 1
                send r -> 0
            end
        """,
        description=(
            "Master-worker: the master scatters work items and gathers "
            "results; two process roles."
        ),
        paper_ref="Sec. V (role example)",
        pattern="master-worker",
    )
)

PIPELINE_STAGES = register(
    ProgramSpec(
        name="pipeline_stages",
        source="""
            x = 1
            if id == 0 then
                send x -> 1
            elif id < np - 1 then
                receive y <- id - 1
                x = y + 1
                send x -> id + 1
            else
                receive y <- id - 1
                print y
            end
        """,
        description="Linear pipeline: data flows 0 -> 1 -> ... -> np-1.",
        paper_ref="shift family",
        pattern="pipeline",
    )
)

SEQUENTIAL_ONLY = register(
    ProgramSpec(
        name="sequential_only",
        source="""
            x = 2
            y = x * 3
            while y > 0 do
                y = y - 1
            end
            print y
        """,
        description="No communication at all; baseline for the framework.",
        paper_ref="-",
        pattern="none",
    )
)
