"""MPL — a Message-Passing Language matching the paper's execution model.

MPL is the source language the analysis operates on.  It captures exactly the
Section III execution model: an unbounded set of processes identified by
``id`` in ``[0 .. np-1]``, exchanging values via blocking ``send``/``receive``
operations whose communication partner is an arithmetic expression, with FIFO
per-pair channels and no wildcard receives.

Typical program::

    if id == 0 then
        for i = 1 to np - 1 do
            send x -> i
            receive y <- i
        end
    else
        receive y <- 0
        send y -> 0
    end

Public entry points:

* :func:`parse` — source text to AST (:class:`repro.lang.ast.Program`).
* :func:`build_cfg` — AST to control-flow graph (:class:`repro.lang.cfg.CFG`).
* :mod:`repro.lang.programs` — the corpus of paper examples.
"""

from repro.lang.ast import (
    Assert,
    Assign,
    BinOp,
    Compare,
    If,
    Num,
    Print,
    Program,
    Recv,
    Send,
    Skip,
    Stmt,
    Var,
    While,
)
from repro.lang.cfg import CFG, CFGNode, NodeKind, build_cfg
from repro.lang.parser import ParseError, parse

__all__ = [
    "parse",
    "ParseError",
    "build_cfg",
    "CFG",
    "CFGNode",
    "NodeKind",
    "Program",
    "Stmt",
    "Assign",
    "If",
    "While",
    "Send",
    "Recv",
    "Print",
    "Assert",
    "Skip",
    "Num",
    "Var",
    "BinOp",
    "Compare",
]
