"""Programmatic AST construction and unparsing for MPL.

The corpus generator (:mod:`repro.corpus.generator`) and the divergence
shrinker (:mod:`repro.corpus.sweep`) both manipulate programs as ASTs
rather than strings: the generator composes statement templates along its
grammar axes, and the shrinker deletes/hoists statements while preserving
well-formedness.  This module provides the two halves of that workflow:

* tiny builder functions (:func:`num`, :func:`var`, :func:`add`,
  :func:`if_`, :func:`send`, ...) that read like the grammar, and
* :func:`to_source`, an unparser whose output is guaranteed to re-parse
  to an equal AST (``parse(to_source(p)) == p``), which is what lets a
  generated or minimized program be persisted as ordinary ``.mpl`` text.

Expressions unparse through ``Expr.__str__`` (already fully
parenthesized, hence re-parseable); statements are emitted with the
``if/elif/else/end`` surface syntax the recursive-descent parser accepts.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.lang.ast import (
    Assert,
    Assign,
    BinOp,
    Compare,
    Expr,
    For,
    If,
    Num,
    Print,
    Program,
    Recv,
    Send,
    Skip,
    Stmt,
    Var,
    While,
)

ExprLike = Union[Expr, int, str]


# ---------------------------------------------------------------------------
# Expression builders
# ---------------------------------------------------------------------------


def expr(value: ExprLike) -> Expr:
    """Coerce an int (literal) or str (variable name) into an expression."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("MPL has no boolean literals; use 0/1")
    if isinstance(value, int):
        return Num(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot coerce {type(value).__name__} to an MPL expression")


def num(value: int) -> Num:
    """Integer literal."""
    return Num(value)


def var(name: str) -> Var:
    """Variable reference (``id`` and ``np`` included)."""
    return Var(name)


ID = Var("id")
NP = Var("np")


def binop(op: str, left: ExprLike, right: ExprLike) -> BinOp:
    """Binary operation over coerced operands."""
    return BinOp(op, expr(left), expr(right))


def add(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("+", left, right)


def sub(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("-", left, right)


def mul(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("*", left, right)


def div(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("/", left, right)


def mod(left: ExprLike, right: ExprLike) -> BinOp:
    return binop("%", left, right)


def cmp(op: str, left: ExprLike, right: ExprLike) -> Compare:
    """Comparison producing 0/1."""
    return Compare(op, expr(left), expr(right))


def eq(left: ExprLike, right: ExprLike) -> Compare:
    return cmp("==", left, right)


def lt(left: ExprLike, right: ExprLike) -> Compare:
    return cmp("<", left, right)


def gt(left: ExprLike, right: ExprLike) -> Compare:
    return cmp(">", left, right)


# ---------------------------------------------------------------------------
# Statement builders
# ---------------------------------------------------------------------------


def skip() -> Skip:
    return Skip()


def assign(target: str, value: ExprLike) -> Assign:
    return Assign(target, expr(value))


def if_(cond: ExprLike, then_body: Iterable[Stmt], else_body: Iterable[Stmt] = ()) -> If:
    return If(expr(cond), tuple(then_body), tuple(else_body))


def while_(cond: ExprLike, body: Iterable[Stmt]) -> While:
    return While(expr(cond), tuple(body))


def for_(loop_var: str, start: ExprLike, stop: ExprLike, body: Iterable[Stmt]) -> For:
    return For(loop_var, expr(start), expr(stop), tuple(body))


def send(value: ExprLike, dest: ExprLike, mtype: str = "int") -> Send:
    return Send(expr(value), expr(dest), mtype)


def recv(target: str, src: ExprLike, mtype: str = "int") -> Recv:
    return Recv(target, expr(src), mtype)


def print_(value: ExprLike) -> Print:
    return Print(expr(value))


def assert_(cond: ExprLike) -> Assert:
    return Assert(expr(cond))


def program(*stmts: Stmt) -> Program:
    """A whole program from top-level statements."""
    return Program(tuple(stmts))


# ---------------------------------------------------------------------------
# Unparser
# ---------------------------------------------------------------------------

_INDENT = "    "


def _emit_stmt(stmt: Stmt, depth: int, lines: list) -> None:
    pad = _INDENT * depth
    if isinstance(stmt, Skip):
        lines.append(f"{pad}skip")
    elif isinstance(stmt, Assign):
        lines.append(f"{pad}{stmt.target} = {stmt.value}")
    elif isinstance(stmt, If):
        _emit_if(stmt, depth, lines)
    elif isinstance(stmt, While):
        lines.append(f"{pad}while {stmt.cond} do")
        for inner in stmt.body:
            _emit_stmt(inner, depth + 1, lines)
        lines.append(f"{pad}end")
    elif isinstance(stmt, For):
        lines.append(f"{pad}for {stmt.var} = {stmt.start} to {stmt.stop} do")
        for inner in stmt.body:
            _emit_stmt(inner, depth + 1, lines)
        lines.append(f"{pad}end")
    elif isinstance(stmt, Send):
        suffix = f" : {stmt.mtype}" if stmt.mtype != "int" else ""
        lines.append(f"{pad}send {stmt.value} -> {stmt.dest}{suffix}")
    elif isinstance(stmt, Recv):
        suffix = f" : {stmt.mtype}" if stmt.mtype != "int" else ""
        lines.append(f"{pad}receive {stmt.target} <- {stmt.src}{suffix}")
    elif isinstance(stmt, Print):
        lines.append(f"{pad}print {stmt.value}")
    elif isinstance(stmt, Assert):
        lines.append(f"{pad}assert {stmt.cond}")
    else:
        raise TypeError(f"cannot unparse statement {type(stmt).__name__}")


def _emit_if(stmt: If, depth: int, lines: list) -> None:
    pad = _INDENT * depth
    lines.append(f"{pad}if {stmt.cond} then")
    for inner in stmt.then_body:
        _emit_stmt(inner, depth + 1, lines)
    branch = stmt
    # flatten `else (if ...)` chains into elif arms, mirroring the parser,
    # which re-nests them identically on the way back in
    while len(branch.else_body) == 1 and isinstance(branch.else_body[0], If):
        branch = branch.else_body[0]
        lines.append(f"{pad}elif {branch.cond} then")
        for inner in branch.then_body:
            _emit_stmt(inner, depth + 1, lines)
    if branch.else_body:
        lines.append(f"{pad}else")
        for inner in branch.else_body:
            _emit_stmt(inner, depth + 1, lines)
    lines.append(f"{pad}end")


def to_source(node: Union[Program, Stmt]) -> str:
    """Unparse a program (or single statement) to re-parseable MPL source."""
    lines: list = []
    if isinstance(node, Program):
        for stmt in node.body:
            _emit_stmt(stmt, 0, lines)
    else:
        _emit_stmt(node, 0, lines)
    return "\n".join(lines) + "\n"
