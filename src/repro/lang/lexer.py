"""Tokenizer for MPL source text."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

KEYWORDS = {
    "if",
    "then",
    "elif",
    "else",
    "end",
    "while",
    "do",
    "for",
    "to",
    "send",
    "receive",
    "print",
    "assert",
    "skip",
    "and",
    "or",
    "not",
    "input",
}

_TOKEN_SPEC = [
    ("NUMBER", r"\d+"),
    ("ARROW", r"->"),
    ("LARROW", r"<-"),
    ("OP", r"==|!=|<=|>=|[+\-*/%<>=():,]"),
    ("NAME", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("NEWLINE", r"\n"),
    ("SKIP", r"[ \t\r]+"),
    ("COMMENT", r"#[^\n]*"),
    ("MISMATCH", r"."),
]

_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


class LexError(ValueError):
    """Raised on an unrecognized character."""


@dataclass(frozen=True)
class Token:
    """A single lexical token with source position (1-based line)."""

    kind: str
    text: str
    line: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}"


def tokenize(source: str) -> List[Token]:
    """Split MPL source into a token list, dropping whitespace and comments.

    Newlines are not significant (statements are delimited by keywords), so
    they are discarded too; the line number is kept on each token for error
    reporting.
    """
    return list(_iter_tokens(source))


def _iter_tokens(source: str) -> Iterator[Token]:
    line = 1
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup
        text = match.group()
        if kind == "NEWLINE":
            line += 1
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "MISMATCH":
            raise LexError(f"line {line}: unexpected character {text!r}")
        if kind == "NAME" and text in KEYWORDS:
            kind = "KEYWORD"
        yield Token(kind, text, line)
