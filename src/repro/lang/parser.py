"""Recursive-descent parser for MPL.

Grammar (EBNF)::

    program  := stmt*
    stmt     := 'skip'
              | NAME '=' expr
              | 'if' expr 'then' stmt* ('elif' expr 'then' stmt*)*
                    ('else' stmt*)? 'end'
              | 'while' expr 'do' stmt* 'end'
              | 'for' NAME '=' expr 'to' expr 'do' stmt* 'end'
              | 'send' expr '->' expr (':' NAME)?
              | 'receive' NAME '<-' expr (':' NAME)?
              | 'print' expr
              | 'assert' expr
    expr     := or_expr
    or_expr  := and_expr ('or' and_expr)*
    and_expr := not_expr ('and' not_expr)*
    not_expr := 'not' not_expr | cmp_expr
    cmp_expr := add_expr (('=='|'!='|'<'|'<='|'>'|'>=') add_expr)?
    add_expr := mul_expr (('+'|'-') mul_expr)*
    mul_expr := unary (('*'|'/'|'%') unary)*
    unary    := '-' unary | atom
    atom     := NUMBER | NAME | 'input' '(' ')' | '(' expr ')'
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.ast import (
    Assert,
    Assign,
    BinOp,
    Compare,
    Expr,
    For,
    If,
    InputExpr,
    Num,
    Print,
    Program,
    Recv,
    Send,
    Skip,
    Stmt,
    UnaryOp,
    Var,
    While,
)
from repro.lang.lexer import LexError, Token, tokenize

#: untrusted-input ceilings (the analysis service parses attacker-supplied
#: source at admission; these turn resource-exhaustion inputs into clean
#: ParseErrors instead of RecursionError/MemoryError deep in a worker)
MAX_SOURCE_BYTES = 2 * 1024 * 1024
#: combined statement + expression nesting ceiling.  Kept well under
#: Python's default recursion limit: each level costs ~9 interpreter
#: frames through the precedence-climbing chain, so 75 levels stays
#: safely clear of a 1000-frame stack even inside a worker thread.
MAX_NESTING_DEPTH = 75


class ParseError(ValueError):
    """Raised on malformed MPL source."""


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0
        self._depth = 0

    def _enter(self) -> None:
        self._depth += 1
        if self._depth > MAX_NESTING_DEPTH:
            raise ParseError(
                f"program nesting exceeds {MAX_NESTING_DEPTH} levels"
            )

    def _exit(self) -> None:
        self._depth -= 1

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token is None or token.kind != kind:
            return False
        return text is None or token.text == text

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._pos += 1
        return token

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if token is None:
            wanted = text or kind
            raise ParseError(f"unexpected end of input, expected {wanted!r}")
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise ParseError(
                f"line {token.line}: expected {wanted!r}, found {token.text!r}"
            )
        return self._advance()

    # -- statements --------------------------------------------------------

    def parse_program(self, source: str) -> Program:
        body = self._parse_block(stop_words=frozenset())
        token = self._peek()
        if token is not None:
            raise ParseError(f"line {token.line}: unexpected {token.text!r}")
        return Program(tuple(body), source=source)

    def _parse_block(self, stop_words: frozenset) -> List[Stmt]:
        body: List[Stmt] = []
        while True:
            token = self._peek()
            if token is None:
                if stop_words:
                    raise ParseError("unexpected end of input inside block")
                return body
            if token.kind == "KEYWORD" and token.text in stop_words:
                return body
            body.append(self._parse_stmt())

    def _parse_stmt(self) -> Stmt:
        token = self._peek()
        assert token is not None
        self._enter()
        try:
            if token.kind == "KEYWORD":
                handler = {
                    "skip": self._parse_skip,
                    "if": self._parse_if,
                    "while": self._parse_while,
                    "for": self._parse_for,
                    "send": self._parse_send,
                    "receive": self._parse_recv,
                    "print": self._parse_print,
                    "assert": self._parse_assert,
                }.get(token.text)
                if handler is None:
                    raise ParseError(
                        f"line {token.line}: unexpected keyword {token.text!r}"
                    )
                return handler()
            if token.kind == "NAME":
                return self._parse_assign()
            raise ParseError(f"line {token.line}: unexpected {token.text!r}")
        finally:
            self._exit()

    def _parse_skip(self) -> Stmt:
        self._expect("KEYWORD", "skip")
        return Skip()

    def _parse_assign(self) -> Stmt:
        name = self._expect("NAME").text
        self._expect("OP", "=")
        return Assign(name, self._parse_expr())

    def _parse_if(self) -> Stmt:
        self._expect("KEYWORD", "if")
        cond = self._parse_expr()
        self._expect("KEYWORD", "then")
        then_body = self._parse_block(frozenset({"elif", "else", "end"}))
        token = self._peek()
        assert token is not None
        if token.text == "elif":
            self._advance()
            # Re-parse the elif chain as a nested if in the else branch.
            nested = self._parse_if_tail()
            return If(cond, tuple(then_body), (nested,))
        if token.text == "else":
            self._advance()
            else_body = self._parse_block(frozenset({"end"}))
            self._expect("KEYWORD", "end")
            return If(cond, tuple(then_body), tuple(else_body))
        self._expect("KEYWORD", "end")
        return If(cond, tuple(then_body))

    def _parse_if_tail(self) -> Stmt:
        """Parse the remainder of an ``elif`` chain (cond already consumed up
        to the ``elif`` keyword); shares the final ``end`` with the chain."""
        cond = self._parse_expr()
        self._expect("KEYWORD", "then")
        then_body = self._parse_block(frozenset({"elif", "else", "end"}))
        token = self._peek()
        assert token is not None
        if token.text == "elif":
            self._advance()
            nested = self._parse_if_tail()
            return If(cond, tuple(then_body), (nested,))
        if token.text == "else":
            self._advance()
            else_body = self._parse_block(frozenset({"end"}))
            self._expect("KEYWORD", "end")
            return If(cond, tuple(then_body), tuple(else_body))
        self._expect("KEYWORD", "end")
        return If(cond, tuple(then_body))

    def _parse_while(self) -> Stmt:
        self._expect("KEYWORD", "while")
        cond = self._parse_expr()
        self._expect("KEYWORD", "do")
        body = self._parse_block(frozenset({"end"}))
        self._expect("KEYWORD", "end")
        return While(cond, tuple(body))

    def _parse_for(self) -> Stmt:
        self._expect("KEYWORD", "for")
        var = self._expect("NAME").text
        self._expect("OP", "=")
        start = self._parse_expr()
        self._expect("KEYWORD", "to")
        stop = self._parse_expr()
        self._expect("KEYWORD", "do")
        body = self._parse_block(frozenset({"end"}))
        self._expect("KEYWORD", "end")
        return For(var, start, stop, tuple(body))

    def _parse_send(self) -> Stmt:
        self._expect("KEYWORD", "send")
        value = self._parse_expr()
        self._expect("ARROW")
        dest = self._parse_expr()
        mtype = self._parse_mtype()
        return Send(value, dest, mtype)

    def _parse_recv(self) -> Stmt:
        self._expect("KEYWORD", "receive")
        target = self._expect("NAME").text
        self._expect("LARROW")
        src = self._parse_expr()
        mtype = self._parse_mtype()
        return Recv(target, src, mtype)

    def _parse_mtype(self) -> str:
        if self._at("OP", ":"):
            self._advance()
            return self._expect("NAME").text
        return "int"

    def _parse_print(self) -> Stmt:
        self._expect("KEYWORD", "print")
        return Print(self._parse_expr())

    def _parse_assert(self) -> Stmt:
        self._expect("KEYWORD", "assert")
        return Assert(self._parse_expr())

    # -- expressions (precedence climbing) ----------------------------------

    def _parse_expr(self) -> Expr:
        self._enter()
        try:
            return self._parse_or()
        finally:
            self._exit()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._at("KEYWORD", "or"):
            self._advance()
            left = BinOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._at("KEYWORD", "and"):
            self._advance()
            left = BinOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> Expr:
        if self._at("KEYWORD", "not"):
            self._advance()
            self._enter()
            try:
                return UnaryOp("not", self._parse_not())
            finally:
                self._exit()
        return self._parse_cmp()

    def _parse_cmp(self) -> Expr:
        left = self._parse_add()
        token = self._peek()
        if token is not None and token.kind == "OP" and token.text in (
            "==",
            "!=",
            "<",
            "<=",
            ">",
            ">=",
        ):
            op = self._advance().text
            return Compare(op, left, self._parse_add())
        return left

    def _parse_add(self) -> Expr:
        left = self._parse_mul()
        while self._at("OP", "+") or self._at("OP", "-"):
            op = self._advance().text
            left = BinOp(op, left, self._parse_mul())
        return left

    def _parse_mul(self) -> Expr:
        left = self._parse_unary()
        while self._at("OP", "*") or self._at("OP", "/") or self._at("OP", "%"):
            op = self._advance().text
            left = BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> Expr:
        if self._at("OP", "-"):
            self._advance()
            self._enter()
            try:
                operand = self._parse_unary()
            finally:
                self._exit()
            if isinstance(operand, Num):
                return Num(-operand.value)
            return UnaryOp("-", operand)
        return self._parse_atom()

    def _parse_atom(self) -> Expr:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in expression")
        if token.kind == "NUMBER":
            self._advance()
            return Num(int(token.text))
        if token.kind == "KEYWORD" and token.text == "input":
            self._advance()
            self._expect("OP", "(")
            self._expect("OP", ")")
            return InputExpr()
        if token.kind == "NAME":
            self._advance()
            return Var(token.text)
        if token.kind == "OP" and token.text == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect("OP", ")")
            return inner
        raise ParseError(f"line {token.line}: unexpected {token.text!r} in expression")


def parse(source: str) -> Program:
    """Parse MPL source text into a :class:`~repro.lang.ast.Program`.

    Total over untrusted input: every malformed-source failure mode —
    lexer errors included — surfaces as :class:`ParseError` (callers like
    the analysis service map that to a structured 400), and oversized or
    pathologically nested sources are rejected by explicit ceilings
    before they can exhaust the stack or the heap.
    """
    if len(source) > MAX_SOURCE_BYTES:
        raise ParseError(
            f"program too large: {len(source)} bytes > {MAX_SOURCE_BYTES}"
        )
    try:
        tokens = tokenize(source)
    except LexError as exc:
        raise ParseError(str(exc)) from exc
    try:
        return _Parser(tokens).parse_program(source)
    except RecursionError:  # belt over the explicit depth guard
        raise ParseError(
            f"program nesting exceeds {MAX_NESTING_DEPTH} levels"
        ) from None


def parse_expr(source: str) -> Expr:
    """Parse a single MPL expression (handy in tests and the REPL)."""
    parser = _Parser(tokenize(source))
    expr = parser._parse_expr()
    leftover = parser._peek()
    if leftover is not None:
        raise ParseError(f"line {leftover.line}: trailing {leftover.text!r}")
    return expr
