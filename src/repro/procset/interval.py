"""Symbolic ranges ``[lb..ub]`` with equivalence-set bounds."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.expr.linear import LinearExpr


class Order:
    """Oracle interface for comparing symbolic bounds.

    The client analysis' constraint graph satisfies this protocol; a trivial
    implementation that only decides comparisons between syntactically
    comparable expressions is provided for tests.
    """

    def entails_leq(self, lhs: LinearExpr, rhs: LinearExpr) -> Optional[bool]:
        """True / False when provable either way, None when unknown."""
        delta = lhs - rhs
        constant = delta.as_constant()
        if constant is None:
            return None
        return constant <= 0


class Bound:
    """A range bound: a non-empty set of provably-equal affine expressions."""

    __slots__ = ("_exprs",)

    def __init__(self, exprs: Iterable[LinearExpr]):
        frozen = frozenset(exprs)
        if not frozen:
            raise ValueError("a bound needs at least one expression")
        self._exprs = frozen

    @classmethod
    def of(cls, expr) -> "Bound":
        """Bound from a single int / str / LinearExpr."""
        return cls({LinearExpr.coerce(expr)})

    @property
    def exprs(self) -> FrozenSet[LinearExpr]:
        """All equivalent expressions of this bound."""
        return self._exprs

    def canonical(self) -> LinearExpr:
        """A deterministic representative (constants first, then shortest)."""
        def key(expr: LinearExpr) -> Tuple:
            return (0 if expr.is_constant() else 1, len(expr.coeffs), str(expr))

        return min(self._exprs, key=key)

    def shift(self, delta: int) -> "Bound":
        """Add an integer to every representative."""
        return Bound({expr + delta for expr in self._exprs})

    def translate(self, delta: LinearExpr) -> "Bound":
        """Add a symbolic (process-uniform) offset to every representative."""
        return Bound({expr + delta for expr in self._exprs})

    def widen_with(self, other: "Bound") -> Optional["Bound"]:
        """Equivalence-set intersection; None when nothing is common.

        This is the paper's widening on process-set bounds: only the
        expressions valid in both states survive.
        """
        common = self._exprs & other._exprs
        return Bound(common) if common else None

    def union_with(self, other: "Bound") -> "Bound":
        """Union of equivalence sets (both describe the same value)."""
        return Bound(self._exprs | other._exprs)

    def mentions(self, name: str) -> bool:
        """True iff any representative mentions the variable."""
        return any(expr.mentions(name) for expr in self._exprs)

    def substitute(self, bindings) -> "Bound":
        """Substitute variables in every representative."""
        return Bound({expr.substitute(bindings) for expr in self._exprs})

    # -- comparisons via an oracle ------------------------------------------

    def leq(self, other: "Bound", order: Order) -> Optional[bool]:
        """Three-valued ``self <= other`` using any representative pair."""
        unknown = True
        for mine in self._exprs:
            for theirs in other._exprs:
                verdict = order.entails_leq(mine, theirs)
                if verdict is not None:
                    return verdict
        return None if unknown else None

    def eq(self, other: "Bound", order: Order) -> Optional[bool]:
        """Three-valued ``self == other``."""
        if self._exprs & other._exprs:
            return True
        forward = self.leq(other, order)
        backward = other.leq(self, order)
        if forward is True and backward is True:
            return True
        if forward is False or backward is False:
            return False
        return None

    def lt(self, other: "Bound", order: Order) -> Optional[bool]:
        """Three-valued ``self < other``."""
        verdict = self.shift(1).leq(other, order)
        return verdict

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bound):
            return NotImplemented
        return self._exprs == other._exprs

    def __hash__(self) -> int:
        return hash(self._exprs)

    def __str__(self) -> str:
        return str(self.canonical())

    def __repr__(self) -> str:
        names = ", ".join(sorted(str(e) for e in self._exprs))
        return f"Bound({names})"


@dataclass(frozen=True)
class SymRange:
    """A contiguous symbolic range ``[lb..ub]`` of process ranks."""

    lb: Bound
    ub: Bound

    @classmethod
    def make(cls, lb, ub) -> "SymRange":
        """Range from int/str/LinearExpr bounds."""
        return cls(Bound.of(lb), Bound.of(ub))

    @classmethod
    def point(cls, expr) -> "SymRange":
        """The singleton range ``[e..e]``."""
        bound = Bound.of(expr)
        return cls(bound, bound)

    # -- queries --------------------------------------------------------------

    def is_empty(self, order: Order) -> Optional[bool]:
        """Three-valued emptiness: ``lb > ub``?"""
        verdict = self.lb.leq(self.ub, order)
        if verdict is None:
            return None
        return not verdict

    def is_singleton(self, order: Order) -> Optional[bool]:
        """Three-valued ``lb == ub``?"""
        return self.lb.eq(self.ub, order)

    def contains_expr(self, expr: LinearExpr, order: Order) -> Optional[bool]:
        """Three-valued membership of a symbolic rank."""
        point = Bound.of(expr)
        low = self.lb.leq(point, order)
        high = point.leq(self.ub, order)
        if low is True and high is True:
            return True
        if low is False or high is False:
            return False
        return None

    def size(self) -> Optional[LinearExpr]:
        """``ub - lb + 1`` using canonical representatives."""
        return self.ub.canonical() - self.lb.canonical() + 1

    # -- transforms -------------------------------------------------------------

    def shift(self, delta: int) -> "SymRange":
        """The range translated by an integer."""
        return SymRange(self.lb.shift(delta), self.ub.shift(delta))

    def translate(self, delta: LinearExpr) -> "SymRange":
        """The range translated by a symbolic (process-uniform) offset."""
        return SymRange(self.lb.translate(delta), self.ub.translate(delta))

    def substitute(self, bindings) -> "SymRange":
        """Substitute variables in both bounds."""
        return SymRange(self.lb.substitute(bindings), self.ub.substitute(bindings))

    def widen_with(self, other: "SymRange") -> Optional["SymRange"]:
        """Pairwise bound widening; None when either bound loses all forms."""
        lb = self.lb.widen_with(other.lb)
        ub = self.ub.widen_with(other.ub)
        if lb is None or ub is None:
            return None
        return SymRange(lb, ub)

    def intersect(self, other: "SymRange", order: Order) -> Optional["SymRange"]:
        """Exact intersection, or None when bounds are incomparable."""
        if self.lb.leq(other.lb, order) is True:
            lb = other.lb
        elif other.lb.leq(self.lb, order) is True:
            lb = self.lb
        else:
            return None
        if self.ub.leq(other.ub, order) is True:
            ub = self.ub
        elif other.ub.leq(self.ub, order) is True:
            ub = other.ub
        else:
            return None
        return SymRange(lb, ub)

    def difference(
        self, other: "SymRange", order: Order
    ) -> Optional[List["SymRange"]]:
        """Exact set difference ``self - other``.

        Returns up to two ranges (possibly empty ones, which callers filter
        via :meth:`is_empty`), or None when the bound order cannot be
        established — the caller must then give up (exactness requirement).
        """
        overlap = self.intersect(other, order)
        if overlap is None:
            return None
        if overlap.is_empty(order) is True:
            return [self]
        pieces: List[SymRange] = []
        # left remainder [self.lb .. overlap.lb-1]
        left_exists = self.lb.lt(overlap.lb, order)
        if left_exists is None:
            # lb comparison itself decided during intersect; equal bounds
            # mean no left piece
            if self.lb.eq(overlap.lb, order) is True:
                left_exists = False
            else:
                return None
        if left_exists:
            pieces.append(SymRange(self.lb, overlap.lb.shift(-1)))
        # right remainder [overlap.ub+1 .. self.ub]
        right_exists = overlap.ub.lt(self.ub, order)
        if right_exists is None:
            if self.ub.eq(overlap.ub, order) is True:
                right_exists = False
            else:
                return None
        if right_exists:
            pieces.append(SymRange(overlap.ub.shift(1), self.ub))
        return pieces

    def enumerate(self, env) -> List[int]:
        """Concrete members under a total variable assignment (for tests)."""
        low = self.lb.canonical().evaluate(env)
        high = self.ub.canonical().evaluate(env)
        return list(range(low, high + 1))

    def __str__(self) -> str:
        return f"[{self.lb}..{self.ub}]"


class ProcSet:
    """A union of disjoint symbolic ranges (bounded fan-out).

    Most corpus patterns need a single range; two-sided splits (removing a
    middle element) produce short unions.  Ranges are kept in the order the
    oracle can prove; adjacent ranges are coalesced when provably contiguous.
    """

    MAX_RANGES = 6

    def __init__(self, ranges: Sequence[SymRange]):
        self._ranges: Tuple[SymRange, ...] = tuple(ranges)

    @classmethod
    def range(cls, lb, ub) -> "ProcSet":
        """Single-range process set."""
        return cls([SymRange.make(lb, ub)])

    @classmethod
    def point(cls, expr) -> "ProcSet":
        """Singleton process set."""
        return cls([SymRange.point(expr)])

    @classmethod
    def empty(cls) -> "ProcSet":
        """The empty process set."""
        return cls([])

    @property
    def ranges(self) -> Tuple[SymRange, ...]:
        """The component ranges."""
        return self._ranges

    def is_empty(self, order: Order) -> Optional[bool]:
        """Three-valued emptiness of the whole union."""
        any_unknown = False
        for rng in self._ranges:
            verdict = rng.is_empty(order)
            if verdict is False:
                return False
            if verdict is None:
                any_unknown = True
        return None if any_unknown else True

    def prune_empty(self, order: Order) -> "ProcSet":
        """Drop provably-empty component ranges."""
        return ProcSet([r for r in self._ranges if r.is_empty(order) is not True])

    def single_range(self) -> Optional[SymRange]:
        """The sole component when the union has exactly one range."""
        return self._ranges[0] if len(self._ranges) == 1 else None

    def shift(self, delta: int) -> "ProcSet":
        """Translate all ranges by an integer."""
        return ProcSet([r.shift(delta) for r in self._ranges])

    def translate(self, delta: LinearExpr) -> "ProcSet":
        """Translate all ranges by a symbolic (process-uniform) offset."""
        return ProcSet([r.translate(delta) for r in self._ranges])

    def substitute(self, bindings) -> "ProcSet":
        """Substitute variables in all bounds."""
        return ProcSet([r.substitute(bindings) for r in self._ranges])

    def union_with(self, other: "ProcSet", order: Order) -> "ProcSet":
        """Concatenate and coalesce provably-adjacent ranges."""
        merged = list(self._ranges) + list(other._ranges)
        changed = True
        while changed and len(merged) > 1:
            changed = False
            for i in range(len(merged)):
                for j in range(len(merged)):
                    if i == j:
                        continue
                    a, b = merged[i], merged[j]
                    # a directly precedes b:  a.ub + 1 == b.lb
                    if a.ub.shift(1).eq(b.lb, order) is True:
                        coalesced = SymRange(a.lb, b.ub)
                        rest = [merged[k] for k in range(len(merged)) if k not in (i, j)]
                        merged = rest + [coalesced]
                        changed = True
                        break
                if changed:
                    break
        if len(merged) > self.MAX_RANGES:
            raise OverflowError(
                f"process-set union exceeds {self.MAX_RANGES} ranges"
            )
        return ProcSet(merged)

    def widen_with(self, other: "ProcSet") -> Optional["ProcSet"]:
        """Positional range widening; None on shape mismatch or lost bounds."""
        if len(self._ranges) != len(other._ranges):
            return None
        widened = []
        for mine, theirs in zip(self._ranges, other._ranges):
            result = mine.widen_with(theirs)
            if result is None:
                return None
            widened.append(result)
        return ProcSet(widened)

    def enumerate(self, env) -> List[int]:
        """Concrete members under a total assignment (for tests)."""
        members: List[int] = []
        for rng in self._ranges:
            members.extend(rng.enumerate(env))
        return sorted(set(members))

    def __str__(self) -> str:
        if not self._ranges:
            return "{}"
        return " u ".join(str(r) for r in self._ranges)

    def __repr__(self) -> str:
        return f"ProcSet({self})"
