"""Symbolic process-set abstraction.

Section VII-B of the paper represents sets of processes as bounded ranges
``[lb..ub]`` whose bounds are *sets of expressions* they are provably equal
to (e.g. the bound ``1`` is also ``i`` when the state analysis knows
``i == 1``).  Keeping the whole equivalence set is what makes loop widening
work: after one iteration of the Fig. 5 loop the concrete bounds change, but
the symbolic forms in terms of the loop counter are stable and survive the
equivalence-set intersection.

All order comparisons between bounds are delegated to an :class:`Order`
oracle — in practice the client analysis' constraint graph.
"""

from repro.procset.interval import Bound, Order, ProcSet, SymRange

__all__ = ["Bound", "SymRange", "ProcSet", "Order"]
