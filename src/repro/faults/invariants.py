"""Soundness-under-fault invariant harness.

One seeded fault schedule (:class:`~repro.faults.plane.FaultSchedule`)
plus one generated program set, driven through a real slice of the
pipeline (HTTP server → daemon → driver → sharded engine → checkpoint
→ journal → cache), with every answer machine-checked against the
invariants the service claims to hold *under faults*:

``service-answers``
    Every submitted job completes (no hang, no crash) and every answer
    is *exact-or-accounted*: either a clean result, or a degraded /
    partial / gave-up result that carries a diagnostic naming what was
    lost.  A silent wrong answer is the one unforgivable outcome.
``soundness``
    For exact/partial answers the dynamic-trace oracle
    (:func:`repro.corpus.sweep.differential_check`) re-derives the true
    match set and confirms the faulted static answer is still a sound
    superset.  ``gave_up`` answers are under-approximations by contract
    — for those the invariant is the *accounting*, not the superset.
``journal-replay``
    A second service started on the same state directory replays the
    journal to a consistent view: no pending work left behind by a
    drained daemon, replay itself total (torn tails dropped, never
    fatal).
``cache-integrity``
    Every on-disk cache entry parses, checksums, and is non-degraded —
    a fault may evict cache entries, never poison them.
``http-hardening``
    Oversized bodies, malformed JSON, lexer garbage, and pathologically
    nested programs each get a *structured 4xx* and none of them trips
    the circuit breaker (client bugs must not look like rung failures).
``metrics-scrape``
    Scraping ``/metrics`` while the plane injects render failures always
    answers 200 with parseable Prometheus text (the fallback exposition
    at worst) and leaves the daemon healthy — telemetry must never take
    down the service it watches.

Each case is a fresh state directory and a fresh fault plane, so any
failure reproduces from ``REPRO_FAULT_SEED=<base>:<case>`` alone.  The
sweep report additionally merges fault-point coverage across cases and
lists catalog points that never fired — an injection point nobody can
reach is a fault model lying about its own surface.
"""

from __future__ import annotations

import http.client
import json
import queue
import threading
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.faults import plane
from repro.faults.plane import CATALOG, FaultSchedule

#: per-case wall-clock ceiling on any single job wait; a case that
#: cannot answer inside this is reported as a hang (invariant breach),
#: not waited out
WAIT_SEC = 20.0

#: programs driven through the service per case (distinct corpus seeds)
PROGRAMS_PER_CASE = 2

#: fault points exercised through the sharded-engine channel rather
#: than the single-process inline service
SHARD_POINTS = frozenset({"shard.boundary.corrupt", "shard.worker.kill"})

#: fault points exercised through a real HTTP round-trip
HTTP_POINTS = frozenset({"http.client.disconnect"})

#: fault points living in the /metrics exposition path — exercised by
#: scraping a live server while the plane is armed
METRICS_POINTS = frozenset({"metrics.render.fail"})

#: fault points living under the engine's checkpointer — only reachable
#: through a run that actually writes snapshots
CKPT_POINTS = frozenset({
    "ckpt.write.enospc", "ckpt.write.eio", "ckpt.write.torn", "ckpt.write.crash",
})


@dataclass
class CaseResult:
    """Verdict for one (seed, case) cell of the sweep matrix."""

    case: int
    label: str
    focus: str
    channel: str  # "service" | "shard" | "http" | "ckpt" | "metrics"
    ok: bool = True
    violations: List[str] = field(default_factory=list)
    coverage: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def fail(self, invariant: str, detail: str) -> None:
        self.ok = False
        self.violations.append(f"{invariant}: {detail}")

    def to_json(self) -> dict:
        return {
            "case": self.case,
            "label": self.label,
            "focus": self.focus,
            "channel": self.channel,
            "ok": self.ok,
            "violations": self.violations,
        }


@dataclass
class SweepReport:
    """Aggregate of a whole invariant sweep."""

    base_seed: int
    cases: List[CaseResult] = field(default_factory=list)

    @property
    def failures(self) -> List[CaseResult]:
        return [case for case in self.cases if not case.ok]

    def merged_coverage(self) -> Dict[str, Dict[str, int]]:
        merged = {name: {"hits": 0, "fired": 0} for name in CATALOG}
        for case in self.cases:
            for name, cell in case.coverage.items():
                if name in merged:
                    merged[name]["hits"] += cell.get("hits", 0)
                    merged[name]["fired"] += cell.get("fired", 0)
        return merged

    def unexercised(self) -> List[str]:
        return [
            name for name, cell in self.merged_coverage().items()
            if cell["fired"] == 0
        ]

    def summary(self) -> dict:
        return {
            "base_seed": self.base_seed,
            "cases": len(self.cases),
            "failures": len(self.failures),
            "replay": [
                f"REPRO_FAULT_SEED={case.label}" for case in self.failures
            ],
            "unexercised_points": self.unexercised(),
            "coverage": self.merged_coverage(),
        }


def _generated_programs(rng_seed: int) -> List[object]:
    from repro.corpus.generator import generate, seed_stream

    return [generate(seed) for seed in seed_stream(rng_seed, PROGRAMS_PER_CASE)]


def _check_answer(result: Optional[dict], generated, case: CaseResult) -> None:
    """The exact-or-accounted + soundness invariants for one answer."""
    from repro.core import diagnostics
    from repro.corpus.sweep import differential_check

    if result is None:
        case.fail("service-answers", f"{generated.corpus_id}: job never completed")
        return
    if "error" in result and "confidence" not in result:
        # a terminal error document is accounted by construction (it
        # names its reason) but only acceptable when it says *degraded*
        if "degraded" not in str(result.get("error", "")):
            case.fail(
                "service-answers",
                f"{generated.corpus_id}: bare error answer {result['error']!r}",
            )
        return
    confidence = result.get("confidence")
    degraded = result.get("degraded")
    service_diags = result.get("service_diagnostics", [])
    diags = result.get("diagnostics", [])
    if confidence not in (diagnostics.EXACT, diagnostics.PARTIAL, diagnostics.GAVE_UP):
        case.fail(
            "service-answers",
            f"{generated.corpus_id}: unknown confidence {confidence!r}",
        )
        return
    # accounting can live at any layer: the final result's diagnostics,
    # the service's own notes, the degraded marker, or the ladder's rung
    # log (a terminal mpi-cfg answer is partial *by construction* — the
    # earlier rungs' GIVEUP diagnostics are its accounting)
    rung_diags = any(r.get("diagnostics") for r in result.get("rungs", []))
    accounted = bool(diags) or bool(service_diags) or bool(degraded) or rung_diags
    if confidence != diagnostics.EXACT and not accounted:
        case.fail(
            "service-answers",
            f"{generated.corpus_id}: {confidence} answer with no diagnostic",
        )
    if confidence == diagnostics.GAVE_UP:
        # under-approximation by contract; accounting is the invariant
        return
    claimed = {tuple(pair) for pair in result.get("matches", [])}
    np_values = tuple(generated.np_values) or (2,)
    try:
        _, _, divergences = differential_check(
            generated.parse(), claimed, np_values
        )
    except Exception as exc:  # oracle must be total on generated programs
        case.fail("soundness", f"{generated.corpus_id}: oracle error {exc}")
        return
    if divergences:
        case.fail(
            "soundness",
            f"{generated.corpus_id}: faulted {confidence} answer misses "
            f"{sum(len(d.missing_edges) for d in divergences)} dynamic match(es)",
        )


def _check_cache_integrity(state_dir: Path, case: CaseResult) -> None:
    from repro.serve.cache import ENTRY_FORMAT, entry_checksum

    cache_dir = state_dir / "cache"
    if not cache_dir.is_dir():
        return
    for path in sorted(cache_dir.glob("*.json")):
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            case.fail("cache-integrity", f"{path.name}: unreadable ({exc})")
            continue
        if not isinstance(entry, dict) or entry.get("format") != ENTRY_FORMAT:
            case.fail("cache-integrity", f"{path.name}: wrong shape/format")
            continue
        if entry.get("checksum") != entry_checksum(entry):
            case.fail("cache-integrity", f"{path.name}: checksum mismatch")
            continue
        if entry.get("result", {}).get("degraded"):
            case.fail("cache-integrity", f"{path.name}: degraded entry cached")


def _service_config(state_dir: Path):
    from repro.serve.daemon import RetryPolicy, ServiceConfig

    return ServiceConfig(
        state_dir=state_dir,
        workers=1,
        isolation="inline",
        queue_size=8,
        retry=RetryPolicy(max_retries=1, backoff_base_sec=0.01, backoff_cap_sec=0.05),
        breaker_threshold=1000,  # hardening checks assert it stays closed
    )


def _run_service_case(state_dir: Path, programs, case: CaseResult) -> None:
    """Inline service channel: submit, wait, check, then replay."""
    from repro.serve.daemon import AnalysisService, AnalyzeRequest

    service = AnalysisService(_service_config(state_dir))
    service.start()
    answers = []
    try:
        for generated in programs:
            request = AnalyzeRequest(program=generated.source, deadline_sec=10.0)
            try:
                status, payload = service.submit(request)
            except Exception as exc:
                case.fail("service-answers", f"submit raised {exc!r}")
                continue
            if status == "rejected":
                case.fail(
                    "service-answers",
                    f"{generated.corpus_id}: generated program rejected: {payload}",
                )
            elif status == "shed":
                # admission under injected queue overflow: a structured
                # refusal is a correct, accounted answer
                continue
            elif status == "hit":
                answers.append((generated, payload))
            else:
                job = payload
                if not job.wait(WAIT_SEC):
                    case.fail(
                        "service-answers",
                        f"{generated.corpus_id}: no answer within {WAIT_SEC}s",
                    )
                    continue
                answers.append((generated, job.result))
    finally:
        service.drain(timeout=WAIT_SEC)
        service.stop()
    for generated, result in answers:
        _check_answer(result, generated, case)
    _reload_cache(state_dir, case)
    _check_cache_integrity(state_dir, case)
    _check_replay(state_dir, case)


def _reload_cache(state_dir: Path, case: CaseResult) -> None:
    """Re-index the on-disk cache with the fault plane still armed —
    the only moment ``cache.read.corrupt`` is reachable (a live service
    serves hot entries from memory).  A corrupt read must surface as an
    eviction, never as a served entry."""
    from repro.serve.cache import ResultCache

    cache_dir = state_dir / "cache"
    if not cache_dir.is_dir():
        return
    try:
        ResultCache(cache_dir)
    except Exception as exc:
        case.fail("cache-integrity", f"cache re-index raised {exc!r}")


def _check_replay(state_dir: Path, case: CaseResult) -> None:
    """Journal replay must converge: restart on the same state dir,
    observe no pending work after the drained first life."""
    from repro.serve.daemon import AnalysisService
    from repro.serve.journal import JobJournal

    # replay outside any fault plane: recovery itself must be total on
    # whatever bytes the faulted life left behind.  Capture coverage
    # first — uninstalling discards the active plane's counters.
    active = plane.active()
    if active is not None:
        case.coverage = active.coverage()
    plane.uninstall()
    try:
        pending, _done = JobJournal(state_dir / "journal.jsonl").fold()
        replayer = AnalysisService(_service_config(state_dir))
        try:
            replayer.start()
            for job_id in pending:
                job = replayer.get_job(job_id)
                if job is not None and not job.wait(WAIT_SEC):
                    case.fail("journal-replay", f"replayed job {job_id} hung")
            replayer.drain(timeout=WAIT_SEC)
        finally:
            replayer.stop()
        still_pending, _ = JobJournal(state_dir / "journal.jsonl").fold()
        if still_pending:
            case.fail(
                "journal-replay",
                f"{len(still_pending)} job(s) still pending after replay",
            )
    except Exception as exc:
        case.fail("journal-replay", f"recovery raised {exc!r}")


def _run_shard_case(state_dir: Path, programs, case: CaseResult) -> None:
    """Sharded-engine channel: the fault points that live in the
    multi-process fixpoint need a ShardedEngine run to be reachable.

    The reference here is the *serial engine*, not the dynamic oracle:
    a bare engine+client answer may legitimately under-approximate
    (GIVEUP_NO_MATCH — the driver ladder's mpi-cfg rung is what restores
    the superset guarantee), so the shard invariant is the equivalence
    gate — a faulted sharded run either reproduces the serial answer
    exactly, or gives up with the loss accounted in a diagnostic."""
    from repro.analyses.simple_symbolic import SimpleSymbolicClient
    from repro.core.engine import EngineLimits, PCFGEngine
    from repro.core.shard import ShardedEngine
    from repro.lang.cfg import build_cfg

    generated = programs[0]
    limits = EngineLimits(deadline_sec=WAIT_SEC)
    try:
        result = ShardedEngine(
            build_cfg(generated.parse()),
            SimpleSymbolicClient(),
            limits,
            jobs=2,
        ).run()
    except Exception as exc:
        case.fail("service-answers", f"sharded run raised {exc!r}")
        return
    accounted = bool(result.diagnostics)
    # serial reference run: touches no instrumented boundary (no
    # checkpointer, no workers), so the live plane cannot perturb it
    serial = PCFGEngine(
        build_cfg(generated.parse()), SimpleSymbolicClient(), limits
    ).run()
    if set(result.matches) == set(serial.matches):
        return
    if not accounted:
        case.fail(
            "soundness",
            f"{generated.corpus_id}: faulted sharded answer diverges from "
            "serial with no diagnostic accounting for the loss",
        )
    elif not result.gave_up:
        case.fail(
            "soundness",
            f"{generated.corpus_id}: faulted sharded {result.confidence} "
            f"answer differs from serial "
            f"(missing {len(set(serial.matches) - set(result.matches))}, "
            f"extra {len(set(result.matches) - set(serial.matches))}) "
            "without giving up",
        )


def _run_ckpt_case(state_dir: Path, programs, case: CaseResult) -> None:
    """Checkpointer channel: an engine run writing a snapshot every step
    while the disk fails underneath it.  The invariants are the atomic-
    write contract itself: the run survives (CHECKPOINT_IO is a
    diagnostic, never an abort), no orphan temp file is stranded, and
    whatever checkpoint file exists is complete valid JSON — old or new,
    never torn."""
    from repro.analyses.simple_symbolic import SimpleSymbolicClient
    from repro.core import diagnostics
    from repro.core.checkpoint import Checkpointer
    from repro.core.engine import EngineLimits, PCFGEngine
    from repro.lang.cfg import build_cfg

    generated = programs[0]
    ckpt_dir = state_dir / "ckpt"
    try:
        result = PCFGEngine(
            build_cfg(generated.parse()),
            SimpleSymbolicClient(),
            EngineLimits(deadline_sec=WAIT_SEC),
            checkpointer=Checkpointer(ckpt_dir, name="fault-case", every_steps=1),
        ).run()
    except Exception as exc:
        case.fail("service-answers", f"checkpointed run raised {exc!r}")
        return
    if result.confidence not in (diagnostics.EXACT, diagnostics.PARTIAL):
        if not result.diagnostics:
            case.fail(
                "service-answers",
                f"{generated.corpus_id}: {result.confidence} with no diagnostic",
            )
    orphans = list(ckpt_dir.glob("*.tmp*")) if ckpt_dir.is_dir() else []
    if orphans:
        case.fail(
            "cache-integrity",
            f"orphan temp file(s) after failed write: "
            f"{[p.name for p in orphans]}",
        )
    for path in sorted(ckpt_dir.glob("*.ckpt.json")) if ckpt_dir.is_dir() else []:
        try:
            json.loads(path.read_text(encoding="utf-8"))
        except ValueError:
            case.fail(
                "cache-integrity",
                f"{path.name}: torn checkpoint visible at the final name",
            )


#: a schedule can tear several consecutive responses (hit + count); any
#: single client retry past that window must see a clean one
_HTTP_TRIES = 4


def _http_get(base: str, path: str, timeout: float = WAIT_SEC):
    """GET returning (status, document); (0, {}) only if every attempt
    was torn by an injected disconnect."""
    for _ in range(_HTTP_TRIES):
        try:
            with urllib.request.urlopen(base + path, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            body_doc = _error_body(exc)
            if body_doc is None:
                continue  # error body itself torn mid-send
            return exc.code, body_doc
        except (OSError, http.client.HTTPException):
            continue
    return 0, {}


def _error_body(exc: urllib.error.HTTPError) -> Optional[dict]:
    """The JSON body of an HTTP error response, or None if the injected
    disconnect tore the body off mid-send (IncompleteRead)."""
    try:
        return json.loads(exc.read().decode("utf-8") or "{}")
    except (OSError, ValueError, http.client.HTTPException):
        return None


def _http_post(base: str, path: str, body: bytes, timeout: float = WAIT_SEC):
    """POST returning (status, document); mid-response disconnects are
    retried (idempotent: the service coalesces/caches by content key)."""
    request = urllib.request.Request(
        base + path, data=body, headers={"Content-Type": "application/json"}
    )
    for _ in range(_HTTP_TRIES):
        try:
            with urllib.request.urlopen(request, timeout=timeout) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            body_doc = _error_body(exc)
            if body_doc is None:
                continue
            return exc.code, body_doc
        except (OSError, http.client.HTTPException):
            continue
    return 0, {}


#: (label, body factory) — the untrusted-input battery every http-channel
#: case throws at the server; each must yield a structured 4xx
def _fuzz_battery() -> List[Tuple[str, bytes]]:
    deep = "x = " + "(" * 10_000 + "1" + ")" * 10_000
    return [
        ("malformed-json", b'{"program": "x = 1"'),
        ("non-object", b'[1, 2, 3]'),
        ("missing-program", b'{"tenant": "default"}'),
        ("non-string-program", b'{"program": 42}'),
        ("lexer-garbage", json.dumps({"program": "x = @#$%"}).encode()),
        ("deep-nesting", json.dumps({"program": deep}).encode()),
        ("oversized-program",
         json.dumps({"program": "x = 1\n" * 600_000}).encode()),
    ]


def _run_http_case(state_dir: Path, programs, case: CaseResult) -> None:
    """HTTP channel: a real ThreadingHTTPServer round-trip, the fuzz
    battery, and (under http.client.disconnect) proof the server
    survives a mid-response hangup."""
    from repro.serve.daemon import AnalysisService
    from repro.serve.http import AnalysisHTTPServer

    service = AnalysisService(_service_config(state_dir))
    service.start()
    server = AnalysisHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        generated = programs[0]
        body = json.dumps(
            {"program": generated.source, "wait": True, "wait_timeout_sec": WAIT_SEC}
        ).encode()
        # a torn response here (code 0) means the injected disconnect hit
        # our own connection — the invariant is that the *server*
        # shrugged it off, proven by the healthz probe below
        code, document = _http_post(base, "/v1/analyze", body)
        status, health = _http_get(base, "/healthz", timeout=5.0)
        if status != 200 or health.get("status") != "ok":
            case.fail("service-answers", "server unhealthy after disconnect")
        if code == 200:
            result = document.get("result", {})
            _check_answer(result, generated, case)
        for label, payload in _fuzz_battery():
            fuzz_code, fuzz_doc = _http_post(base, "/v1/analyze", payload)
            if fuzz_code == 0:
                continue  # response torn by the injected disconnect
            if not (400 <= fuzz_code < 500):
                case.fail(
                    "http-hardening",
                    f"{label}: expected structured 4xx, got {fuzz_code}",
                )
            elif not isinstance(fuzz_doc.get("error"), str):
                case.fail("http-hardening", f"{label}: {fuzz_code} without error body")
        _, stats = _http_get(base, "/stats", timeout=5.0)
        breaker = stats.get("breaker", {})
        tripped = [name for name, state in breaker.items() if state == "open"]
        if tripped:
            case.fail(
                "http-hardening",
                f"client-fault inputs tripped breaker(s): {tripped}",
            )
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        service.drain(timeout=WAIT_SEC)
        service.stop()
    _check_cache_integrity(state_dir, case)


def _run_metrics_case(state_dir: Path, programs, case: CaseResult) -> None:
    """Metrics channel: scrape ``/metrics`` while the fault plane injects
    render failures mid-scrape.  The invariants: every scrape answers 200
    (the fallback exposition, never a 500 or a hang), every body is
    parseable Prometheus text, and the daemon stays healthy throughout —
    telemetry must never take down the service it watches."""
    from repro.obs import metrics as metrics_mod
    from repro.serve.daemon import AnalysisService, AnalyzeRequest
    from repro.serve.http import AnalysisHTTPServer

    service = AnalysisService(_service_config(state_dir))
    service.start()
    server = AnalysisHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    try:
        # real work first so the exposition has non-trivial series to render
        generated = programs[0]
        try:
            status, payload = service.submit(
                AnalyzeRequest(program=generated.source, deadline_sec=10.0)
            )
            if status == "accepted":
                payload.wait(WAIT_SEC)
        except Exception as exc:
            case.fail("service-answers", f"submit raised {exc!r}")
        for attempt in range(4):
            try:
                with urllib.request.urlopen(base + "/metrics", timeout=5.0) as resp:
                    code, text = resp.status, resp.read().decode("utf-8")
            except urllib.error.HTTPError as exc:
                case.fail(
                    "metrics-scrape",
                    f"scrape {attempt}: HTTP {exc.code} (must always be 200)",
                )
                continue
            except (OSError, http.client.HTTPException) as exc:
                case.fail("metrics-scrape", f"scrape {attempt}: {exc!r}")
                continue
            if code != 200:
                case.fail("metrics-scrape", f"scrape {attempt}: status {code}")
                continue
            problems = metrics_mod.validate_exposition(text)
            if problems:
                case.fail(
                    "metrics-scrape",
                    f"scrape {attempt}: non-parseable exposition: {problems[0]}",
                )
            samples = metrics_mod.parse_exposition(text)
            if "repro_up" not in samples:
                case.fail(
                    "metrics-scrape", f"scrape {attempt}: repro_up series missing"
                )
        status, health = _http_get(base, "/healthz", timeout=5.0)
        if status != 200 or health.get("status") != "ok":
            case.fail("metrics-scrape", "daemon unhealthy after faulted scrapes")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
        service.drain(timeout=WAIT_SEC)
        service.stop()
    _check_cache_integrity(state_dir, case)


def _channel_for(schedule: FaultSchedule) -> str:
    if schedule.focus in SHARD_POINTS:
        return "shard"
    if schedule.focus in HTTP_POINTS:
        return "http"
    if schedule.focus in CKPT_POINTS:
        return "ckpt"
    if schedule.focus in METRICS_POINTS:
        return "metrics"
    return "service"


def run_case(base_seed: int, case_index: int, state_root: Path) -> CaseResult:
    """One cell: fresh state dir + fresh plane, one schedule, all checks."""
    from repro.testing import reset_state

    schedule = FaultSchedule.for_case(base_seed, case_index)
    case = CaseResult(
        case=case_index,
        label=schedule.label,
        focus=schedule.focus,
        channel=_channel_for(schedule),
    )
    state_dir = state_root / f"case-{case_index:04d}"
    state_dir.mkdir(parents=True, exist_ok=True)
    programs = _generated_programs(base_seed * 1_000_003 + case_index)
    reset_state()
    plane.install(schedule)
    try:
        if case.channel == "shard":
            _run_shard_case(state_dir, programs, case)
        elif case.channel == "http":
            _run_http_case(state_dir, programs, case)
        elif case.channel == "ckpt":
            _run_ckpt_case(state_dir, programs, case)
        elif case.channel == "metrics":
            _run_metrics_case(state_dir, programs, case)
        else:
            _run_service_case(state_dir, programs, case)
    except queue.Full:
        pass  # structured shed under injected overflow: acceptable
    except Exception as exc:
        case.fail("service-answers", f"harness-visible crash: {exc!r}")
    finally:
        active = plane.active()
        if active is not None:
            case.coverage = active.coverage()
        plane.uninstall()
        reset_state()
    return case


def run_sweep(
    base_seed: int,
    cases: int,
    state_root: Path,
    *,
    progress=None,
) -> SweepReport:
    """Drive ``cases`` consecutive schedules; return the merged report.

    A full rotation of the catalog (``cases >= len(CATALOG)``) guarantees
    every injection point was *scheduled* at least once; the coverage
    section of the report then proves which ones actually *fired*.
    """
    report = SweepReport(base_seed=base_seed)
    for case_index in range(cases):
        result = run_case(base_seed, case_index, state_root)
        report.cases.append(result)
        if progress is not None:
            progress(result)
    return report
