"""Deterministic, seeded cross-layer fault plane.

Every prior robustness mechanism injects faults into *one* layer: the
chaos suite perturbs the engine, the crash suite SIGKILLs the daemon,
the shard tests kill one worker.  This module is the shared switchboard
those layers (and everything between them) register with, so one seeded
schedule can misbehave anywhere in the pipeline and the invariant
harness (:mod:`repro.faults.invariants`) can check the end-to-end answer
stays sound.

Design, mirroring :mod:`repro.obs.provenance`:

* **Named injection points** (:data:`CATALOG`) live at trust boundaries:
  disk writes in the checkpointer/cache/journal, cache reads, shard
  boundary-fact codecs, worker processes, the daemon queue and clock,
  and the HTTP response path.  Instrumented code calls
  :func:`check(point) <check>`; the call answers ``None`` ("behave") or
  a :class:`PlannedFault` ("misbehave now, like this").
* **Zero cost when disabled**: the process-global plane is ``None`` by
  default and :func:`check` is a single attribute test — production
  code pays one ``is None`` branch per boundary crossing.
* **Deterministic schedules**: a :class:`FaultSchedule` derives entirely
  from ``(base_seed, case_index)``.  Case *k* of a sweep always forces
  catalog point ``k mod len(CATALOG)`` to fire on its first arrival
  (so a full rotation exercises every point) plus a seeded handful of
  extra faults.  ``REPRO_FAULT_SEED=<base>[:<case>]`` replays any
  failing case exactly (:meth:`FaultSchedule.from_env`).
* **Coverage accounting**: the plane counts arrivals (``hits``) and
  injections (``fired``) per point; :meth:`FaultPlane.coverage` is what
  the harness folds into its never-exercised report.

Faults that simulate a crash *mid-write* (torn/fsync-then-crash) must
not actually kill the calling process — they manifest as an ``OSError``
after partial bytes hit the temp file, with the rename skipped, so the
target keeps its old content exactly as a real crash would leave it.
Real SIGKILLs are reserved for disposable worker processes.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from random import Random
from typing import Dict, Iterator, List, Optional

#: environment variable replaying one schedule: ``<base_seed>[:<case>]``
SEED_ENV = "REPRO_FAULT_SEED"

#: every registered injection point, name -> where it bites.  Ordered:
#: case ``k`` of a sweep forces point ``k mod len(CATALOG)``, so the
#: ordering is part of the replay contract — append, never reorder.
CATALOG: "Dict[str, str]" = {
    "ckpt.write.enospc": "checkpoint atomic write fails with ENOSPC mid-write",
    "ckpt.write.eio": "checkpoint atomic write fails with EIO at fsync",
    "ckpt.write.torn": "checkpoint write crashes mid-write (partial temp file)",
    "ckpt.write.crash": "checkpoint write crashes after fsync, before rename",
    "cache.write.enospc": "result-cache entry write fails with ENOSPC",
    "cache.read.corrupt": "result-cache entry read returns bit-flipped bytes",
    "journal.append.enospc": "journal append fails with ENOSPC before writing",
    "journal.append.torn": "journal append crashes mid-line (torn tail)",
    "shard.boundary.corrupt": "a shard boundary fact decodes as garbage",
    "shard.worker.kill": "one shard worker process is SIGKILLed mid-round",
    "daemon.worker.kill": "the daemon's attempt worker dies mid-attempt",
    "daemon.clock.pressure": "the attempt deadline collapses to near zero",
    "daemon.queue.overflow": "the admission queue reports full",
    "http.client.disconnect": "the HTTP client hangs up before the response",
    "metrics.render.fail": "the /metrics registry render raises mid-scrape",
}


@dataclass(frozen=True)
class PlannedFault:
    """One scheduled misbehavior: fire at the ``hit``-th arrival (1-based)
    at ``point``, for ``count`` consecutive arrivals.  ``arg`` is a
    point-specific knob (e.g. the fraction of bytes a torn write lands)."""

    point: str
    hit: int = 1
    count: int = 1
    arg: float = 0.5

    def covers(self, arrival: int) -> bool:
        return self.hit <= arrival < self.hit + self.count


class FaultSchedule:
    """A deterministic set of planned faults, replayable from its label."""

    def __init__(self, plans: List[PlannedFault], label: str = "", focus: str = ""):
        self.plans = list(plans)
        self.label = label
        self.focus = focus
        self.points = sorted({plan.point for plan in self.plans})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({self.label!r}, focus={self.focus!r}, plans={self.plans!r})"

    @classmethod
    def for_case(cls, base_seed: int, case_index: int) -> "FaultSchedule":
        """The schedule of sweep case ``case_index`` under ``base_seed``.

        The *focus* fault — catalog point ``case_index mod len(CATALOG)``,
        firing on its first arrival — guarantees a full sweep rotation
        exercises every registered point.  A seeded 0-2 extra faults land
        on other points at later arrivals, so cases also probe fault
        *combinations*, not just singletons.
        """
        names = list(CATALOG)
        rng = Random(f"repro-faults:{base_seed}:{case_index}")
        focus = names[case_index % len(names)]
        plans = [
            PlannedFault(
                point=focus,
                hit=1,
                count=1 + rng.randrange(2),
                arg=0.1 + 0.8 * rng.random(),
            )
        ]
        for _ in range(rng.randrange(3)):
            extra = rng.choice(names)
            plans.append(
                PlannedFault(
                    point=extra,
                    hit=1 + rng.randrange(3),
                    count=1,
                    arg=0.1 + 0.8 * rng.random(),
                )
            )
        return cls(plans, label=f"{base_seed}:{case_index}", focus=focus)

    @classmethod
    def from_env(cls, value: Optional[str] = None) -> Optional["FaultSchedule"]:
        """Rebuild the schedule named by ``REPRO_FAULT_SEED`` (or an
        explicit ``value``) — ``"<base>"`` means case 0, ``"<base>:<case>"``
        any case.  None when unset/unparseable (never raises: a bad env
        var must not take the process down)."""
        raw = value if value is not None else os.environ.get(SEED_ENV, "")
        raw = raw.strip()
        if not raw:
            return None
        base, _, case = raw.partition(":")
        try:
            return cls.for_case(int(base), int(case) if case else 0)
        except ValueError:
            return None


class FaultPlane:
    """The live switchboard: arrival counting + planned-fault matching.

    Thread-safe — daemon worker threads, HTTP request threads, and the
    parent side of process pools all consult the same plane.  Worker
    *processes* do not inherit a live plane (the module global resets on
    fork via the schedule being consulted parent-side); process-crossing
    faults are decided in the parent and shipped with the task.
    """

    def __init__(self, schedule: FaultSchedule):
        self.schedule = schedule
        self._lock = threading.Lock()
        self._arrivals: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}

    def check(self, point: str) -> Optional[PlannedFault]:
        """Count one arrival at ``point``; return the planned fault if
        this arrival is scheduled to misbehave, else None."""
        with self._lock:
            arrival = self._arrivals.get(point, 0) + 1
            self._arrivals[point] = arrival
            for plan in self.schedule.plans:
                if plan.point == point and plan.covers(arrival):
                    self._fired[point] = self._fired.get(point, 0) + 1
                    return plan
        return None

    def coverage(self) -> Dict[str, Dict[str, int]]:
        """Per-catalog-point arrival/injection counts (zero-filled)."""
        with self._lock:
            return {
                point: {
                    "hits": self._arrivals.get(point, 0),
                    "fired": self._fired.get(point, 0),
                }
                for point in CATALOG
            }

    def fired_points(self) -> List[str]:
        with self._lock:
            return sorted(point for point, n in self._fired.items() if n)


# -- the process-global switchboard -------------------------------------------

_active: Optional[FaultPlane] = None


def active() -> Optional[FaultPlane]:
    return _active


def install(schedule: FaultSchedule) -> FaultPlane:
    """Engage a schedule process-globally; returns the live plane."""
    global _active
    plane = FaultPlane(schedule)
    _active = plane
    return plane


def uninstall() -> None:
    global _active
    _active = None


def reset() -> None:
    """Test isolation hook (see :func:`repro.testing.reset_state`)."""
    uninstall()


@contextmanager
def engaged(schedule: FaultSchedule) -> Iterator[FaultPlane]:
    """Scoped installation: the plane is live inside the ``with`` body."""
    plane = install(schedule)
    try:
        yield plane
    finally:
        uninstall()


def check(point: str) -> Optional[PlannedFault]:
    """The one call instrumented code makes.  Disabled: a single ``is
    None`` test.  Enabled: count the arrival, maybe return a fault."""
    plane = _active
    if plane is None:
        return None
    return plane.check(point)


def corrupt_bytes(raw: bytes, arg: float) -> bytes:
    """Deterministically damage a byte payload for read-corruption faults:
    flip one bit at a position derived from ``arg`` (or truncate when the
    payload is long enough that truncation is the nastier damage)."""
    if not raw:
        return b"\xff"
    index = int(arg * (len(raw) - 1))
    if arg > 0.6 and len(raw) > 8:
        return raw[: max(1, index)]  # truncated tail
    flipped = raw[index] ^ 0x20
    return raw[:index] + bytes([flipped]) + raw[index + 1:]


__all__ = [
    "CATALOG",
    "SEED_ENV",
    "PlannedFault",
    "FaultSchedule",
    "FaultPlane",
    "active",
    "install",
    "uninstall",
    "reset",
    "engaged",
    "check",
    "corrupt_bytes",
]
