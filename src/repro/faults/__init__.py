"""Cross-layer fault plane: seeded injection + soundness-under-fault checks.

:mod:`repro.faults.plane` is the switchboard instrumented code consults;
:mod:`repro.faults.invariants` is the harness that drives the pipeline
under seeded schedules and machine-checks the robustness invariants.
Import the plane symbols from here; the harness is imported explicitly
(it pulls in the serve stack, which the plane must stay independent of).
"""

from repro.faults.plane import (  # noqa: F401
    CATALOG,
    SEED_ENV,
    FaultPlane,
    FaultSchedule,
    PlannedFault,
    active,
    check,
    corrupt_bytes,
    engaged,
    install,
    reset,
    uninstall,
)
