"""MPI-CFG baseline (Shires et al., Section II).

MPI-CFGs extend the sequential CFG with *communication edges* between send
and receive nodes.  The construction is deliberately sequential-minded:

1. connect **every** send node to **every** receive node;
2. prune edges that sequential information refutes:
   a. declared message types differ;
   b. both partner expressions are constants that contradict each other
      (the send targets rank ``d`` but the receive's constant source can
      never be a process executing that send — checked via sequential
      constant propagation on ``id``-refined branches at a probe ``np``);
   c. sender and receiver node are the same node (a node cannot be both).

The paper notes this approach is orthogonal to (and much less precise than)
the pCFG analysis; the benchmark harness quantifies exactly that: spurious
edges retained by MPI-CFG that the pCFG analysis proves impossible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.dataflow.analyses import eval_const, sequential_constants
from repro.lang.ast import If, Num, Program, Recv, Send, While
from repro.lang.cfg import CFG, NodeKind, build_cfg

#: process count the pruning pass probes by default; see :func:`probe_np_for`
DEFAULT_PROBE_NP = 6

#: upper bound on an adaptively chosen probe np (keeps the per-rank constant
#: propagation affordable for programs mentioning absurdly large literals)
MAX_PROBE_NP = 32


@dataclass
class MPICFGResult:
    """The communication-edge relation of the MPI-CFG."""

    cfg: CFG
    comm_edges: Set[Tuple[int, int]] = field(default_factory=set)
    pruned: List[Tuple[int, int, str]] = field(default_factory=list)

    def edge_count(self) -> int:
        """Number of retained communication edges."""
        return len(self.comm_edges)

    def spurious_edges(self, true_edges: FrozenSet[Tuple[int, int]]) -> Set[Tuple[int, int]]:
        """Edges retained by MPI-CFG that never occur in a given topology."""
        return self.comm_edges - set(true_edges)


def _constant_endpoint(cfg: CFG, node_id: int, probe_np: int) -> Dict[int, Optional[int]]:
    """Per-process constant value of a node's partner expression.

    Runs sequential constant propagation once per rank (the classical
    whole-program specialization MPI-CFG implementations use to prune) and
    returns rank -> constant partner (None when not constant for that rank).
    """
    values: Dict[int, Optional[int]] = {}
    node = cfg.node(node_id)
    expr = node.stmt.dest if isinstance(node.stmt, Send) else node.stmt.src
    for rank in range(probe_np):
        env = sequential_constants(cfg, num_procs=probe_np, proc_id=rank)[node_id]
        env = dict(env)
        env.setdefault("id", rank)
        env.setdefault("np", probe_np)
        value = eval_const(expr, env, probe_np)
        values[rank] = value if isinstance(value, int) else None
    return values


def _reachable_by(cfg: CFG, node_id: int, probe_np: int) -> Set[int]:
    """Ranks whose specialized constant propagation reaches the node."""
    ranks = set()
    for rank in range(probe_np):
        # a node is reachable for this rank when its in-state is not bottom;
        # sequential_constants maps bottom to {} AND reachable-empty to {},
        # so consult the raw solver states instead
        from repro.dataflow.analyses import ConstantPropagation
        from repro.dataflow.solver import solve_forward

        raw = solve_forward(cfg, ConstantPropagation(probe_np, rank))
        if raw[node_id] is not None:
            ranks.add(rank)
    return ranks


def _rank_literal_bound(program: Program) -> int:
    """Largest integer literal in a rank-relevant position (-1 when none).

    Rank-relevant positions are partner expressions (``send``'s dest,
    ``receive``'s src) and branch/loop conditions that mention ``id`` —
    the places a literal constrains *which process* communicates.  Value
    expressions (``x = 98``) are deliberately excluded so data constants
    cannot inflate the probe.
    """
    bound = -1
    for stmt in program.walk():
        exprs = []
        if isinstance(stmt, Send):
            exprs.append(stmt.dest)
        elif isinstance(stmt, Recv):
            exprs.append(stmt.src)
        elif isinstance(stmt, (If, While)) and "id" in stmt.cond.free_vars():
            exprs.append(stmt.cond)
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, Num) and isinstance(node.value, int):
                    bound = max(bound, node.value)
    return bound


def probe_np_for(program: Program) -> int:
    """A probe process count at which every mentioned rank is representable.

    Pruning rule (b) is only sound if every rank a literal can name
    actually *exists* at the probe np: probing ``send x -> 6`` at np=6
    (ranks 0..5) makes the guard ``id == 6`` unreachable for every rank
    and wrongly refutes all of that send's edges.  We therefore probe at
    least two ranks past the largest rank-relevant literal (the named
    rank plus one bystander), clamped to :data:`MAX_PROBE_NP`.
    """
    return min(max(DEFAULT_PROBE_NP, _rank_literal_bound(program) + 2), MAX_PROBE_NP)


def _prune_at(cfg: CFG, sends, recvs, probe_np: int):
    """Edge sets (kept, pruned-reason map) from probing at one np."""
    send_consts = {s: _constant_endpoint(cfg, s, probe_np) for s in sends}
    recv_consts = {r: _constant_endpoint(cfg, r, probe_np) for r in recvs}
    send_reach = {s: _reachable_by(cfg, s, probe_np) for s in sends}
    recv_reach = {r: _reachable_by(cfg, r, probe_np) for r in recvs}

    kept: Set[Tuple[int, int]] = set()
    pruned: Dict[Tuple[int, int], str] = {}
    for send_id in sends:
        send_node = cfg.node(send_id)
        assert isinstance(send_node.stmt, Send)
        for recv_id in recvs:
            recv_node = cfg.node(recv_id)
            assert isinstance(recv_node.stmt, Recv)
            # prune rule (a): declared type mismatch
            if send_node.stmt.mtype != recv_node.stmt.mtype:
                pruned[(send_id, recv_id)] = "type-mismatch"
                continue
            # prune rule (b): contradictory constant endpoints at probe np —
            # keep the edge iff SOME (sender rank, receiver rank) pair is
            # consistent: sender targets the receiver and the receiver
            # expects the sender (unknown constants stay consistent)
            consistent = False
            for s_rank in send_reach[send_id]:
                dest = send_consts[send_id][s_rank]
                for r_rank in recv_reach[recv_id]:
                    src = recv_consts[recv_id][r_rank]
                    dest_ok = dest is None or dest == r_rank
                    src_ok = src is None or src == s_rank
                    if dest_ok and src_ok:
                        consistent = True
                        break
                if consistent:
                    break
            if not consistent:
                pruned[(send_id, recv_id)] = "constant-mismatch"
                continue
            kept.add((send_id, recv_id))
    return kept, pruned


def build_mpi_cfg(
    program: Program, probe_np: Optional[int] = None, cfg: Optional[CFG] = None
) -> MPICFGResult:
    """Construct the MPI-CFG of a program and prune with sequential facts.

    ``probe_np`` defaults to :func:`probe_np_for`, which adapts to the
    ranks the program mentions; when the adaptive probe differs from
    :data:`DEFAULT_PROBE_NP` both process counts are probed and an edge is
    pruned only if *every* probe refutes it, keeping the baseline on the
    over-approximate side (found by the corpus sweep: ``mplg1-b26c6652``).
    """
    cfg = cfg if cfg is not None else build_cfg(program)
    result = MPICFGResult(cfg)
    sends = [n.node_id for n in cfg.nodes.values() if n.kind == NodeKind.SEND]
    recvs = [n.node_id for n in cfg.nodes.values() if n.kind == NodeKind.RECV]

    if probe_np is None:
        probes = sorted({DEFAULT_PROBE_NP, probe_np_for(program)})
    else:
        probes = [probe_np]
    kept: Set[Tuple[int, int]] = set()
    pruned_maps = []
    for probe in probes:
        probe_kept, probe_pruned = _prune_at(cfg, sends, recvs, probe)
        kept |= probe_kept
        pruned_maps.append(probe_pruned)
    result.comm_edges = kept
    for edge, why in sorted(pruned_maps[0].items()):
        if all(edge in pruned for pruned in pruned_maps):
            result.pruned.append((edge[0], edge[1], why))
    return result
