"""Concrete (fixed-``np``) exact matcher — the model-checking-style baseline.

MPI-SPIN and related tools (Section II) analyze one concrete process count
at a time.  Because the Section III execution model is deterministic and
interleaving-oblivious, a *single* execution of the semantics yields the
exact match relation for that ``np`` — no interleaving enumeration needed —
so this baseline is the cheapest possible concrete analysis.  Even so, its
cost grows with ``np`` (every process and every message is materialized),
while the pCFG analysis' cost is independent of ``np``; the benchmark
harness measures exactly this contrast.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.lang.ast import Program
from repro.lang.cfg import CFG
from repro.runtime.interpreter import run_program


@dataclass
class ConcreteResult:
    """Exact matches for one concrete process count."""

    num_procs: int
    node_edges: FrozenSet[Tuple[int, int]]
    proc_edges: FrozenSet[Tuple[int, int]]
    total_steps: int
    elapsed: float


def concrete_matches(
    program: Program,
    num_procs: int,
    inputs: Optional[Sequence[int]] = None,
    cfg: Optional[CFG] = None,
) -> ConcreteResult:
    """Execute the deterministic semantics at ``np`` and report matches."""
    start = time.perf_counter()
    trace = run_program(program, num_procs, inputs=inputs, cfg=cfg)
    elapsed = time.perf_counter() - start
    topology = trace.topology()
    return ConcreteResult(
        num_procs=num_procs,
        node_edges=topology.node_edges,
        proc_edges=topology.proc_edges,
        total_steps=sum(trace.steps.values()),
        elapsed=elapsed,
    )


def sweep(
    program: Program,
    proc_counts: Sequence[int],
    inputs_for=None,
    cfg: Optional[CFG] = None,
) -> List[ConcreteResult]:
    """Run the concrete matcher over a range of process counts.

    ``inputs_for`` maps np -> input list for programs consuming ``input()``.
    """
    results = []
    for num_procs in proc_counts:
        inputs = inputs_for(num_procs) if inputs_for else None
        results.append(concrete_matches(program, num_procs, inputs=inputs, cfg=cfg))
    return results
