"""Baseline analyses the paper compares against (Section II).

* :mod:`repro.baselines.mpi_cfg` — MPI-CFGs (Shires et al.): connect every
  send to every receive, then prune edges using *sequential* information
  (mismatched message types, contradictory constant endpoints).  Sound but
  imprecise: its edge set over-approximates the true topology.
* :mod:`repro.baselines.concrete` — a model-checking-style exact matcher for
  a *fixed* process count: it simply executes the deterministic semantics
  for a concrete ``np`` and reports the exact match relation.  Perfectly
  precise, but its cost grows with ``np`` and it says nothing about other
  process counts — the contrast that motivates the pCFG framework.
"""

from repro.baselines.concrete import ConcreteResult, concrete_matches
from repro.baselines.mpi_cfg import MPICFGResult, build_mpi_cfg

__all__ = ["build_mpi_cfg", "MPICFGResult", "concrete_matches", "ConcreteResult"]
