"""repro — Communication-Sensitive Static Dataflow for Message Passing.

A from-scratch Python reproduction of Bronevetsky's CGO 2009 pCFG parallel
dataflow framework, including:

* the MPL message-passing mini-language and its interpreter (ground truth);
* constraint-graph state abstraction with per-process-set namespaces;
* the pCFG dataflow engine (Fig. 4) with exact send-receive matching;
* the Section VII simple symbolic client and the Section VIII Cartesian
  (HSM) client;
* client applications: topology detection, parallel constant propagation,
  communication-bug detection, pattern classification;
* the MPI-CFG and concrete-enumeration baselines.

Quickstart::

    from repro import analyze, programs

    result, cfg, client = analyze(programs.get("exchange_with_root"))
    print(result.topology.describe())
"""

from repro.analyses.bugs import detect_bugs
from repro.analyses.cartesian import CartesianClient, analyze_cartesian
from repro.analyses.constprop import propagate_constants
from repro.analyses.patterns import classify_topology
from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.analyses.simple_symbolic import analyze_program as analyze
from repro.core import AnalysisResult, PCFGEngine
from repro.lang import build_cfg, parse, programs
from repro.runtime import run_program

__version__ = "1.0.0"

__all__ = [
    "analyze",
    "analyze_cartesian",
    "SimpleSymbolicClient",
    "CartesianClient",
    "propagate_constants",
    "detect_bugs",
    "classify_topology",
    "PCFGEngine",
    "AnalysisResult",
    "parse",
    "build_cfg",
    "programs",
    "run_program",
    "__version__",
]
