"""repro.corpus — corpus-scale program generation and differential sweeping.

The paper validates the analysis on about a dozen hand-written kernels;
this package supplies scenario *volume*:

* :mod:`repro.corpus.generator` — a grammar-driven, seeded MPL program
  generator.  Every program is reproducible from its ``corpus_id`` alone
  (``corpus_id = f(grammar_version, seed)``).
* :mod:`repro.corpus.sweep` — the analyzer-vs-interpreter differential
  harness behind ``repro sweep``: run each generated program through
  :func:`repro.core.driver.analyze_with_fallback` and the concrete
  interpreter, check the soundness contract (static matches must cover
  every observed dynamic match), classify the outcome, and greedily
  shrink any divergent program into a minimal reproducer.
"""

from repro.corpus.generator import (
    GRAMMAR_VERSION,
    GeneratedProgram,
    corpus_id_for,
    generate,
    generate_from_id,
    parse_corpus_id,
    seed_stream,
)
from repro.corpus.sweep import (
    TIER_SIZES,
    SweepRecord,
    SweepSummary,
    load_manifest,
    run_one,
    run_sweep,
    shrink_divergence,
    write_manifest,
)

__all__ = [
    "GRAMMAR_VERSION",
    "GeneratedProgram",
    "corpus_id_for",
    "generate",
    "generate_from_id",
    "parse_corpus_id",
    "seed_stream",
    "TIER_SIZES",
    "SweepRecord",
    "SweepSummary",
    "load_manifest",
    "run_one",
    "run_sweep",
    "shrink_divergence",
    "write_manifest",
]
