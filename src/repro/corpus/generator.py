"""Grammar-driven, seeded MPL program generator.

Programs are composed along independent axes:

* **topology shape** — which communication skeleton the program builds
  (broadcast / gather / scatter / exchange-with-root / shift /
  neighbor exchange / pipeline / pairwise / master-worker / modular ring /
  leaky send / purely sequential);
* **rank count** — which concrete ``np`` values the differential oracle
  should exercise (chosen to satisfy the skeleton's minimum);
* **control flow** — optional decorations: a sequential while-loop
  preamble, a ``for``-loop repetition of the whole communication phase,
  and a rank-parity compute branch;
* **partner expressions** — offsets/roots the skeleton communicates with
  (``id + k``, constant roots, reflected and modular partners);
* **send/receive placement** — which side of an exchange initiates.

Everything is drawn from one ``random.Random`` seeded with
``(grammar_version, seed)``, so ``corpus_id = f(grammar_version, seed)``
fully determines the program text: any program ever swept can be
regenerated from its id alone (:func:`generate_from_id`), which is why
the nightly tier only persists seeds, never program text.

Skeletons are deadlock-free by construction for every ``np`` at or above
their minimum (sends are buffered; every receive has a matching send
executed by a non-blocked process), with two deliberate exceptions that
exercise the degraded analysis paths: ``ring_modular`` (beyond both
clients' abstraction, so the fallback ladder must answer) and ``leaky``
(a sent-but-never-received message).
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.lang.ast import Expr, Program, Stmt
from repro.lang.build import (
    ID,
    NP,
    add,
    assign,
    cmp,
    eq,
    for_,
    if_,
    mod,
    mul,
    num,
    print_,
    recv,
    send,
    skip,
    sub,
    to_source,
    var,
    while_,
)
from repro.lang.parser import parse

#: bump when the generation grammar changes shape: a corpus_id embeds the
#: version, and regenerating an old id under a new grammar is an error
GRAMMAR_VERSION = 1

_ID_PATTERN = re.compile(r"^mplg(\d+)-([0-9a-f]{8})$")

#: the client analyses assume ``np >= min_np`` (4 by default, see
#: :class:`repro.analyses.simple_symbolic.SimpleSymbolicClient`): their
#: claims are only contractual within that precondition, so the oracle
#: must not execute below it (a np=2 pipeline degenerates into matches
#: the np>=4 claim legitimately omits)
ANALYZER_MIN_NP = 4

#: candidate concrete process counts for the differential oracle
_NP_CANDIDATES = (4, 5, 6, 7, 8)


def corpus_id_for(seed: int, grammar_version: int = GRAMMAR_VERSION) -> str:
    """The stable id of the program generated from ``seed``."""
    if not 0 <= seed < 2**32:
        raise ValueError(f"seed out of range [0, 2^32): {seed}")
    return f"mplg{grammar_version}-{seed:08x}"


def parse_corpus_id(corpus_id: str) -> Tuple[int, int]:
    """Split a corpus id into ``(grammar_version, seed)``."""
    match = _ID_PATTERN.match(corpus_id)
    if not match:
        raise ValueError(f"malformed corpus id {corpus_id!r}")
    return int(match.group(1)), int(match.group(2), 16)


def seed_stream(base_seed: int, count: int) -> List[int]:
    """``count`` distinct program seeds derived deterministically from one
    base seed (the ``--seed`` the CI job prints for reproduction)."""
    rng = random.Random(f"mplg{GRAMMAR_VERSION}:stream:{base_seed}")
    seen = set()
    seeds: List[int] = []
    while len(seeds) < count:
        candidate = rng.randrange(2**32)
        if candidate not in seen:
            seen.add(candidate)
            seeds.append(candidate)
    return seeds


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated program plus the axis choices that produced it."""

    corpus_id: str
    grammar_version: int
    seed: int
    source: str
    axes: Dict[str, object] = field(hash=False)
    #: concrete process counts the differential oracle should run
    np_values: Tuple[int, ...] = ()

    def parse(self) -> Program:
        """Parse the generated source (mirrors ``ProgramSpec.parse``)."""
        return parse(self.source)


# ---------------------------------------------------------------------------
# Topology skeletons
#
# Each returns (statements, min_np, assigned_vars, axes_extra).
# ---------------------------------------------------------------------------


def _value_expr(rng: random.Random) -> Expr:
    """A message/compute value in the affine fragment."""
    choice = rng.randrange(5)
    if choice == 0:
        return num(rng.randrange(-9, 100))
    if choice == 1:
        return ID
    if choice == 2:
        return add(ID, num(rng.randrange(1, 9)))
    if choice == 3:
        return mul(num(rng.randrange(2, 9)), ID)
    return sub(NP, ID)


def _sk_broadcast(rng: random.Random):
    body = [
        assign("x", _value_expr(rng)),
        if_(
            eq(ID, 0),
            [for_("i", num(1), sub(NP, num(1)), [send(var("x"), var("i"))])],
            [recv("y", num(0))],
        ),
    ]
    return body, 2, {"x"}, {}


def _sk_gather(rng: random.Random):
    body = [
        assign("x", _value_expr(rng)),
        if_(
            eq(ID, 0),
            [for_("i", num(1), sub(NP, num(1)), [recv("y", var("i"))])],
            [send(var("x"), num(0))],
        ),
    ]
    return body, 2, {"x"}, {}


def _sk_scatter(rng: random.Random):
    scale = num(rng.randrange(2, 20))
    body = [
        if_(
            eq(ID, 0),
            [
                for_(
                    "i",
                    num(1),
                    sub(NP, num(1)),
                    [assign("x", mul(var("i"), scale)), send(var("x"), var("i"))],
                )
            ],
            [recv("y", num(0))],
        ),
    ]
    return body, 2, set(), {}


def _sk_exchange_root(rng: random.Random):
    placement = rng.choice(["send_first", "recv_first"])
    if placement == "send_first":
        root_loop = [send(var("x"), var("i")), recv("y", var("i"))]
        worker = [recv("y", num(0)), send(var("x"), num(0))]
    else:
        root_loop = [recv("y", var("i")), send(var("x"), var("i"))]
        worker = [send(var("x"), num(0)), recv("y", num(0))]
    body = [
        assign("x", _value_expr(rng)),
        if_(
            eq(ID, 0),
            [for_("i", num(1), sub(NP, num(1)), root_loop)],
            worker,
        ),
    ]
    return body, 2, {"x"}, {"placement": placement}


def _sk_shift(rng: random.Random):
    offset = rng.randrange(1, 4)
    body = [
        assign("x", _value_expr(rng)),
        if_(cmp("<", ID, sub(NP, num(offset))), [send(var("x"), add(ID, num(offset)))]),
        if_(cmp(">=", ID, num(offset)), [recv("y", sub(ID, num(offset)))]),
    ]
    return body, offset + 1, {"x"}, {"offset": offset}


def _sk_neighbor_exchange(rng: random.Random):
    body = [
        assign("x", _value_expr(rng)),
        if_(
            eq(ID, 0),
            [send(var("x"), add(ID, num(1))), recv("y", add(ID, num(1)))],
            [
                if_(
                    eq(ID, sub(NP, num(1))),
                    [recv("y", sub(ID, num(1))), send(var("x"), sub(ID, num(1)))],
                    [
                        recv("y", sub(ID, num(1))),
                        send(var("x"), add(ID, num(1))),
                        recv("z", add(ID, num(1))),
                        send(var("x"), sub(ID, num(1))),
                    ],
                )
            ],
        ),
    ]
    return body, 2, {"x"}, {"offset": 1}


def _sk_pipeline(rng: random.Random):
    step = num(rng.randrange(1, 5))
    body = [
        assign("x", _value_expr(rng)),
        if_(
            eq(ID, 0),
            [send(var("x"), num(1))],
            [
                if_(
                    cmp("<", ID, sub(NP, num(1))),
                    [
                        recv("y", sub(ID, num(1))),
                        assign("x", add(var("y"), step)),
                        send(var("x"), add(ID, num(1))),
                    ],
                    [recv("y", sub(ID, num(1))), print_(var("y"))],
                )
            ],
        ),
    ]
    return body, 2, {"x"}, {}


def _sk_pairwise(rng: random.Random):
    sender = rng.randrange(0, 4)
    receiver = sender + rng.randrange(1, 4)
    echo = rng.random() < 0.5
    sender_arm: List[Stmt] = [assign("x", _value_expr(rng)), send(var("x"), num(receiver))]
    receiver_arm: List[Stmt] = [recv("y", num(sender))]
    if echo:
        sender_arm.append(recv("z", num(receiver)))
        receiver_arm.append(send(var("y"), num(sender)))
    body = [
        if_(
            eq(ID, sender),
            sender_arm,
            [if_(eq(ID, receiver), receiver_arm, [skip()])],
        ),
    ]
    return body, receiver + 1, set(), {"sender": sender, "receiver": receiver, "echo": echo}


def _sk_master_worker(rng: random.Random):
    scale = num(rng.randrange(2, 200))
    body = [
        if_(
            eq(ID, 0),
            [
                for_(
                    "i",
                    num(1),
                    sub(NP, num(1)),
                    [assign("w", mul(var("i"), scale)), send(var("w"), var("i"))],
                ),
                for_("i", num(1), sub(NP, num(1)), [recv("r", var("i"))]),
            ],
            [
                recv("w", num(0)),
                assign("r", add(var("w"), num(1))),
                send(var("r"), num(0)),
            ],
        ),
    ]
    return body, 2, set(), {}


def _sk_ring_modular(rng: random.Random):
    body = [
        assign("x", _value_expr(rng)),
        send(var("x"), mod(add(ID, num(1)), NP)),
        recv("y", mod(add(ID, sub(NP, num(1))), NP)),
    ]
    return body, 2, {"x"}, {}


def _sk_leaky(rng: random.Random):
    body = [
        assign("x", _value_expr(rng)),
        if_(
            eq(ID, 0),
            [send(var("x"), num(1)), send(var("x"), num(1))],
            [if_(eq(ID, 1), [recv("y", num(0))], [skip()])],
        ),
    ]
    return body, 2, {"x"}, {}


def _sk_sequential(rng: random.Random):
    start = num(rng.randrange(1, 9))
    body = [
        assign("x", _value_expr(rng)),
        assign("c", start),
        while_(cmp(">", var("c"), num(0)), [assign("c", sub(var("c"), num(1)))]),
        print_(var("x")),
    ]
    return body, 2, {"x", "c"}, {}


#: (name, skeleton builder, weight) — weights bias toward the clean,
#: fully-analyzable shapes; the degraded shapes keep the partial paths hot
_SKELETONS = (
    ("broadcast", _sk_broadcast, 3),
    ("gather", _sk_gather, 3),
    ("scatter", _sk_scatter, 2),
    ("exchange_root", _sk_exchange_root, 3),
    ("shift", _sk_shift, 3),
    ("neighbor_exchange", _sk_neighbor_exchange, 2),
    ("pipeline", _sk_pipeline, 2),
    ("pairwise", _sk_pairwise, 2),
    ("master_worker", _sk_master_worker, 1),
    ("ring_modular", _sk_ring_modular, 1),
    ("leaky", _sk_leaky, 1),
    ("sequential", _sk_sequential, 1),
)


# ---------------------------------------------------------------------------
# Control-flow decorations
# ---------------------------------------------------------------------------


def _decorate(
    rng: random.Random,
    body: List[Stmt],
    assigned: set,
    axes: Dict[str, object],
) -> List[Stmt]:
    # for-loop repetition of the whole communication phase: every
    # iteration is internally matched, so the composition stays safe
    repeats = 0
    if rng.random() < 0.35:
        repeats = rng.randrange(2, 4)
        body = [for_("t", num(1), num(repeats), body)]
    axes["repeats"] = repeats

    preamble = rng.random() < 0.4
    if preamble:
        count = num(rng.randrange(1, 6))
        body = [
            assign("c", count),
            while_(cmp(">", var("c"), num(0)), [assign("c", sub(var("c"), num(1)))]),
        ] + body
        assigned.add("c")
    axes["preamble"] = preamble

    parity = rng.random() < 0.3
    if parity:
        bump = num(rng.randrange(1, 9))
        body = body + [
            if_(
                eq(mod(ID, num(2)), 0),
                [assign("w", mul(ID, bump))],
                [assign("w", add(ID, bump))],
            )
        ]
    axes["parity"] = parity

    trailing_print = rng.random() < 0.3
    if trailing_print:
        # only print a variable every rank definitely assigned; fall back
        # to a literal so no rank can read-before-assign
        target = var("x") if "x" in assigned else num(rng.randrange(100))
        body = body + [print_(target)]
    axes["trailing_print"] = trailing_print
    return body


def _retype_messages(stmts: Sequence[Stmt], mtype: str) -> List[Stmt]:
    """Rebuild the statement tree with every send/receive tagged ``mtype``."""
    from repro.lang.ast import For, If, Recv, Send, While

    rebuilt: List[Stmt] = []
    for stmt in stmts:
        if isinstance(stmt, Send):
            rebuilt.append(Send(stmt.value, stmt.dest, mtype))
        elif isinstance(stmt, Recv):
            rebuilt.append(Recv(stmt.target, stmt.src, mtype))
        elif isinstance(stmt, If):
            rebuilt.append(
                If(
                    stmt.cond,
                    tuple(_retype_messages(stmt.then_body, mtype)),
                    tuple(_retype_messages(stmt.else_body, mtype)),
                )
            )
        elif isinstance(stmt, While):
            rebuilt.append(While(stmt.cond, tuple(_retype_messages(stmt.body, mtype))))
        elif isinstance(stmt, For):
            rebuilt.append(
                For(stmt.var, stmt.start, stmt.stop, tuple(_retype_messages(stmt.body, mtype)))
            )
        else:
            rebuilt.append(stmt)
    return rebuilt


def generate(seed: int) -> GeneratedProgram:
    """Generate the program for ``seed`` under the current grammar."""
    rng = random.Random(f"mplg{GRAMMAR_VERSION}:{seed}")
    names = [name for name, _builder, weight in _SKELETONS for _ in range(weight)]
    topology = rng.choice(names)
    builder = dict((name, b) for name, b, _w in _SKELETONS)[topology]

    body, min_np, assigned, extra = builder(rng)
    axes: Dict[str, object] = {"topology": topology}
    axes.update(extra)
    body = _decorate(rng, list(body), set(assigned), axes)

    mtype = "float" if rng.random() < 0.15 else "int"
    if mtype != "int":
        body = _retype_messages(body, mtype)
    axes["mtype"] = mtype

    min_np = max(min_np, ANALYZER_MIN_NP)
    candidates = [n for n in _NP_CANDIDATES if n >= min_np]
    count = min(len(candidates), rng.randrange(2, 4))
    np_values = tuple(sorted(rng.sample(candidates, count)))
    axes["min_np"] = min_np

    source = to_source(Program(tuple(body)))
    return GeneratedProgram(
        corpus_id=corpus_id_for(seed),
        grammar_version=GRAMMAR_VERSION,
        seed=seed,
        source=source,
        axes=axes,
        np_values=np_values,
    )


def generate_from_id(corpus_id: str) -> GeneratedProgram:
    """Regenerate a program from its id alone.

    The id pins the grammar version; regenerating an id minted by a
    different grammar would silently produce a different program, so it
    is an error instead.
    """
    grammar_version, seed = parse_corpus_id(corpus_id)
    if grammar_version != GRAMMAR_VERSION:
        raise ValueError(
            f"corpus id {corpus_id!r} is from grammar v{grammar_version}, "
            f"but this build generates v{GRAMMAR_VERSION}; regenerate the "
            "manifest (repro sweep --write-manifest)"
        )
    return generate(seed)
