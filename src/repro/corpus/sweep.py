"""Analyzer-vs-interpreter differential sweep over generated corpora.

For every generated program the harness runs both legs:

* **analyzer leg** — :func:`repro.core.driver.analyze_with_fallback`
  (the production entry point: the full precision-fallback ladder), whose
  chosen answer claims a set of ``(send CFG node, recv CFG node)`` match
  edges;
* **oracle leg** — the concrete interpreter at each of the program's
  ``np_values``, via :func:`repro.runtime.interpreter.observe_program`,
  which tolerates deadlock/step-limit and still returns the partial trace.

The soundness contract under test is the paper's: static matches must
*over-approximate* every observed dynamic match.  A dynamic edge missing
from the analyzer's claim is a **divergence** — the one outcome that is
never acceptable.  Everything else is classified by the analyzer's own
confidence (``exact`` / ``partial`` / ``gave_up``), with ``error``
reserved for harness-visible crashes (which a generated corpus should
never produce).

Divergent programs are greedily shrunk (:func:`shrink_divergence`) by
deleting statements and hoisting branch/loop bodies while the divergence
still reproduces, then filed under ``corpus/regressions/`` — the
permanent-regression inbox that ``tests/corpus/test_regressions.py``
replays forever after.

``fault="drop-match"`` injects a chaos-style analyzer bug (the claimed
edge set loses one edge) so the harness's own detection and shrinking
machinery stays tested even while the real analyzer is sound.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.driver import analyze_with_fallback
from repro.core.engine import EngineLimits
from repro.corpus.generator import (
    GRAMMAR_VERSION,
    GeneratedProgram,
    generate,
    generate_from_id,
    seed_stream,
)
from repro.lang.ast import For, If, Program, Stmt, While
from repro.lang.build import to_source
from repro.obs import recorder as obs
from repro.runtime.interpreter import observe_program

#: programs per tier; ``smoke`` is pinned by the checked-in manifest,
#: ``pr``/``nightly`` regenerate from seeds (nothing large is checked in)
TIER_SIZES: Dict[str, int] = {"smoke": 50, "pr": 200, "nightly": 2000}

#: the seed the smoke manifest was minted from (CI passes it explicitly)
SMOKE_SEED = 1337

#: repository-relative default locations
DEFAULT_MANIFEST = Path("corpus") / "manifest_smoke.json"
DEFAULT_REGRESSIONS = Path("corpus") / "regressions"


def resolve_default(relative: Path) -> Path:
    """Resolve a repository-relative default path from any cwd.

    Prefers the cwd (a checkout the user is standing in); falls back to
    the repository this module was imported from, so ``repro sweep`` works
    outside the repo root too.
    """
    if relative.is_absolute() or relative.exists():
        return relative
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / relative
    return candidate if candidate.exists() else relative

#: recognized chaos-style harness faults
FAULTS = ("drop-match",)

#: interpreter step budget per oracle execution
ORACLE_MAX_STEPS = 200_000

_OUTCOMES = ("exact", "partial", "gave_up", "divergent", "error")


# ---------------------------------------------------------------------------
# Single-program differential check
# ---------------------------------------------------------------------------


@dataclass
class Divergence:
    """One np at which the concrete run escaped the static claim."""

    num_procs: int
    #: dynamic (send node, recv node) edges the analyzer failed to claim
    missing_edges: List[Tuple[int, int]]
    #: oracle terminal status at this np (``ok`` / ``deadlock`` / ...)
    oracle_status: str
    detail: str = ""


@dataclass
class SweepRecord:
    """Everything the JSONL report persists about one program."""

    corpus_id: str
    seed: int
    outcome: str
    topology: str = ""
    rung: str = ""
    confidence: str = ""
    claimed_edges: int = 0
    dynamic_edges: int = 0
    np_values: List[int] = field(default_factory=list)
    oracle_statuses: List[str] = field(default_factory=list)
    diagnostic_codes: List[str] = field(default_factory=list)
    provenance_ids: List[int] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)
    fault: Optional[str] = None
    error: str = ""
    elapsed: float = 0.0
    #: obs counter snapshot captured in a pool worker (None when the sweep
    #: ran in-process or observability was disabled) — merged into the
    #: parent recorder by :func:`_ingest` so ``engine.*`` counts survive
    #: the process boundary
    counters: Optional[Dict[str, int]] = None

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)


def _inject_fault(claimed: set, fault: Optional[str]) -> set:
    if fault is None:
        return claimed
    if fault == "drop-match":
        # drop the largest claimed edge: deterministic, and on any
        # communicating program it removes a real claim
        if claimed:
            claimed = set(claimed)
            claimed.discard(max(claimed))
        return claimed
    raise ValueError(f"unknown fault {fault!r} (choose from {FAULTS})")


def differential_check(
    program: Program,
    claimed: set,
    np_values: Sequence[int],
) -> Tuple[int, List[str], List[Divergence]]:
    """Run the oracle leg; return (dynamic edge count, statuses, divergences)."""
    dynamic_total: set = set()
    statuses: List[str] = []
    divergences: List[Divergence] = []
    for num_procs in np_values:
        with obs.span("sweep.oracle"):
            observation = observe_program(
                program, num_procs, max_steps=ORACLE_MAX_STEPS
            )
        statuses.append(observation.status)
        dynamic = set(observation.trace.topology().node_edges)
        dynamic_total |= dynamic
        missing = sorted(dynamic - claimed)
        if missing:
            divergences.append(
                Divergence(
                    num_procs=num_procs,
                    missing_edges=missing,
                    oracle_status=observation.status,
                    detail=(
                        f"{len(missing)} dynamic match(es) at np={num_procs} "
                        "not covered by the static claim"
                    ),
                )
            )
    return len(dynamic_total), statuses, divergences


def check_program(
    program: Program,
    np_values: Sequence[int],
    limits: Optional[EngineLimits] = None,
    fault: Optional[str] = None,
):
    """Both legs for one already-parsed program.

    Returns ``(report, claimed, dynamic_count, statuses, divergences)``;
    the sweep and the shrinker share this core.
    """
    with obs.span("sweep.analyze"):
        report = analyze_with_fallback(program, limits=limits)
    claimed = _inject_fault(set(report.result.matches), fault)
    dynamic_count, statuses, divergences = differential_check(
        program, claimed, np_values
    )
    return report, claimed, dynamic_count, statuses, divergences


def run_one(
    seed: int,
    limits: Optional[EngineLimits] = None,
    fault: Optional[str] = None,
    generated: Optional[GeneratedProgram] = None,
) -> SweepRecord:
    """Generate, analyze, and differentially check one seed."""
    start = time.perf_counter()
    generated = generated if generated is not None else generate(seed)
    record = SweepRecord(
        corpus_id=generated.corpus_id,
        seed=generated.seed,
        outcome="error",
        topology=str(generated.axes.get("topology", "")),
        np_values=list(generated.np_values),
        fault=fault,
    )
    try:
        program = generated.parse()
        report, claimed, dynamic_count, statuses, divergences = check_program(
            program, generated.np_values, limits=limits, fault=fault
        )
    except Exception as exc:  # noqa: BLE001 - the sweep must never crash
        record.error = f"{type(exc).__name__}: {exc}"
        record.elapsed = time.perf_counter() - start
        return record
    result = report.result
    record.rung = report.rung_name
    record.confidence = result.confidence
    record.claimed_edges = len(claimed)
    record.dynamic_edges = dynamic_count
    record.oracle_statuses = statuses
    record.diagnostic_codes = [diag.code for diag in result.diagnostics]
    record.provenance_ids = [
        diag.provenance_id
        for diag in result.diagnostics
        if diag.provenance_id is not None
    ]
    record.divergences = divergences
    record.outcome = "divergent" if divergences else result.confidence
    record.elapsed = time.perf_counter() - start
    return record


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _block_variants(block: Tuple[Stmt, ...]) -> Iterator[Tuple[Stmt, ...]]:
    """One-step reductions of a statement block: delete a statement, hoist
    a structured statement's body, or reduce inside a nested block."""
    for index, stmt in enumerate(block):
        rest = block[:index] + block[index + 1:]
        yield rest
        if isinstance(stmt, If):
            if stmt.then_body:
                yield block[:index] + stmt.then_body + block[index + 1:]
            if stmt.else_body:
                yield block[:index] + stmt.else_body + block[index + 1:]
            for variant in _block_variants(stmt.then_body):
                yield (
                    block[:index]
                    + (If(stmt.cond, variant, stmt.else_body),)
                    + block[index + 1:]
                )
            for variant in _block_variants(stmt.else_body):
                yield (
                    block[:index]
                    + (If(stmt.cond, stmt.then_body, variant),)
                    + block[index + 1:]
                )
        elif isinstance(stmt, While):
            if stmt.body:
                yield block[:index] + stmt.body + block[index + 1:]
            for variant in _block_variants(stmt.body):
                yield block[:index] + (While(stmt.cond, variant),) + block[index + 1:]
        elif isinstance(stmt, For):
            if stmt.body:
                yield block[:index] + stmt.body + block[index + 1:]
            for variant in _block_variants(stmt.body):
                yield (
                    block[:index]
                    + (For(stmt.var, stmt.start, stmt.stop, variant),)
                    + block[index + 1:]
                )


def _program_size(program: Program) -> int:
    return sum(1 for _ in program.walk())


def shrink_divergence(
    program: Program,
    reproduces: Callable[[Program], bool],
    max_attempts: int = 2000,
) -> Program:
    """Greedy structural minimization while the divergence reproduces.

    First-improvement descent: take the first one-step reduction that
    still diverges, restart from it, stop at a local minimum (or after
    ``max_attempts`` candidate evaluations — shrinking is best-effort).
    """
    current = program
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for variant in _block_variants(current.body):
            attempts += 1
            candidate = Program(variant)
            if _program_size(candidate) >= _program_size(current):
                continue
            try:
                if reproduces(candidate):
                    current = candidate
                    improved = True
                    break
            except Exception:  # noqa: BLE001 - a crashing candidate is not a repro
                continue
            if attempts >= max_attempts:
                break
    return current


def make_reproducer(
    np_values: Sequence[int],
    limits: Optional[EngineLimits] = None,
    fault: Optional[str] = None,
) -> Callable[[Program], bool]:
    """The shrinker's predicate: does this candidate still diverge?"""

    def reproduces(candidate: Program) -> bool:
        _report, _claimed, _dyn, _statuses, divergences = check_program(
            candidate, np_values, limits=limits, fault=fault
        )
        return bool(divergences)

    return reproduces


def file_regression(
    record: SweepRecord,
    minimized: Program,
    regressions_dir: Path,
) -> Path:
    """Persist a minimized divergent program for permanent regression."""
    regressions_dir.mkdir(parents=True, exist_ok=True)
    source = to_source(minimized)
    mpl_path = regressions_dir / f"{record.corpus_id}.mpl"
    mpl_path.write_text(source)
    meta = {
        "corpus_id": record.corpus_id,
        "seed": record.seed,
        "grammar_version": GRAMMAR_VERSION,
        "topology": record.topology,
        "np_values": record.np_values,
        "fault": record.fault,
        "divergences": [asdict(div) for div in record.divergences],
        "minimized_statements": _program_size(minimized),
        "source_sha256": hashlib.sha256(source.encode()).hexdigest(),
    }
    (regressions_dir / f"{record.corpus_id}.json").write_text(
        json.dumps(meta, indent=2, sort_keys=True) + "\n"
    )
    return mpl_path


# ---------------------------------------------------------------------------
# Manifest (the checked-in smoke tier)
# ---------------------------------------------------------------------------


def _source_digest(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


def write_manifest(
    path: Path,
    base_seed: int = SMOKE_SEED,
    count: Optional[int] = None,
    tier: str = "smoke",
) -> dict:
    """Mint the tier manifest: seeds plus source digests for drift detection."""
    count = count if count is not None else TIER_SIZES[tier]
    entries = []
    for seed in seed_stream(base_seed, count):
        generated = generate(seed)
        entries.append(
            {
                "corpus_id": generated.corpus_id,
                "seed": generated.seed,
                "topology": generated.axes.get("topology", ""),
                "np_values": list(generated.np_values),
                "source_sha256": _source_digest(generated.source),
            }
        )
    manifest = {
        "grammar_version": GRAMMAR_VERSION,
        "tier": tier,
        "base_seed": base_seed,
        "count": count,
        "programs": entries,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest


def load_manifest(path: Path) -> List[GeneratedProgram]:
    """Regenerate every manifest entry from its id, verifying no drift.

    A digest mismatch means the generator grammar changed without a
    ``GRAMMAR_VERSION`` bump + manifest regeneration — fail loudly.
    """
    manifest = json.loads(Path(path).read_text())
    if manifest["grammar_version"] != GRAMMAR_VERSION:
        raise ValueError(
            f"manifest {path} is grammar v{manifest['grammar_version']}, "
            f"generator is v{GRAMMAR_VERSION}; regenerate it with "
            "'repro sweep --write-manifest'"
        )
    programs: List[GeneratedProgram] = []
    for entry in manifest["programs"]:
        generated = generate_from_id(entry["corpus_id"])
        digest = _source_digest(generated.source)
        if digest != entry["source_sha256"]:
            raise ValueError(
                f"manifest drift for {entry['corpus_id']}: regenerated source "
                f"digest {digest[:12]} != manifest {entry['source_sha256'][:12]}; "
                "the grammar changed — bump GRAMMAR_VERSION and regenerate "
                "the manifest"
            )
        programs.append(generated)
    return programs


# ---------------------------------------------------------------------------
# The sweep driver
# ---------------------------------------------------------------------------


@dataclass
class SweepSummary:
    """Aggregated sweep result (what the CLI prints and CI gates on)."""

    tier: str
    base_seed: int
    grammar_version: int
    total: int = 0
    jobs: int = 1
    counts: Dict[str, int] = field(default_factory=dict)
    by_topology: Dict[str, int] = field(default_factory=dict)
    divergent_ids: List[str] = field(default_factory=list)
    error_ids: List[str] = field(default_factory=list)
    regression_files: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def failures(self) -> int:
        """Outcomes CI must fail on: divergences and harness errors."""
        return self.counts.get("divergent", 0) + self.counts.get("error", 0)

    def to_json(self) -> str:
        return json.dumps({"summary": asdict(self)}, sort_keys=True)

    def table(self) -> str:
        lines = [
            f"sweep tier={self.tier} seed={self.base_seed} "
            f"grammar=v{self.grammar_version} programs={self.total} "
            f"jobs={self.jobs}",
            f"  {'outcome':<12} count",
        ]
        for outcome in _OUTCOMES:
            lines.append(f"  {outcome:<12} {self.counts.get(outcome, 0):>5}")
        if self.by_topology:
            shapes = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.by_topology.items())
            )
            lines.append(f"  topologies: {shapes}")
        if self.divergent_ids:
            lines.append(f"  DIVERGENT: {', '.join(self.divergent_ids)}")
        if self.error_ids:
            lines.append(f"  ERRORS: {', '.join(self.error_ids)}")
        if self.regression_files:
            lines.append(
                f"  regressions filed: {', '.join(self.regression_files)}"
            )
        lines.append(f"  elapsed: {self.elapsed:.2f}s")
        return "\n".join(lines)


def _worker(
    task: Tuple[int, Optional[EngineLimits], Optional[str], bool]
) -> SweepRecord:
    """One pool task.  When ``capture`` is set (the parent has an active
    recorder and this runs in a forked worker, where incrs would land in
    the child's inherited copy and be lost), the work runs under a private
    recorder and the counter snapshot travels home on the record."""
    seed, limits, fault, capture = task
    if not capture:
        return run_one(seed, limits=limits, fault=fault)
    with obs.recording() as recorder:
        record = run_one(seed, limits=limits, fault=fault)
    record.counters = dict(recorder.counters)
    return record


def seeds_for_tier(tier: str, base_seed: int) -> List[int]:
    """The seed list a (non-manifest) tier derives from its base seed."""
    if tier not in TIER_SIZES:
        raise ValueError(f"unknown tier {tier!r} (choose from {sorted(TIER_SIZES)})")
    return seed_stream(base_seed, TIER_SIZES[tier])


def run_sweep(
    seeds: Sequence[int],
    tier: str = "pr",
    base_seed: int = SMOKE_SEED,
    jobs: int = 1,
    limits: Optional[EngineLimits] = None,
    fault: Optional[str] = None,
    shrink: bool = False,
    report_path: Optional[Path] = None,
    regressions_dir: Optional[Path] = None,
    on_record: Optional[Callable[[SweepRecord], None]] = None,
) -> SweepSummary:
    """Differentially check every seed; report, count, and (optionally)
    shrink-and-file divergences."""
    start = time.perf_counter()
    summary = SweepSummary(
        tier=tier,
        base_seed=base_seed,
        grammar_version=GRAMMAR_VERSION,
        jobs=max(1, jobs),
    )
    pooled = summary.jobs > 1 and len(seeds) > 1
    tasks = [(seed, limits, fault, pooled and obs.enabled()) for seed in seeds]
    records: List[SweepRecord] = []

    report_file = None
    if report_path is not None:
        Path(report_path).parent.mkdir(parents=True, exist_ok=True)
        report_file = open(report_path, "w")
    try:
        with obs.span("sweep.run"):
            if pooled:
                with multiprocessing.Pool(summary.jobs) as pool:
                    iterator = pool.imap(_worker, tasks)
                    for record in iterator:
                        records.append(record)
                        _ingest(summary, record, report_file, on_record)
            else:
                for task in tasks:
                    record = _worker(task)
                    records.append(record)
                    _ingest(summary, record, report_file, on_record)

        if shrink:
            for record in records:
                if record.outcome != "divergent":
                    continue
                generated = generate(record.seed)
                reproduces = make_reproducer(
                    generated.np_values, limits=limits, fault=fault
                )
                minimized = shrink_divergence(generated.parse(), reproduces)
                target_dir = Path(regressions_dir or DEFAULT_REGRESSIONS)
                filed = file_regression(record, minimized, target_dir)
                summary.regression_files.append(str(filed))
                obs.incr("sweep.regressions_filed")

        summary.elapsed = time.perf_counter() - start
        if report_file is not None:
            report_file.write(summary.to_json() + "\n")
    finally:
        if report_file is not None:
            report_file.close()
    return summary


def _ingest(
    summary: SweepSummary,
    record: SweepRecord,
    report_file,
    on_record: Optional[Callable[[SweepRecord], None]],
) -> None:
    summary.total += 1
    obs.merge_counters(record.counters)
    summary.counts[record.outcome] = summary.counts.get(record.outcome, 0) + 1
    if record.topology:
        summary.by_topology[record.topology] = (
            summary.by_topology.get(record.topology, 0) + 1
        )
    if record.outcome == "divergent":
        summary.divergent_ids.append(record.corpus_id)
    elif record.outcome == "error":
        summary.error_ids.append(record.corpus_id)
    obs.incr("sweep.programs")
    obs.incr(f"sweep.outcome.{record.outcome}")
    if report_file is not None:
        report_file.write(record.to_json() + "\n")
    if on_record is not None:
        on_record(record)


def smoke_programs(manifest_path: Optional[Path] = None) -> List[GeneratedProgram]:
    """The checked-in smoke corpus (regenerated + drift-verified)."""
    return load_manifest(manifest_path or DEFAULT_MANIFEST)


__all__ = [
    "Divergence",
    "SweepRecord",
    "SweepSummary",
    "TIER_SIZES",
    "SMOKE_SEED",
    "FAULTS",
    "DEFAULT_MANIFEST",
    "DEFAULT_REGRESSIONS",
    "check_program",
    "differential_check",
    "file_regression",
    "load_manifest",
    "make_reproducer",
    "run_one",
    "run_sweep",
    "seeds_for_tier",
    "shrink_divergence",
    "smoke_programs",
    "write_manifest",
]
