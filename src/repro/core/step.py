"""Pure per-step pCFG transfer/match/join logic, independent of scheduling.

This module is the *functional core* of the fixpoint: everything that
happens to **one configuration** — send-receive matching, CFG transitions,
branch splits, send buffering, canonicalization, and the join/widen lattice
operations — with no knowledge of worklists, budgets, checkpoints or
process pools.  :class:`StepCore` is written as a mixin so the two
schedulers layered on top pay zero dispatch overhead:

* :class:`repro.core.engine.PCFGEngine` — the single-process priority
  worklist orchestrator (the reference semantics);
* :class:`repro.core.shard.ShardedEngine` and its worker loop — the
  multi-process sharded executor, which runs the same per-step functions
  inside worker processes and reconciles shard boundaries with the same
  ``_absorb`` join/widen path in the parent.

The split matters for the parallel executor's soundness story: a worker
stepping a configuration uses *exactly* the code the single-process engine
uses, so any divergence between the two modes can only come from
scheduling (the order joins are applied in), never from a second
implementation of the transfer/match semantics.

Canonicalization is deliberately factored in two:

``_canonical_form(locs, state)``
    the *pure* part — prune empty process sets, fold sets that reached the
    same CFG node, sort positions — returning the pCFG node key and the
    canonical state without touching any state table.  Workers use it to
    name successor configurations that belong to *other* shards (boundary
    facts) without joining them.

``_absorb(states, visits, key, state, ...)``
    the *merging* part — intern, first-visit insert, join, visit-counted
    widening, fixed-point detection — against whichever state table the
    caller owns: the engine's global table, a worker's shard-local table,
    or the parent's reconciliation table at a shard boundary.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core import diagnostics
from repro.core.client import (
    Alternatives,
    ClientState,
    Decided,
    MatchResult,
    Split,
)
from repro.core.errors import ClientFault, GiveUp, MalformedCFG
from repro.core.pcfg import PCFGEdge, PCFGNodeKey
from repro.core.topology import MatchRecord
from repro.lang.cfg import NodeKind
from repro.obs import recorder as obs

#: exceptions the schedulers localize to a ``T`` at one pCFG node
RECOVERABLE = (GiveUp, ClientFault, MalformedCFG)


class StepCore:
    """Per-configuration pCFG semantics (mixin; see the module docstring).

    Hosts are expected to provide the attributes ``cfg``, ``client``,
    ``limits``, ``intern_states``, ``_intern`` (the hash-consing table),
    ``_rpo`` (CFG node id -> reverse-postorder rank), ``_prov`` (the active
    provenance recorder or None) and ``_run_event``.
    """

    # -- client-callback guard ---------------------------------------------------

    def _call(self, callback: str, fn, *args):
        """Invoke one client callback, converting unexpected exceptions
        into :class:`ClientFault` so a buggy client cannot take down the
        engine.  ``GiveUp`` and ``MalformedCFG`` pass through — they are
        the sanctioned control-flow signals."""
        try:
            return fn(*args)
        except RECOVERABLE:
            raise
        except Exception as exc:
            raise ClientFault(callback, exc) from exc

    @staticmethod
    def _safe_provenance_data(fn, *args):
        """Call a client provenance hook; a buggy hook must never degrade
        the run, so any exception becomes an error marker in the event."""
        try:
            return fn(*args)
        except Exception as exc:
            return {"provenance_hook_error": f"{type(exc).__name__}: {exc}"}

    # -- one configuration -------------------------------------------------------

    def _step(
        self, key: PCFGNodeKey, state: ClientState, result
    ) -> List[Tuple[List[int], ClientState, str, str]]:
        locs = list(key[0])
        client = self.client
        prov = self._prov
        blocked = [self._is_blocking(nid) for nid in locs]

        # 1. send-receive matching (possibly several alternative worlds)
        match_start = time.perf_counter() if prov is not None else 0.0
        with obs.span("engine.match"):
            matches = self._call(
                "try_match", client.try_match, state, locs, blocked, self.cfg
            )
        obs.incr("engine.match.attempts")
        if prov is not None:
            # the client narrates its candidate pairs and verdicts (HSM
            # surjection / identity-composition, world splits); silent
            # steps — nothing blocked, no candidates — emit no event
            explain = self._safe_provenance_data(
                client.match_explanation
            )
            if explain is not None or matches:
                prov.emit(
                    "match_attempt",
                    node_key=key,
                    parents=(prov.node_event.get(key, self._run_event),),
                    detail=f"{len(matches)} match(es)",
                    data=explain,
                    step=result.steps,
                    dur=time.perf_counter() - match_start,
                )
        if matches:
            obs.incr("engine.matches", len(matches))
            return [self._apply_match(locs, match, result) for match in matches]

        # 2. advance one unblocked process set
        for pos, node_id in enumerate(locs):
            node = self.cfg.node(node_id)
            if node.kind in (NodeKind.RECV, NodeKind.SEND, NodeKind.EXIT):
                continue
            if node.kind == NodeKind.BRANCH:
                with obs.span("engine.branch"):
                    return self._apply_branch(locs, pos, node, state)
            with obs.span("engine.transfer"):
                new_state = self._call("transfer", client.transfer, state, pos, node)
            obs.incr("engine.transfers")
            if new_state is None:
                return []  # infeasible: path is dead
            new_locs = list(locs)
            new_locs[pos] = self._single_successor(node_id)
            return [(new_locs, new_state, "transfer", node.describe())]

        # 3. buffer a send (non-blocking extension)
        for pos, node_id in enumerate(locs):
            node = self.cfg.node(node_id)
            if node.kind == NodeKind.SEND and self._call(
                "can_buffer", client.can_buffer, state, pos, node
            ):
                new_state = self._call(
                    "buffer_send", client.buffer_send, state, pos, node
                )
                obs.incr("engine.buffers")
                new_locs = list(locs)
                new_locs[pos] = self._single_successor(node_id)
                return [(new_locs, new_state, "buffer", node.describe())]

        # 4. everything is blocked
        comm_blocked = [
            pos
            for pos, node_id in enumerate(locs)
            if self.cfg.node(node_id).kind in (NodeKind.SEND, NodeKind.RECV)
        ]
        if not comm_blocked:
            # all process sets at the CFG exit: a terminal pCFG node
            result.final_states.append(state)
            return []
        # blocked on communication with no provable match: if every blocked
        # set might be empty, the block may be vacuous — report, don't fail
        verdicts = [
            self._call("is_empty", client.is_empty, state, pos)
            for pos in comm_blocked
        ]
        if all(verdict is None for verdict in verdicts):
            description = ", ".join(
                f"{self._call('describe_pset', client.describe_pset, state, pos)} at "
                f"{self.cfg.node(locs[pos]).describe()}"
                for pos in comm_blocked
            )
            result.vacuous_blocks.append(description)
            return []
        blocked_info = [
            (locs[pos], self._call("describe_pset", client.describe_pset, state, pos))
            for pos in comm_blocked
        ]
        blocked_desc = "; ".join(
            f"{desc} blocked at {self.cfg.node(node_id).describe()}"
            for node_id, desc in blocked_info
        )
        raise GiveUp(
            f"no provable send-receive match: {blocked_desc}", blocked=blocked_info
        )

    # -- transition helpers ----------------------------------------------------------

    def _apply_match(
        self, locs: List[int], match: MatchResult, result
    ) -> Tuple[List[int], ClientState, str, str]:
        client = self.client
        new_count = self._call("num_psets", client.num_psets, match.state)
        new_locs = list(locs) + [0] * (new_count - len(locs))
        if match.sender_pos is not None:
            new_locs[match.sender_pos] = self._single_successor(match.send_node)
        new_locs[match.recv_pos] = self._single_successor(match.recv_node)
        if match.sender_residue is not None:
            new_locs[match.sender_residue] = match.send_node
        if match.recv_residue is not None:
            new_locs[match.recv_residue] = match.recv_node
        send_label = self.cfg.node(match.send_node).label
        recv_label = self.cfg.node(match.recv_node).label
        result.topology.add(
            MatchRecord(
                send_node=match.send_node,
                recv_node=match.recv_node,
                sender_desc=match.sender_desc,
                receiver_desc=match.receiver_desc,
                send_label=send_label,
                recv_label=recv_label,
                mtype_send=match.mtype_send,
                mtype_recv=match.mtype_recv,
            )
        )
        detail = f"{match.sender_desc} -> {match.receiver_desc}"
        return (new_locs, match.state, "match", detail)

    def _apply_branch(
        self, locs: List[int], pos: int, node, state: ClientState
    ) -> List[Tuple[List[int], ClientState, str, str]]:
        outcome = self._call("branch", self.client.branch, state, pos, node)
        obs.incr("engine.branches")
        if isinstance(outcome, Split):
            obs.incr("engine.splits")
        successors: List[Tuple[List[int], ClientState, str, str]] = []
        if isinstance(outcome, Decided):
            new_locs = list(locs)
            new_locs[pos] = self._branch_target(node.node_id, outcome.label)
            successors.append(
                (new_locs, outcome.state, "branch", f"{node.cond}={outcome.label}")
            )
        elif isinstance(outcome, Split):
            new_locs = list(locs)
            new_locs[pos] = self._branch_target(node.node_id, True)
            new_locs.append(self._branch_target(node.node_id, False))
            if len(new_locs) > self.limits.max_psets:
                raise GiveUp(
                    f"process-set count exceeds p={self.limits.max_psets}",
                    code=diagnostics.GIVEUP_PSET_BOUND,
                )
            successors.append((new_locs, outcome.state, "split", str(node.cond)))
        elif isinstance(outcome, Alternatives):
            for label, alt_state in outcome.outcomes:
                new_locs = list(locs)
                new_locs[pos] = self._branch_target(node.node_id, label)
                successors.append(
                    (new_locs, alt_state, "branch", f"{node.cond}={label}?")
                )
        else:
            raise ClientFault(
                "branch", TypeError(f"unknown branch outcome {outcome!r}")
            )
        return successors

    # -- canonicalization and state merging -----------------------------------------

    def _canonical_form(
        self, locs: Sequence[int], state: ClientState
    ) -> Optional[Tuple[PCFGNodeKey, ClientState, List[int]]]:
        """Canonicalize a raw successor into ``(key, state, merged_nodes)``.

        Pure with respect to any state table: prunes provably-empty process
        sets, folds sets that reached the same CFG node, sorts positions,
        and derives the pCFG node key.  Returns None when every process set
        is empty (the successor vanishes).  ``merged_nodes`` lists the CFG
        nodes where folds happened — recorded only while provenance is on.
        """
        client = self.client
        prov = self._prov
        locs = list(locs)

        # prune provably-empty process sets
        pos = 0
        while pos < len(locs):
            if self._call("is_empty", client.is_empty, state, pos) is True:
                state = self._call("remove_pset", client.remove_pset, state, pos)
                del locs[pos]
            else:
                pos += 1
        if not locs:
            return None

        # merge process sets that reached the same CFG node
        merges: List[int] = []
        merged = True
        while merged:
            merged = False
            for i in range(len(locs)):
                for j in range(i + 1, len(locs)):
                    if locs[i] == locs[j]:
                        state = self._call(
                            "merge_psets", client.merge_psets, state, i, j
                        )
                        if prov is not None:
                            merges.append(locs[i])
                        del locs[j]
                        merged = True
                        break
                if merged:
                    break

        # canonical order: sort positions by CFG location (stable)
        perm = sorted(range(len(locs)), key=lambda p: (locs[p], p))
        if perm != list(range(len(locs))):
            state = self._call("rename", client.rename, state, perm)
            locs = [locs[p] for p in perm]

        key: PCFGNodeKey = (
            tuple(locs),
            self._call("pending_sites", client.pending_sites, state),
        )
        return key, state, merges

    def _absorb(
        self,
        states: Dict[PCFGNodeKey, ClientState],
        visits: Dict[PCFGNodeKey, int],
        key: PCFGNodeKey,
        state: ClientState,
        src_key: Optional[PCFGNodeKey],
        kind: str,
        detail: str,
        result,
        src_event: Optional[int] = None,
    ) -> Optional[PCFGNodeKey]:
        """Merge a canonical ``(key, state)`` into a state table.

        First visit inserts; revisits join (then widen past ``widen_after``
        visits) and detect the per-node fixed point.  Returns the key when
        the node's state changed (the caller should re-schedule it), None
        at a fixed point.  Raises :class:`GiveUp` when the lattice cannot
        represent the combination.
        """
        prov = self._prov
        state = self._interned(state)
        if key not in states:
            states[key] = state
            if prov is not None:
                prov.emit(
                    kind,
                    node_key=key,
                    parents=(src_event,),
                    detail=detail,
                    data=self._safe_provenance_data(
                        self.client.describe_transfer,
                        states.get(src_key) if src_key is not None else None,
                        state,
                    ),
                    step=result.steps,
                )
            return key
        old = states[key]
        if old is state:
            return None  # hash-consed identical state: fixed point, no join
        with obs.span("engine.join"):
            combined = self._call("join", self.client.join, old, state)
        obs.incr("engine.joins")
        if combined is None:
            raise GiveUp(
                f"states at pCFG node {key} cannot be joined",
                code=diagnostics.GIVEUP_PSET_BOUND,
            )
        widened_here = False
        if visits.get(key, 0) >= self.limits.widen_after:
            with obs.span("engine.widen"):
                widened = self._call("widen", self.client.widen, old, combined)
            obs.incr("engine.widenings")
            if widened is None:
                raise GiveUp(
                    f"widening lost process-set bounds at {key}",
                    code=diagnostics.GIVEUP_PSET_BOUND,
                )
            combined = widened
            widened_here = True
        combined = self._interned(combined)
        if old is combined or self._call(
            "states_equal", self.client.states_equal, old, combined
        ):
            return None  # fixed point at this node
        states[key] = combined
        if prov is not None:
            # a join/widen has two causes: the incoming edge's source and
            # whatever last defined this node's previous state
            prov.emit(
                "widen" if widened_here else "join",
                node_key=key,
                parents=(prov.node_event.get(key), src_event),
                detail=f"via {kind}" + (f" {detail}" if detail else ""),
                data=self._safe_provenance_data(
                    self.client.describe_transfer, old, combined
                ),
                step=result.steps,
            )
        return key

    def _canonicalize_into(
        self,
        states: Dict[PCFGNodeKey, ClientState],
        visits: Dict[PCFGNodeKey, int],
        src_key: Optional[PCFGNodeKey],
        locs: Sequence[int],
        state: ClientState,
        kind: str,
        detail: str,
        result,
    ) -> Optional[PCFGNodeKey]:
        with obs.span("engine.canonicalize"):
            return self._canonicalize(
                states, visits, src_key, locs, state, kind, detail, result
            )

    def _canonicalize(
        self,
        states: Dict[PCFGNodeKey, ClientState],
        visits: Dict[PCFGNodeKey, int],
        src_key: Optional[PCFGNodeKey],
        locs: Sequence[int],
        state: ClientState,
        kind: str,
        detail: str,
        result,
    ) -> Optional[PCFGNodeKey]:
        formed = self._canonical_form(locs, state)
        if formed is None:
            return None
        key, state, merges = formed
        if src_key is not None:
            result.explored.add_edge(PCFGEdge(src_key, key, kind, detail))
        else:
            result.explored.add_node(key)

        # causal parent: the event that last defined the source node's
        # state (the run's root event for the entry configuration)
        prov = self._prov
        src_event: Optional[int] = None
        if prov is not None:
            src_event = (
                prov.node_event.get(src_key) if src_key is not None else None
            )
            if src_event is None:
                src_event = self._run_event
            if merges:
                # the fold happened on the way to this node, so it sits
                # between the source's defining event and the transition
                src_event = prov.emit(
                    "merge",
                    parents=(src_event,),
                    detail="psets merged at CFG node(s) "
                    + ",".join(str(nid) for nid in merges),
                    step=result.steps,
                )

        return self._absorb(
            states, visits, key, state, src_key, kind, detail, result, src_event
        )

    def _priority(self, key: PCFGNodeKey) -> tuple:
        """Worklist priority of a pCFG node: the sorted tuple of RPO ranks
        of its CFG locations (lower = scheduled earlier)."""
        default_rank = len(self._rpo)
        return tuple(sorted(self._rpo.get(nid, default_rank) for nid in key[0]))

    def _interned(self, state: ClientState) -> ClientState:
        """Hash-cons ``state``: reuse the canonical object for its fingerprint.

        Clients that cannot fingerprint their states (``state_fingerprint``
        returns None) opt out per state; ``intern_states=False`` disables the
        table entirely.
        """
        if not self.intern_states:
            return state
        fp = self._call(
            "state_fingerprint", self.client.state_fingerprint, state
        )
        if fp is None:
            return state
        cached = self._intern.get(fp)
        if cached is not None:
            obs.incr("engine.intern.hits")
            return cached
        self._intern[fp] = state
        obs.incr("engine.intern.misses")
        return state

    # -- CFG helpers --------------------------------------------------------------

    def _is_blocking(self, node_id: int) -> bool:
        kind = self.cfg.node(node_id).kind
        return kind in (NodeKind.SEND, NodeKind.RECV, NodeKind.EXIT)

    def _single_successor(self, node_id: int) -> int:
        targets = [dst for dst, label in self.cfg.successors(node_id) if label is None]
        if len(targets) != 1:
            raise MalformedCFG(
                node_id, f"expected 1 unlabeled successor, found {len(targets)}"
            )
        return targets[0]

    def _branch_target(self, node_id: int, label: bool) -> int:
        targets = [dst for dst, lbl in self.cfg.successors(node_id) if lbl is label]
        if len(targets) != 1:
            raise MalformedCFG(
                node_id, f"expected 1 {label}-successor, found {len(targets)}"
            )
        return targets[0]
