"""Precision-fallback ladder: always return the best *sound* answer.

The engine's resilience layer guarantees ``run()`` never raises, but a
degraded (``partial`` / ``gave_up``) result still leaves precision on the
table.  This driver climbs down a ladder of progressively cheaper-but-
wider analyses until one produces an ``exact`` answer:

1. ``cartesian`` — the Section VIII Cartesian/HSM client at the caller's
   limits (the most precise client this repository has);
2. ``cartesian-escalated`` — same client with doubled ``widen_after``,
   ``max_psets`` and ``max_steps`` (loses less precision in loops and
   survives deeper splits, at more cost);
3. ``simple-symbolic`` — the Section VII affine client at the escalated
   limits (simpler machinery; immune to faults in the HSM layer);
4. ``mpi-cfg`` — the Section II MPI-CFG baseline.  Never gives up: every
   send is connected to every receive that sequential facts cannot rule
   out.  Sound by construction, over-approximate by design, so the
   synthesized result is marked ``confidence="partial"``.

The first rung whose result is ``exact`` wins; if none is, the baseline
rung is chosen (it always completes), and the report keeps every attempted
rung's outcome so callers can still inspect the sharper partial results.
"""

from __future__ import annotations

import inspect
import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

from repro.core import diagnostics
from repro.core import progress as progress_hooks
from repro.core.engine import AnalysisResult, EngineLimits
from repro.core.topology import MatchRecord, StaticTopology
from repro.obs import recorder as obs
from repro.obs import slog
from repro.obs import trace

RungRunner = Callable[[object, EngineLimits], Tuple[AnalysisResult, object, object]]


@dataclass(frozen=True)
class Rung:
    """One level of the fallback ladder."""

    name: str
    run: RungRunner
    limits: EngineLimits


@dataclass
class RungOutcome:
    """What one attempted rung produced."""

    name: str
    result: AnalysisResult
    cfg: object
    client: object

    @property
    def confidence(self) -> str:
        return self.result.confidence

    @property
    def resumed_from(self) -> str:
        """Where this rung warm-started from ("" for a cold start)."""
        return getattr(self.result, "resumed_from", "")

    def describe(self) -> str:
        resumed = f", resumed from {self.resumed_from}" if self.resumed_from else ""
        return (
            f"{self.name}: {self.result.confidence} "
            f"({diagnostics.summarize(self.result.diagnostics)}, "
            f"{len(self.result.matches)} matches{resumed})"
        )


@dataclass
class FallbackReport:
    """The ladder's full history plus the chosen answer."""

    rungs: List[RungOutcome] = field(default_factory=list)
    chosen: Optional[RungOutcome] = None

    @property
    def result(self) -> AnalysisResult:
        return self.chosen.result

    @property
    def cfg(self):
        return self.chosen.cfg

    @property
    def client(self):
        return self.chosen.client

    @property
    def rung_name(self) -> str:
        return self.chosen.name

    def describe(self) -> str:
        lines = [outcome.describe() for outcome in self.rungs]
        lines.append(f"answer from rung: {self.chosen.name}")
        return "\n".join(lines)


def escalate(limits: EngineLimits) -> EngineLimits:
    """Escalated limits for a retry: double the precision-bounding knobs."""
    return replace(
        limits,
        max_steps=limits.max_steps * 2,
        widen_after=limits.widen_after * 2,
        max_psets=limits.max_psets * 2,
    )


def _run_cartesian(program, limits, *, checkpointer=None, resume=None):
    from repro.analyses.cartesian import analyze_cartesian

    return analyze_cartesian(
        program, limits=limits, checkpointer=checkpointer, resume=resume
    )


def _run_simple_symbolic(program, limits, *, checkpointer=None, resume=None):
    from repro.analyses.simple_symbolic import analyze_program

    return analyze_program(
        program, limits=limits, checkpointer=checkpointer, resume=resume
    )


def _run_mpi_cfg_baseline(program, limits):
    """The last rung: the MPI-CFG baseline, synthesized as an AnalysisResult.

    Sound (a superset of every true topology, Section II) and total — it
    cannot give up — but over-approximate, hence ``confidence="partial"``
    with no diagnostics (nothing *failed*; precision was traded away
    wholesale).
    """
    from repro.baselines.mpi_cfg import build_mpi_cfg
    from repro.lang.cfg import build_cfg

    cfg = build_cfg(program)
    baseline = build_mpi_cfg(program, cfg=cfg)
    topology = StaticTopology()
    for send_node, recv_node in sorted(baseline.comm_edges):
        topology.add(
            MatchRecord(
                send_node=send_node,
                recv_node=recv_node,
                sender_desc="[0..np-1]",
                receiver_desc="[0..np-1]",
                send_label=cfg.node(send_node).label,
                recv_label=cfg.node(recv_node).label,
            )
        )
    result = AnalysisResult(topology=topology)
    result.confidence = diagnostics.PARTIAL
    return result, cfg, baseline


def default_ladder(limits: Optional[EngineLimits] = None) -> List[Rung]:
    """The standard four-rung ladder (see the module docstring)."""
    base = limits or EngineLimits()
    boosted = escalate(base)
    return [
        Rung("cartesian", _run_cartesian, base),
        Rung("cartesian-escalated", _run_cartesian, boosted),
        Rung("simple-symbolic", _run_simple_symbolic, boosted),
        Rung("mpi-cfg", _run_mpi_cfg_baseline, base),
    ]


def baseline_ladder(limits: Optional[EngineLimits] = None) -> List[Rung]:
    """A single-rung ladder: only the total MPI-CFG baseline.

    The analysis service's degraded-mode answer under load pressure —
    cheap, total, sound-but-wide — delivered through the same
    ``analyze_with_fallback`` machinery so reports stay uniform.
    """
    base = limits or EngineLimits()
    return [Rung("mpi-cfg", _run_mpi_cfg_baseline, base)]


def _supports_checkpointing(runner) -> bool:
    """True when a rung runner accepts ``checkpointer``/``resume`` kwargs."""
    try:
        params = inspect.signature(runner).parameters
    except (TypeError, ValueError):
        return False
    return "checkpointer" in params and "resume" in params


def _carryable_snapshot(result: AnalysisResult):
    """A budget-trip snapshot safe to warm-start the *next* rung from.

    Only pure budget exhaustion qualifies: if any other (non-INFO)
    diagnostic fired, the captured states may already be poisoned by the
    very imprecision or fault the escalated rung exists to avoid, so the
    next rung must cold-start.
    """
    snap = getattr(result, "snapshot", None)
    if snap is None:
        return None
    meaningful = [d for d in result.diagnostics if d.severity != diagnostics.INFO]
    if meaningful and all(d.code in diagnostics.BUDGET_CODES for d in meaningful):
        return snap
    return None


def _pool_context():
    """fork where available (cheap, no re-import), else the platform default."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _rung_worker(task: tuple) -> tuple:
    """Run one ladder rung in a worker process; returns its outcome plus a
    counter snapshot so the parent recorder keeps the rung's obs counts."""
    program, index, runner, limits, capture = task
    if capture:
        with obs.recording() as recorder:
            result, cfg, client = runner(program, limits)
        return index, result, cfg, client, dict(recorder.counters)
    result, cfg, client = runner(program, limits)
    return index, result, cfg, client, None


def _parallel_rungs(program, rungs: List[Rung], jobs: int) -> Optional[FallbackReport]:
    """Speculatively run every rung concurrently; pick the first exact one
    in ladder order.

    Unlike the serial climb, all rungs run (their results are all kept in
    the report) and budget-trip snapshots cannot warm-start the next rung
    — speculation trades that for wall-clock.  Returns None when the
    program or ladder cannot cross a process boundary; the caller then
    climbs serially.
    """
    try:
        pickle.dumps((program, rungs), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        obs.incr("driver.rung.parallel_fallbacks")
        slog.info("driver.rungs_fallback", reason=str(exc))
        return None
    capture = obs.enabled()
    report = FallbackReport()
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(rungs)), mp_context=_pool_context()
    ) as pool:
        futures = [
            pool.submit(_rung_worker, (program, i, rung.run, rung.limits, capture))
            for i, rung in enumerate(rungs)
        ]
        for rung, future in zip(rungs, futures):
            try:
                _, result, cfg, client, counters = future.result()
            except Exception as exc:
                # a dead or broken worker costs us one rung, not the run
                obs.incr("driver.rung.worker_lost")
                slog.warning(
                    "driver.rung_worker_lost", name=rung.name, error=str(exc)
                )
                with obs.span(f"driver.rung.{rung.name}"):
                    result, cfg, client = rung.run(program, rung.limits)
                counters = None
            obs.merge_counters(counters)
            outcome = RungOutcome(rung.name, result, cfg, client)
            report.rungs.append(outcome)
            obs.incr(f"driver.rung.{rung.name}.{result.confidence}")
            slog.info(
                "driver.rung",
                name=rung.name,
                confidence=result.confidence,
                matches=len(result.matches),
                diagnostics=diagnostics.summarize(result.diagnostics),
                resumed_from=None,
            )
    report.chosen = next(
        (o for o in report.rungs if o.confidence == diagnostics.EXACT),
        report.rungs[-1],
    )
    slog.info(
        "driver.chosen",
        name=report.chosen.name,
        confidence=report.chosen.confidence,
    )
    return report


def analyze_with_fallback(
    program_or_spec,
    limits: Optional[EngineLimits] = None,
    ladder: Optional[List[Rung]] = None,
    *,
    checkpointer=None,
    resume=None,
    jobs: int = 1,
    progress=None,
) -> FallbackReport:
    """Climb the fallback ladder until a rung answers exactly.

    Returns a :class:`FallbackReport`; ``report.chosen`` is the first
    ``exact`` rung, or the final (baseline) rung when none is exact.
    Rungs after the winning one are not run.

    ``checkpointer`` (a :class:`repro.core.checkpoint.Checkpointer`) and
    ``resume`` (a snapshot or path for the *first* rung) are forwarded to
    rungs whose runners accept them.  When a rung trips a budget, its
    final snapshot warm-starts the next rung instead of recomputing the
    explored prefix from scratch — but only when the tripped run was
    otherwise clean (see :func:`_carryable_snapshot`); a rung whose client
    class differs from the snapshot's is detected by the engine and falls
    back to a cold start.

    ``jobs > 1`` runs the rungs *speculatively* in a process pool (see
    :func:`_parallel_rungs`); checkpointing/resume forces the serial
    climb, whose warm-start carry speculation cannot reproduce.

    ``progress`` (a callable of one event dict) receives a ``rung``
    event as each rung starts, plus the engine/shard heartbeats emitted
    below it (installed ambiently via :mod:`repro.core.progress`, so
    rung runners need no signature change).  Streaming forces the serial
    climb: speculation would interleave rungs' events meaninglessly.
    """
    if hasattr(program_or_spec, "parse"):
        program = program_or_spec.parse()
    else:
        program = program_or_spec
    rungs = ladder if ladder is not None else default_ladder(limits)
    if jobs > 1 and checkpointer is None and resume is None and progress is None:
        report = _parallel_rungs(program, rungs, jobs)
        if report is not None:
            return report
    report = FallbackReport()
    carry = resume
    for rung in rungs:
        if progress is not None:
            try:
                progress({"event": "rung", "rung": rung.name})
            except Exception:  # a throwing subscriber must not abort the climb
                progress = None
        wants_ckpt = (checkpointer is not None or carry is not None)
        with obs.span(f"driver.rung.{rung.name}"), trace.span(
            f"driver.rung.{rung.name}"
        ), progress_hooks.installed(progress):
            if wants_ckpt and _supports_checkpointing(rung.run):
                result, cfg, client = rung.run(
                    program, rung.limits, checkpointer=checkpointer, resume=carry
                )
            else:
                result, cfg, client = rung.run(program, rung.limits)
        outcome = RungOutcome(rung.name, result, cfg, client)
        report.rungs.append(outcome)
        obs.incr(f"driver.rung.{rung.name}.{result.confidence}")
        if outcome.resumed_from:
            obs.incr("driver.rung.warm_start")
        slog.info(
            "driver.rung",
            name=rung.name,
            confidence=result.confidence,
            matches=len(result.matches),
            diagnostics=diagnostics.summarize(result.diagnostics),
            resumed_from=outcome.resumed_from or None,
        )
        if result.confidence == diagnostics.EXACT:
            report.chosen = outcome
            slog.info(
                "driver.chosen", name=outcome.name, confidence=diagnostics.EXACT
            )
            return report
        carry = _carryable_snapshot(result)
    # nothing exact: the last rung (the baseline, for the default ladder)
    # is the answer of record
    report.chosen = report.rungs[-1]
    slog.info(
        "driver.chosen",
        name=report.chosen.name,
        confidence=report.chosen.confidence,
    )
    return report


def _batch_worker(task: tuple) -> tuple:
    """Analyze one batch item in a worker process."""
    item, limits, ladder, capture = task
    if capture:
        with obs.recording() as recorder:
            report = analyze_with_fallback(item, limits=limits, ladder=ladder)
        return report, dict(recorder.counters)
    return analyze_with_fallback(item, limits=limits, ladder=ladder), None


def analyze_batch(
    programs_or_specs,
    limits: Optional[EngineLimits] = None,
    ladder: Optional[List[Rung]] = None,
    jobs: int = 1,
):
    """Run the fallback ladder over many programs.

    Yields ``(item, FallbackReport)`` pairs in input order.  This is the
    batch entry point the corpus sweep's in-process path and the future
    analysis-service batch endpoint share: one ladder configuration,
    many programs, per-program isolation (one program's failure cannot
    abort the batch — ``analyze_with_fallback`` never raises for
    analysis-level failures, and the ladder's baseline rung is total).

    ``jobs > 1`` fans the programs out over a process pool (whole-program
    parallelism: each worker climbs the full ladder for its item) and
    merges each worker's obs-counter snapshot back into the parent
    recorder.  The input is materialized up front in that mode; items are
    still yielded in input order as their results arrive.  An unpicklable
    program/ladder degrades to the serial loop; a worker that dies is
    retried in-process, so the batch always completes.
    """
    if jobs <= 1:
        for item in programs_or_specs:
            with obs.span("driver.batch.program"):
                report = analyze_with_fallback(item, limits=limits, ladder=ladder)
            obs.incr(f"driver.batch.{report.result.confidence}")
            yield item, report
        return
    items = list(programs_or_specs)
    try:
        pickle.dumps((items, limits, ladder), protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        obs.incr("driver.batch.parallel_fallbacks")
        slog.info("driver.batch_fallback", reason=str(exc))
        for item in items:
            with obs.span("driver.batch.program"):
                report = analyze_with_fallback(item, limits=limits, ladder=ladder)
            obs.incr(f"driver.batch.{report.result.confidence}")
            yield item, report
        return
    capture = obs.enabled()
    with ProcessPoolExecutor(
        max_workers=jobs, mp_context=_pool_context()
    ) as pool:
        futures = [
            pool.submit(_batch_worker, (item, limits, ladder, capture))
            for item in items
        ]
        for item, future in zip(items, futures):
            try:
                report, counters = future.result()
            except Exception as exc:
                obs.incr("driver.batch.worker_lost")
                slog.warning("driver.batch_worker_lost", error=str(exc))
                with obs.span("driver.batch.program"):
                    report = analyze_with_fallback(
                        item, limits=limits, ladder=ladder
                    )
                counters = None
            obs.merge_counters(counters)
            obs.incr(f"driver.batch.{report.result.confidence}")
            yield item, report
