"""The pCFG dataflow engine: Fig. 4's ``propagate``, operationalized.

The engine maintains abstract *configurations*: a tuple of CFG locations
(one per process set, positionally aligned with the client state's process
sets) plus the client state.  Configuration identity — the pCFG node — is
the sorted location tuple together with the multiset of in-flight send
sites.  Each engine step consumes one configuration and produces its pCFG
successors by, in priority order:

1. an exact send-receive match (``matchSendsRecvs``),
2. a CFG transition of one unblocked process set (transfer / branch,
   including rank-dependent branch *splits*),
3. buffering a send (the Section X non-blocking extension, when the client
   allows it),
4. termination, or the conservative ``T`` give-up when process sets are
   blocked on communication that cannot be matched.

Successor states are merged into previously-visited pCFG nodes via the
client's ``join``; nodes revisited more than ``widen_after`` times are
widened so loops converge to their invariant.

Scheduling and sharing
----------------------

The worklist is a priority queue keyed by reverse-postorder over the CFG:
a configuration's priority is the sorted tuple of RPO ranks of its
process-set locations, so upstream configurations are stabilized before
their downstream consumers and loop bodies settle before loop exits are
re-examined.  Ties break FIFO.  A membership set suppresses duplicate
enqueues (counted as ``engine.worklist.dedup``).

Canonicalized states are *interned* in a per-run hash-consing table keyed
by the client's ``state_fingerprint``: when a newly produced state is
semantically identical to one already seen, the existing object is reused
(``engine.intern.hits``), which turns the client's join / fixed-point
equality checks into pointer comparisons on the hot revisit path.

Resilience
----------

Section VI's ``T`` is a *local* answer, and the engine treats it as one:
a ``GiveUp`` (or an unexpected exception escaping a client callback, or a
malformed-CFG error) poisons only the offending configuration — the node
is marked ``T``, a :class:`~repro.core.diagnostics.Diagnostic` is
recorded, and the worklist keeps draining, so the rest of the topology,
final states and node invariants survive as a sound partial result.
Resource budgets (``max_steps``, ``deadline_sec``, ``max_state_bytes``)
end the run with a ``partial`` result plus a budget diagnostic, never an
exception.  ``EngineLimits.strict`` restores the paper-fidelity
abort-on-first-failure behavior; in either mode ``run()`` never raises.

Checkpoint/resume
-----------------

The engine's fixpoint state is *capturable*: a budget trip snapshots the
live worklist, per-node states, visit counts and step accounting into
``AnalysisResult.snapshot`` (see :mod:`repro.core.checkpoint`), and a
configured :class:`~repro.core.checkpoint.Checkpointer` additionally
persists snapshots to disk — periodically (``every_steps``), at every
budget trip, and from an ``atexit`` hook when the interpreter dies with a
run in flight.  ``run(resume=...)`` warm-starts from a snapshot object or
file after verifying the CFG fingerprint and client class; any rejected
snapshot degrades to a cold start with a ``CHECKPOINT_CORRUPT`` /
``CHECKPOINT_MISMATCH`` diagnostic.  Budget-trip snapshots are taken at a
step boundary, so a resumed run replays the remaining schedule exactly and
converges to the identical result (same topology, states and step count)
as an uninterrupted run.
"""

from __future__ import annotations

import atexit
import heapq
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core import checkpoint as checkpoint_mod
from repro.core import diagnostics
from repro.core import progress as progress_hooks
from repro.core.client import ClientAnalysis, ClientState
from repro.core.diagnostics import EXACT, Diagnostic
from repro.core.errors import ClientFault, GiveUp, MalformedCFG
from repro.core.pcfg import ExploredPCFG, PCFGNodeKey
from repro.core.step import RECOVERABLE, StepCore
from repro.core.topology import MatchRecord, StaticTopology
from repro.lang.cfg import CFG
from repro.obs import provenance, slog
from repro.obs import recorder as obs

#: exceptions the run loop localizes to a ``T`` at one pCFG node
#: (re-exported from :mod:`repro.core.step` for backward compatibility)
_RECOVERABLE = RECOVERABLE

#: recoverable-failure type -> provenance event kind / slog event name
_FAILURE_KINDS = {
    ClientFault: "client_fault",
    MalformedCFG: "cfg_malformed",
    GiveUp: "giveup",
}


@dataclass
class EngineLimits:
    """Safety, precision, and resource-budget knobs."""

    #: maximum engine steps before ending the run (runaway guard)
    max_steps: int = 20_000
    #: joins at a pCFG node before switching to widening
    widen_after: int = 2
    #: maximum process sets per configuration (the paper's ``p``)
    max_psets: int = 12
    #: wall-clock budget for one ``run()`` in seconds (None: unlimited)
    deadline_sec: Optional[float] = None
    #: retained-state budget in bytes (None: unlimited).  Measured with
    #: ``tracemalloc`` when tracing is active, otherwise approximated by
    #: shallow ``sys.getsizeof`` over the per-node state table — an
    #: order-of-magnitude guard, not an exact accounting.
    max_state_bytes: Optional[int] = None
    #: steps between memory-budget samples (the sample is not free)
    memory_check_every: int = 64
    #: paper-fidelity mode: abort the whole run on the first failure
    #: instead of localizing ``T`` to the offending pCFG node
    strict: bool = False


@dataclass
class AnalysisResult:
    """Everything the analysis established."""

    topology: StaticTopology
    #: True when any degradation occurred (the result is not exact)
    gave_up: bool = False
    #: first degradation's message (see ``diagnostics`` for all of them)
    give_up_reason: str = ""
    #: configurations where every process set reached the CFG exit
    final_states: List[ClientState] = field(default_factory=list)
    #: configurations that were blocked but only by possibly-empty psets
    vacuous_blocks: List[str] = field(default_factory=list)
    explored: ExploredPCFG = field(default_factory=ExploredPCFG)
    steps: int = 0
    #: (CFG node id, process-set description) pairs blocked when giving up
    blocked_at_giveup: List = field(default_factory=list)
    #: states per pCFG node (for inspecting loop invariants etc.)
    node_states: Dict[PCFGNodeKey, ClientState] = field(default_factory=dict)
    #: structured degradation records, in occurrence order
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: ``exact`` | ``partial`` | ``gave_up`` (see :mod:`repro.core.diagnostics`)
    confidence: str = EXACT  # the `diagnostics` field shadows the module here
    #: pCFG nodes that fell to ``T`` (localized degradation)
    top_nodes: Set[PCFGNodeKey] = field(default_factory=set)
    #: budget-trip snapshot of the live fixpoint state (resume source for
    #: later runs / the fallback ladder); None when the run completed or
    #: the state could not be captured
    snapshot: Optional[object] = field(default=None, repr=False, compare=False)
    #: where this run warm-started from ("" = cold start)
    resumed_from: str = ""
    #: last checkpoint file written during this run, if any
    checkpoint_path: Optional[str] = None

    @property
    def matches(self):
        """The (send CFG node, recv CFG node) match relation."""
        return self.topology.node_edges()

    @property
    def match_records(self) -> List[MatchRecord]:
        """Symbolic match records."""
        return self.topology.records


class PCFGEngine(StepCore):
    """Runs a client analysis over a program's pCFG.

    The per-configuration semantics (match/transfer/branch/buffer and the
    join/widen lattice merges) live in :class:`repro.core.step.StepCore`;
    this class owns the *scheduling*: the priority worklist, budgets,
    degradation, and checkpoint/resume.  ``run()`` never raises: every
    failure mode — client give-up, client callback fault, malformed CFG,
    tripped budget — lands in ``AnalysisResult.diagnostics`` with a stable
    code.
    """

    def __init__(
        self,
        cfg: CFG,
        client: ClientAnalysis,
        limits: Optional[EngineLimits] = None,
        intern_states: bool = True,
        checkpointer: Optional["checkpoint_mod.Checkpointer"] = None,
        progress: Optional[progress_hooks.ProgressHook] = None,
    ):
        self.cfg = cfg
        self.client = client
        self.limits = limits or EngineLimits()
        self.intern_states = intern_states
        #: on-disk checkpoint sink (None: budget-trip snapshots stay in memory)
        self.checkpointer = checkpointer
        #: live streaming heartbeat sink — explicit argument wins, else the
        #: ambient per-thread hook installed by the driver around each rung
        self._progress = progress if progress is not None else progress_hooks.current()
        #: per-run hash-consing table: state fingerprint -> canonical state
        self._intern: Dict[Any, ClientState] = {}
        #: live fixpoint state while a run is in flight (the atexit hook's view)
        self._live: Optional[tuple] = None
        #: CFG node id -> reverse-postorder rank (worklist priority domain)
        self._rpo: Dict[int, int] = cfg.rpo_index()
        #: the provenance flight recorder active for the current run (None
        #: when disabled — every emit site guards on this, so a disabled
        #: run pays one attribute check per site)
        self._prov: Optional[provenance.ProvenanceRecorder] = None
        #: provenance id of the current run's root event
        self._run_event: Optional[int] = None

    # -- driving -----------------------------------------------------------------

    def run(self, resume=None) -> AnalysisResult:
        """Explore to fixed point and return the analysis result.

        ``resume`` optionally warm-starts the fixpoint from a
        :class:`~repro.core.checkpoint.Snapshot`, or a path to a snapshot
        file.  A snapshot that fails integrity or identity checks is
        rejected with a ``CHECKPOINT_CORRUPT`` / ``CHECKPOINT_MISMATCH``
        diagnostic and the run degrades to a cold start — resuming never
        raises and never taints the result.
        """
        with obs.span("engine.run"):
            return self._run(resume)

    def _run(self, resume=None) -> AnalysisResult:
        limits = self.limits
        result = AnalysisResult(topology=StaticTopology())
        client = self.client
        prov = self._prov = provenance.active()
        if prov is not None:
            self._run_event = prov.emit(
                "run_start",
                detail=f"client={type(client).__name__}",
                data={"cfg_nodes": len(self.cfg.nodes), "limits": {
                    "max_steps": limits.max_steps,
                    "widen_after": limits.widen_after,
                    "max_psets": limits.max_psets,
                    "strict": limits.strict,
                }},
            )
        else:
            self._run_event = None
        deadline = None
        if limits.deadline_sec is not None:
            deadline = time.monotonic() + limits.deadline_sec

        states: Dict[PCFGNodeKey, ClientState] = {}
        visits: Dict[PCFGNodeKey, int] = {}
        self._intern = {}

        # Priority worklist: process configurations in reverse-postorder of
        # their CFG locations so predecessors stabilize before successors.
        # The sequence number breaks priority ties FIFO.
        worklist: List[Tuple[tuple, int, PCFGNodeKey]] = []
        pending = set()
        seq_box = [0]

        def enqueue(key: PCFGNodeKey) -> None:
            if key in pending:
                obs.incr("engine.worklist.dedup")
                return
            pending.add(key)
            heapq.heappush(worklist, (self._priority(key), seq_box[0], key))
            seq_box[0] += 1

        restored = None
        if resume is not None:
            restored = self._try_resume(resume, result)
        if restored is not None:
            restored_run, source = restored
            result.steps = restored_run.steps
            seq_box[0] = restored_run.seq
            worklist = restored_run.worklist
            heapq.heapify(worklist)  # serialized in heap order; cheap re-check
            states = restored_run.states
            visits = restored_run.visits
            result.topology = restored_run.topology
            result.final_states = restored_run.final_states
            result.vacuous_blocks = restored_run.vacuous_blocks
            result.explored = restored_run.explored
            result.blocked_at_giveup = restored_run.blocked_at_giveup
            result.top_nodes = restored_run.top_nodes
            # Budget diagnostics describe only the interrupted run — the
            # resumed run re-evaluates its own budgets — so strip them and
            # recompute the give-up summary from what remains.
            kept = [
                diag
                for diag in restored_run.diagnostics
                if diag.code not in diagnostics.BUDGET_CODES
            ]
            result.diagnostics.extend(kept)
            result.gave_up = any(
                diag.severity != diagnostics.INFO for diag in kept
            )
            result.give_up_reason = next(
                (
                    diag.message
                    for diag in kept
                    if diag.severity != diagnostics.INFO
                ),
                "",
            )
            # re-intern restored states so identity fast paths fire again
            for key in list(states):
                states[key] = self._interned(states[key])
            pending.update(key for _, _, key in worklist)
            result.resumed_from = source
            obs.incr("engine.ckpt.resumes")
            if prov is not None:
                # splice the interrupted run's journal in front of ours so
                # the resumed causal history is seamless, then record the
                # stitch point
                if restored_run.provenance:
                    prov.preload(restored_run.provenance)
                self._run_event = prov.emit(
                    "checkpoint_resume",
                    parents=(prov.last_event_id,),
                    detail=source,
                    step=result.steps,
                )
            slog.info("engine.resume", source=source, steps=result.steps)
        else:
            try:
                initial = self._call("initial", client.initial)
            except _RECOVERABLE as failure:
                self._degrade(result, None, failure)
                self._finalize(result, aborted=True)
                return result
            try:
                entry_key = self._canonicalize_into(
                    states, visits, None, [self.cfg.entry], initial, "entry", "",
                    result,
                )
            except _RECOVERABLE as failure:
                # a client raising from is_empty/merge_psets/join on the very
                # first state must yield a gave_up result, not a traceback
                self._degrade(result, None, failure)
                result.node_states = states
                self._finalize(result, aborted=True)
                return result
            if entry_key is not None:
                enqueue(entry_key)

        #: key popped for the current iteration, not yet fully processed —
        #: an atexit flush must put it back to capture a consistent boundary
        inflight_box: List[Optional[PCFGNodeKey]] = [None]
        if self.checkpointer is not None:
            self._live = (result, states, visits, worklist, seq_box, inflight_box)
            atexit.register(self._atexit_flush)

        aborted = False
        tripped = False
        try:
            while worklist:
                result.steps += 1
                obs.incr("engine.steps")
                obs.observe("engine.worklist.length", len(worklist))
                if self._progress is not None and (
                    result.steps == 1
                    or result.steps % progress_hooks.HEARTBEAT_EVERY_STEPS == 0
                ):
                    try:
                        self._progress({
                            "event": "progress",
                            "phase": "engine",
                            "steps": result.steps,
                            "worklist": len(worklist),
                        })
                    except Exception:
                        self._progress = None
                if result.steps > limits.max_steps:
                    self._record_budget(
                        result,
                        diagnostics.BUDGET_STEPS,
                        f"engine step limit {limits.max_steps} exceeded",
                    )
                    tripped = True
                    break
                if deadline is not None and time.monotonic() > deadline:
                    self._record_budget(
                        result,
                        diagnostics.BUDGET_DEADLINE,
                        f"wall-clock deadline {limits.deadline_sec}s exceeded "
                        f"after {result.steps} steps",
                    )
                    tripped = True
                    break
                if (
                    limits.max_state_bytes is not None
                    and result.steps % max(1, limits.memory_check_every) == 0
                ):
                    usage = self._state_bytes(states)
                    if usage > limits.max_state_bytes:
                        self._record_budget(
                            result,
                            diagnostics.BUDGET_MEMORY,
                            f"retained state ~{usage} bytes exceeds budget "
                            f"{limits.max_state_bytes}",
                        )
                        tripped = True
                        break
                _, _, key = heapq.heappop(worklist)
                pending.discard(key)
                inflight_box[0] = key
                visits[key] = visits.get(key, 0) + 1
                state = states[key]
                try:
                    with obs.span("engine.step"):
                        successors = self._step(key, state, result)
                except _RECOVERABLE as failure:
                    if self._degrade(result, key, failure):
                        continue
                    aborted = True
                    break
                for locs, succ_state, kind, detail in successors:
                    try:
                        succ_key = self._canonicalize_into(
                            states, visits, key, locs, succ_state, kind, detail,
                            result,
                        )
                    except _RECOVERABLE as failure:
                        # poison the producing node: this successor is lost,
                        # siblings already enqueued stay valid
                        if self._degrade(result, key, failure):
                            continue
                        aborted = True
                        break
                    if succ_key is not None:
                        enqueue(succ_key)
                if aborted:
                    break
                inflight_box[0] = None
                if (
                    self.checkpointer is not None
                    and self.checkpointer.every_steps > 0
                    and result.steps % self.checkpointer.every_steps == 0
                ):
                    with obs.span("engine.checkpoint"):
                        snap = self._capture(
                            result, states, visits, worklist, seq_box[0]
                        )
                        if snap is not None:
                            self._write_checkpoint(snap, result)
        finally:
            if self.checkpointer is not None:
                atexit.unregister(self._atexit_flush)
                self._live = None
        if tripped:
            # The tripping iteration popped nothing, so the snapshot records
            # one step fewer: a resumed run then completes with exactly the
            # step count an uninterrupted run would report.
            snap = self._capture(
                result,
                states,
                visits,
                worklist,
                seq_box[0],
                steps_override=result.steps - 1,
            )
            if snap is not None:
                result.snapshot = snap
                if self.checkpointer is not None:
                    self._write_checkpoint(snap, result)
        result.node_states = states
        self._finalize(result, aborted)
        return result

    # -- checkpoint/resume plumbing ---------------------------------------------

    def _try_resume(self, resume, result: AnalysisResult):
        """Validate and decode a resume source.

        Returns ``(RestoredRun, source_description)`` on success, None on
        any failure — recording an INFO-severity ``CHECKPOINT_*``
        diagnostic so the cold start that follows is still ``exact`` if
        nothing else degrades.
        """
        try:
            if isinstance(resume, (str, Path)):
                source = f"checkpoint:{resume}"
                snapshot = checkpoint_mod.load_snapshot(resume)
            elif isinstance(resume, checkpoint_mod.Snapshot):
                snapshot = resume
                source = snapshot.describe()
            else:
                raise checkpoint_mod.SnapshotError(
                    diagnostics.CHECKPOINT_MISMATCH,
                    f"unsupported resume source {type(resume).__name__}",
                )
            restored_run = checkpoint_mod.restore_run(snapshot, self)
        except checkpoint_mod.SnapshotError as exc:
            prov = self._prov
            event_id = None
            if prov is not None:
                event_id = prov.emit(
                    "checkpoint_rejected",
                    parents=(self._run_event,),
                    detail=f"{exc.code}: {exc}",
                )
            result.diagnostics.append(
                Diagnostic(
                    code=exc.code,
                    message=f"{exc}; falling back to a cold start",
                    severity=diagnostics.INFO,
                    provenance_id=event_id,
                )
            )
            if exc.code == diagnostics.CHECKPOINT_CORRUPT:
                obs.incr("engine.ckpt.corrupt")
            else:
                obs.incr("engine.ckpt.mismatch")
            slog.warning("engine.resume_rejected", code=exc.code, error=str(exc))
            return None
        return restored_run, source

    def _capture(
        self, result, states, visits, worklist, seq_next, steps_override=None
    ):
        """Best-effort snapshot of the live fixpoint state (None on failure).

        Capture exercises the client's snapshot codecs; a client without
        registered codecs simply opts out — the run itself is never
        affected by a failed capture.
        """
        saved = result.steps
        if steps_override is not None:
            result.steps = steps_override
        try:
            return checkpoint_mod.capture_run(
                self, result, states, visits, worklist, seq_next
            )
        except Exception:
            obs.incr("engine.ckpt.capture_errors")
            return None
        finally:
            result.steps = saved

    def _write_checkpoint(self, snap, result: AnalysisResult) -> None:
        """Persist a snapshot; a failed write never fails the run.

        An I/O failure (``CHECKPOINT_IO``) is surfaced once per run as an
        INFO diagnostic — the analysis result stays sound (and can stay
        ``exact``), but the caller learns crash-safety silently lapsed.
        """
        try:
            path = self.checkpointer.write(snap)
            result.checkpoint_path = str(path)
        except Exception as exc:
            obs.incr("engine.ckpt.write_errors")
            code = getattr(exc, "code", diagnostics.CHECKPOINT_IO)
            if not any(d.code == code for d in result.diagnostics):
                result.diagnostics.append(
                    Diagnostic(
                        code=code,
                        message=f"checkpoint write failed: {exc}; "
                                "the run continues without this snapshot",
                        severity=diagnostics.INFO,
                    )
                )
            slog.warning("engine.checkpoint_failed", code=code, error=str(exc))
            return
        prov = self._prov
        if prov is not None:
            prov.emit(
                "checkpoint_write",
                parents=(
                    prov.last_event_id
                    if prov.last_event_id is not None
                    else self._run_event,
                ),
                detail=str(path),
                step=result.steps,
            )
        slog.info("engine.checkpoint", path=str(path), steps=result.steps)

    def _atexit_flush(self) -> None:
        """Interpreter exiting with a run in flight: flush a last snapshot.

        The flush may land mid-iteration: the current key is popped, its
        visit already counted, but its successors not yet enqueued.  The
        snapshot rolls that iteration back — re-enqueue the key, undo its
        visit and step — so it captures the last consistent boundary.
        """
        live = self._live
        if live is None or self.checkpointer is None:
            return
        result, states, visits, worklist, seq_box, inflight_box = live
        steps = result.steps
        inflight = inflight_box[0]
        if inflight is not None:
            worklist = list(worklist) + [
                (self._priority(inflight), seq_box[0], inflight)
            ]
            visits = dict(visits)
            visits[inflight] = visits.get(inflight, 1) - 1
            steps -= 1
        snap = self._capture(
            result, states, visits, worklist, seq_box[0], steps_override=steps
        )
        if snap is not None:
            self._write_checkpoint(snap, result)
            obs.incr("engine.ckpt.atexit_writes")

    # -- degradation and budgets ---------------------------------------------------

    def _degrade(
        self,
        result: AnalysisResult,
        key: Optional[PCFGNodeKey],
        failure: Exception,
    ) -> bool:
        """Record ``failure`` and poison ``key`` with a local ``T``.

        Returns True when the run may continue draining the worklist
        (non-strict mode), False when it must abort (strict mode)."""
        prov = self._prov
        event_id = None
        if prov is not None:
            parent = prov.node_event.get(key) if key is not None else None
            event_id = prov.emit(
                _FAILURE_KINDS[type(failure)],
                node_key=key,
                parents=(parent if parent is not None else self._run_event,),
                detail=str(failure),
                step=result.steps,
            )
        if isinstance(failure, ClientFault):
            diag = Diagnostic(
                code=diagnostics.CLIENT_FAULT,
                message=str(failure),
                node_key=key,
                callback=failure.callback,
                provenance_id=event_id,
            )
            obs.incr("engine.recover.client_fault")
        elif isinstance(failure, MalformedCFG):
            diag = Diagnostic(
                code=diagnostics.CFG_MALFORMED,
                message=str(failure),
                node_key=key,
                provenance_id=event_id,
            )
        else:  # GiveUp
            diag = Diagnostic(
                code=failure.code,
                message=failure.reason,
                node_key=key,
                blocked=tuple((nid, desc) for nid, desc in failure.blocked),
                provenance_id=event_id,
            )
            result.blocked_at_giveup.extend(failure.blocked)
        result.diagnostics.append(diag)
        slog.warning(
            "engine.degrade",
            code=diag.code,
            node=list(key[0]) if key is not None else None,
            step=result.steps,
            strict=self.limits.strict,
            message=diag.message,
        )
        result.gave_up = True
        if not result.give_up_reason:
            result.give_up_reason = diag.message
        if self.limits.strict:
            return False
        if key is not None:
            result.top_nodes.add(key)
        obs.incr("engine.recover.local_top")
        return True

    def _record_budget(self, result: AnalysisResult, code: str, message: str) -> None:
        """A resource budget tripped: end the run as a sound partial result."""
        prov = self._prov
        event_id = None
        if prov is not None:
            event_id = prov.emit(
                "budget_trip",
                parents=(
                    prov.last_event_id
                    if prov.last_event_id is not None
                    else self._run_event,
                ),
                detail=f"{code}: {message}",
                step=result.steps,
            )
        result.diagnostics.append(
            Diagnostic(
                code=code,
                message=message,
                severity=diagnostics.WARNING,
                provenance_id=event_id,
            )
        )
        result.gave_up = True
        if not result.give_up_reason:
            result.give_up_reason = message
        obs.incr(f"engine.budget.{code.split('_', 1)[1].lower()}")
        slog.warning(
            "engine.budget", code=code, step=result.steps, message=message
        )

    def _finalize(self, result: AnalysisResult, aborted: bool) -> None:
        # INFO diagnostics (e.g. a rejected checkpoint followed by a cold
        # start) record noteworthy events without degrading the result
        meaningful = [
            diag
            for diag in result.diagnostics
            if diag.severity != diagnostics.INFO
        ]
        if not meaningful:
            result.confidence = diagnostics.EXACT
        elif aborted:
            result.confidence = diagnostics.GAVE_UP
        else:
            result.confidence = diagnostics.PARTIAL

    def _state_bytes(self, states: Dict[PCFGNodeKey, ClientState]) -> int:
        """Approximate retained-state footprint for the memory budget."""
        if tracemalloc.is_tracing():
            return tracemalloc.get_traced_memory()[0]
        total = sys.getsizeof(states) + sys.getsizeof(self._intern)
        for state in states.values():
            total += sys.getsizeof(state)
        return total
