"""The pCFG dataflow engine: Fig. 4's ``propagate``, operationalized.

The engine maintains abstract *configurations*: a tuple of CFG locations
(one per process set, positionally aligned with the client state's process
sets) plus the client state.  Configuration identity — the pCFG node — is
the sorted location tuple together with the multiset of in-flight send
sites.  Each engine step consumes one configuration and produces its pCFG
successors by, in priority order:

1. an exact send-receive match (``matchSendsRecvs``),
2. a CFG transition of one unblocked process set (transfer / branch,
   including rank-dependent branch *splits*),
3. buffering a send (the Section X non-blocking extension, when the client
   allows it),
4. termination, or the conservative ``T`` give-up when process sets are
   blocked on communication that cannot be matched.

Successor states are merged into previously-visited pCFG nodes via the
client's ``join``; nodes revisited more than ``widen_after`` times are
widened so loops converge to their invariant.

Scheduling and sharing
----------------------

The worklist is a priority queue keyed by reverse-postorder over the CFG:
a configuration's priority is the sorted tuple of RPO ranks of its
process-set locations, so upstream configurations are stabilized before
their downstream consumers and loop bodies settle before loop exits are
re-examined.  Ties break FIFO.  A membership set suppresses duplicate
enqueues (counted as ``engine.worklist.dedup``).

Canonicalized states are *interned* in a per-run hash-consing table keyed
by the client's ``state_fingerprint``: when a newly produced state is
semantically identical to one already seen, the existing object is reused
(``engine.intern.hits``), which turns the client's join / fixed-point
equality checks into pointer comparisons on the hot revisit path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.client import (
    Alternatives,
    ClientAnalysis,
    ClientState,
    Decided,
    MatchResult,
    Split,
)
from repro.core.errors import GiveUp
from repro.core.pcfg import ExploredPCFG, PCFGEdge, PCFGNodeKey
from repro.core.topology import MatchRecord, StaticTopology
from repro.lang.cfg import CFG, NodeKind
from repro.obs import recorder as obs


@dataclass
class EngineLimits:
    """Safety and precision knobs."""

    #: maximum engine steps before aborting (runaway guard)
    max_steps: int = 20_000
    #: joins at a pCFG node before switching to widening
    widen_after: int = 2
    #: maximum process sets per configuration (the paper's ``p``)
    max_psets: int = 12


@dataclass
class AnalysisResult:
    """Everything the analysis established."""

    topology: StaticTopology
    gave_up: bool = False
    give_up_reason: str = ""
    #: configurations where every process set reached the CFG exit
    final_states: List[ClientState] = field(default_factory=list)
    #: configurations that were blocked but only by possibly-empty psets
    vacuous_blocks: List[str] = field(default_factory=list)
    explored: ExploredPCFG = field(default_factory=ExploredPCFG)
    steps: int = 0
    #: (CFG node id, process-set description) pairs blocked when giving up
    blocked_at_giveup: List = field(default_factory=list)
    #: states per pCFG node (for inspecting loop invariants etc.)
    node_states: Dict[PCFGNodeKey, ClientState] = field(default_factory=dict)

    @property
    def matches(self):
        """The (send CFG node, recv CFG node) match relation."""
        return self.topology.node_edges()

    @property
    def match_records(self) -> List[MatchRecord]:
        """Symbolic match records."""
        return self.topology.records


class PCFGEngine:
    """Runs a client analysis over a program's pCFG."""

    def __init__(
        self,
        cfg: CFG,
        client: ClientAnalysis,
        limits: Optional[EngineLimits] = None,
        intern_states: bool = True,
    ):
        self.cfg = cfg
        self.client = client
        self.limits = limits or EngineLimits()
        self.intern_states = intern_states
        #: per-run hash-consing table: state fingerprint -> canonical state
        self._intern: Dict[Any, ClientState] = {}
        #: CFG node id -> reverse-postorder rank (worklist priority domain)
        self._rpo: Dict[int, int] = cfg.rpo_index()

    # -- driving -----------------------------------------------------------------

    def run(self) -> AnalysisResult:
        """Explore to fixed point and return the analysis result."""
        with obs.span("engine.run"):
            return self._run()

    def _run(self) -> AnalysisResult:
        result = AnalysisResult(topology=StaticTopology())
        client = self.client
        try:
            initial = client.initial()
        except GiveUp as failure:
            result.gave_up = True
            result.give_up_reason = failure.reason
            return result

        states: Dict[PCFGNodeKey, ClientState] = {}
        visits: Dict[PCFGNodeKey, int] = {}
        self._intern = {}

        # Priority worklist: process configurations in reverse-postorder of
        # their CFG locations so predecessors stabilize before successors.
        # The sequence number breaks priority ties FIFO.
        worklist: List[Tuple[tuple, int, PCFGNodeKey]] = []
        pending = set()
        seq = count()

        def enqueue(key: PCFGNodeKey) -> None:
            if key in pending:
                obs.incr("engine.worklist.dedup")
                return
            pending.add(key)
            heapq.heappush(worklist, (self._priority(key), next(seq), key))

        entry_key = self._canonicalize_into(
            states, visits, None, [self.cfg.entry], initial, "entry", "", result
        )
        if entry_key is not None:
            enqueue(entry_key)

        while worklist:
            if result.gave_up:
                break
            result.steps += 1
            obs.incr("engine.steps")
            obs.observe("engine.worklist.length", len(worklist))
            if result.steps > self.limits.max_steps:
                result.gave_up = True
                result.give_up_reason = (
                    f"engine step limit {self.limits.max_steps} exceeded"
                )
                break
            _, _, key = heapq.heappop(worklist)
            pending.discard(key)
            visits[key] = visits.get(key, 0) + 1
            state = states[key]
            try:
                with obs.span("engine.step"):
                    successors = self._step(key, state, result)
            except GiveUp as failure:
                result.gave_up = True
                result.give_up_reason = failure.reason
                result.blocked_at_giveup = failure.blocked
                break
            try:
                for locs, succ_state, kind, detail in successors:
                    succ_key = self._canonicalize_into(
                        states, visits, key, locs, succ_state, kind, detail, result
                    )
                    if succ_key is not None:
                        enqueue(succ_key)
            except GiveUp as failure:
                result.gave_up = True
                result.give_up_reason = failure.reason
                result.blocked_at_giveup = failure.blocked
                break
        result.node_states = states
        return result

    # -- one configuration -------------------------------------------------------

    def _step(
        self, key: PCFGNodeKey, state: ClientState, result: AnalysisResult
    ) -> List[Tuple[List[int], ClientState, str, str]]:
        locs = list(key[0])
        client = self.client
        blocked = [self._is_blocking(nid) for nid in locs]

        # 1. send-receive matching (possibly several alternative worlds)
        with obs.span("engine.match"):
            matches = client.try_match(state, locs, blocked, self.cfg)
        obs.incr("engine.match.attempts")
        if matches:
            obs.incr("engine.matches", len(matches))
            return [self._apply_match(locs, match, result) for match in matches]

        # 2. advance one unblocked process set
        for pos, node_id in enumerate(locs):
            node = self.cfg.node(node_id)
            if node.kind in (NodeKind.RECV, NodeKind.SEND, NodeKind.EXIT):
                continue
            if node.kind == NodeKind.BRANCH:
                with obs.span("engine.branch"):
                    return self._apply_branch(locs, pos, node, state)
            with obs.span("engine.transfer"):
                new_state = client.transfer(state, pos, node)
            obs.incr("engine.transfers")
            if new_state is None:
                return []  # infeasible: path is dead
            new_locs = list(locs)
            new_locs[pos] = self._single_successor(node_id)
            return [(new_locs, new_state, "transfer", node.describe())]

        # 3. buffer a send (non-blocking extension)
        for pos, node_id in enumerate(locs):
            node = self.cfg.node(node_id)
            if node.kind == NodeKind.SEND and client.can_buffer(state, pos, node):
                new_state = client.buffer_send(state, pos, node)
                obs.incr("engine.buffers")
                new_locs = list(locs)
                new_locs[pos] = self._single_successor(node_id)
                return [(new_locs, new_state, "buffer", node.describe())]

        # 4. everything is blocked
        comm_blocked = [
            pos
            for pos, node_id in enumerate(locs)
            if self.cfg.node(node_id).kind in (NodeKind.SEND, NodeKind.RECV)
        ]
        if not comm_blocked:
            # all process sets at the CFG exit: a terminal pCFG node
            result.final_states.append(state)
            return []
        # blocked on communication with no provable match: if every blocked
        # set might be empty, the block may be vacuous — report, don't fail
        verdicts = [self.client.is_empty(state, pos) for pos in comm_blocked]
        if all(verdict is None for verdict in verdicts):
            description = ", ".join(
                f"{self.client.describe_pset(state, pos)} at "
                f"{self.cfg.node(locs[pos]).describe()}"
                for pos in comm_blocked
            )
            result.vacuous_blocks.append(description)
            return []
        blocked_info = [
            (locs[pos], self.client.describe_pset(state, pos))
            for pos in comm_blocked
        ]
        blocked_desc = "; ".join(
            f"{desc} blocked at {self.cfg.node(node_id).describe()}"
            for node_id, desc in blocked_info
        )
        raise GiveUp(
            f"no provable send-receive match: {blocked_desc}", blocked=blocked_info
        )

    # -- transition helpers ----------------------------------------------------------

    def _apply_match(
        self, locs: List[int], match: MatchResult, result: AnalysisResult
    ) -> Tuple[List[int], ClientState, str, str]:
        client = self.client
        new_count = client.num_psets(match.state)
        new_locs = list(locs) + [0] * (new_count - len(locs))
        if match.sender_pos is not None:
            new_locs[match.sender_pos] = self._single_successor(match.send_node)
        new_locs[match.recv_pos] = self._single_successor(match.recv_node)
        if match.sender_residue is not None:
            new_locs[match.sender_residue] = match.send_node
        if match.recv_residue is not None:
            new_locs[match.recv_residue] = match.recv_node
        send_label = self.cfg.node(match.send_node).label
        recv_label = self.cfg.node(match.recv_node).label
        result.topology.add(
            MatchRecord(
                send_node=match.send_node,
                recv_node=match.recv_node,
                sender_desc=match.sender_desc,
                receiver_desc=match.receiver_desc,
                send_label=send_label,
                recv_label=recv_label,
                mtype_send=match.mtype_send,
                mtype_recv=match.mtype_recv,
            )
        )
        detail = f"{match.sender_desc} -> {match.receiver_desc}"
        return (new_locs, match.state, "match", detail)

    def _apply_branch(
        self, locs: List[int], pos: int, node, state: ClientState
    ) -> List[Tuple[List[int], ClientState, str, str]]:
        outcome = self.client.branch(state, pos, node)
        obs.incr("engine.branches")
        if isinstance(outcome, Split):
            obs.incr("engine.splits")
        successors: List[Tuple[List[int], ClientState, str, str]] = []
        if isinstance(outcome, Decided):
            new_locs = list(locs)
            new_locs[pos] = self._branch_target(node.node_id, outcome.label)
            successors.append(
                (new_locs, outcome.state, "branch", f"{node.cond}={outcome.label}")
            )
        elif isinstance(outcome, Split):
            new_locs = list(locs)
            new_locs[pos] = self._branch_target(node.node_id, True)
            new_locs.append(self._branch_target(node.node_id, False))
            if len(new_locs) > self.limits.max_psets:
                raise GiveUp(
                    f"process-set count exceeds p={self.limits.max_psets}"
                )
            successors.append((new_locs, outcome.state, "split", str(node.cond)))
        elif isinstance(outcome, Alternatives):
            for label, alt_state in outcome.outcomes:
                new_locs = list(locs)
                new_locs[pos] = self._branch_target(node.node_id, label)
                successors.append(
                    (new_locs, alt_state, "branch", f"{node.cond}={label}?")
                )
        else:
            raise TypeError(f"unknown branch outcome {outcome!r}")
        return successors

    # -- canonicalization and state merging -----------------------------------------

    def _canonicalize_into(
        self,
        states: Dict[PCFGNodeKey, ClientState],
        visits: Dict[PCFGNodeKey, int],
        src_key: Optional[PCFGNodeKey],
        locs: Sequence[int],
        state: ClientState,
        kind: str,
        detail: str,
        result: AnalysisResult,
    ) -> Optional[PCFGNodeKey]:
        with obs.span("engine.canonicalize"):
            return self._canonicalize(
                states, visits, src_key, locs, state, kind, detail, result
            )

    def _canonicalize(
        self,
        states: Dict[PCFGNodeKey, ClientState],
        visits: Dict[PCFGNodeKey, int],
        src_key: Optional[PCFGNodeKey],
        locs: Sequence[int],
        state: ClientState,
        kind: str,
        detail: str,
        result: AnalysisResult,
    ) -> Optional[PCFGNodeKey]:
        client = self.client
        locs = list(locs)

        # prune provably-empty process sets
        pos = 0
        while pos < len(locs):
            if client.is_empty(state, pos) is True:
                state = client.remove_pset(state, pos)
                del locs[pos]
            else:
                pos += 1
        if not locs:
            return None

        # merge process sets that reached the same CFG node
        merged = True
        while merged:
            merged = False
            for i in range(len(locs)):
                for j in range(i + 1, len(locs)):
                    if locs[i] == locs[j]:
                        state = client.merge_psets(state, i, j)
                        del locs[j]
                        merged = True
                        break
                if merged:
                    break

        # canonical order: sort positions by CFG location (stable)
        perm = sorted(range(len(locs)), key=lambda p: (locs[p], p))
        if perm != list(range(len(locs))):
            state = client.rename(state, perm)
            locs = [locs[p] for p in perm]

        key: PCFGNodeKey = (tuple(locs), client.pending_sites(state))
        if src_key is not None:
            result.explored.add_edge(PCFGEdge(src_key, key, kind, detail))
        else:
            result.explored.add_node(key)

        state = self._interned(state)
        if key not in states:
            states[key] = state
            return key
        old = states[key]
        if old is state:
            return None  # hash-consed identical state: fixed point, no join
        with obs.span("engine.join"):
            combined = client.join(old, state)
        obs.incr("engine.joins")
        if combined is None:
            raise GiveUp(f"states at pCFG node {key} cannot be joined")
        if visits.get(key, 0) >= self.limits.widen_after:
            with obs.span("engine.widen"):
                widened = client.widen(old, combined)
            obs.incr("engine.widenings")
            if widened is None:
                raise GiveUp(f"widening lost process-set bounds at {key}")
            combined = widened
        combined = self._interned(combined)
        if old is combined or client.states_equal(old, combined):
            return None  # fixed point at this node
        states[key] = combined
        return key

    def _priority(self, key: PCFGNodeKey) -> tuple:
        """Worklist priority of a pCFG node: the sorted tuple of RPO ranks
        of its CFG locations (lower = scheduled earlier)."""
        default_rank = len(self._rpo)
        return tuple(sorted(self._rpo.get(nid, default_rank) for nid in key[0]))

    def _interned(self, state: ClientState) -> ClientState:
        """Hash-cons ``state``: reuse the canonical object for its fingerprint.

        Clients that cannot fingerprint their states (``state_fingerprint``
        returns None) opt out per state; ``intern_states=False`` disables the
        table entirely.
        """
        if not self.intern_states:
            return state
        fp = self.client.state_fingerprint(state)
        if fp is None:
            return state
        cached = self._intern.get(fp)
        if cached is not None:
            obs.incr("engine.intern.hits")
            return cached
        self._intern[fp] = state
        obs.incr("engine.intern.misses")
        return state

    # -- CFG helpers --------------------------------------------------------------

    def _is_blocking(self, node_id: int) -> bool:
        kind = self.cfg.node(node_id).kind
        return kind in (NodeKind.SEND, NodeKind.RECV, NodeKind.EXIT)

    def _single_successor(self, node_id: int) -> int:
        targets = [dst for dst, label in self.cfg.successors(node_id) if label is None]
        if len(targets) != 1:
            raise RuntimeError(
                f"CFG node {node_id} has {len(targets)} unlabeled successors"
            )
        return targets[0]

    def _branch_target(self, node_id: int, label: bool) -> int:
        targets = [dst for dst, lbl in self.cfg.successors(node_id) if lbl is label]
        if len(targets) != 1:
            raise RuntimeError(
                f"branch node {node_id} has {len(targets)} {label}-successors"
            )
        return targets[0]
