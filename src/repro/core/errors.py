"""Analysis-control exceptions."""

from __future__ import annotations

from repro.core.diagnostics import GIVEUP_NO_MATCH


class GiveUp(Exception):
    """Raised by a client analysis when it must fall to ``T`` (top).

    Per Section VI, when the state representation or inference power of the
    client cannot establish an exact send-receive match (or loses track of a
    process-set bound), the only sound move is a conservative ``T``.  The
    engine localizes the damage: the offending pCFG node is marked ``T``,
    a diagnostic is recorded under ``code``, and exploration continues
    (``EngineLimits.strict`` restores the global abort).
    """

    def __init__(self, reason: str, blocked=None, code: str = GIVEUP_NO_MATCH):
        super().__init__(reason)
        self.reason = reason
        #: list of (CFG node id, process-set description) pairs blocked on
        #: communication when the analysis gave up (bug-detector input)
        self.blocked = list(blocked or [])
        #: stable diagnostic code (see :mod:`repro.core.diagnostics`)
        self.code = code


class MalformedCFG(Exception):
    """The CFG violated a structural invariant the engine relies on.

    Carries the offending node id so the failure can be reported as a
    ``CFG_MALFORMED`` diagnostic (and as a one-line CLI error) instead of
    a bare traceback.
    """

    def __init__(self, node_id: int, reason: str):
        super().__init__(f"CFG node {node_id}: {reason}")
        self.node_id = node_id
        self.reason = reason


class ClientFault(Exception):
    """An unexpected exception escaped a client callback.

    Engine-internal: the guard around every client callback wraps foreign
    exceptions in this type so the run loop can convert them into
    ``CLIENT_FAULT`` diagnostics plus a local ``T`` instead of crashing.
    ``original`` keeps the underlying exception (also chained as
    ``__cause__``).
    """

    def __init__(self, callback: str, original: BaseException):
        super().__init__(
            f"client callback {callback!r} raised "
            f"{type(original).__name__}: {original}"
        )
        self.callback = callback
        self.original = original
