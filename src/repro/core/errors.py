"""Analysis-control exceptions."""

from __future__ import annotations


class GiveUp(Exception):
    """Raised by a client analysis when it must fall to ``T`` (top).

    Per Section VI, when the state representation or inference power of the
    client cannot establish an exact send-receive match (or loses track of a
    process-set bound), the only sound move is a conservative ``T``: the
    engine stops refining and reports that the analysis gave up, with this
    exception's message as the diagnostic.
    """

    def __init__(self, reason: str, blocked=None):
        super().__init__(reason)
        self.reason = reason
        #: list of (CFG node id, process-set description) pairs blocked on
        #: communication when the analysis gave up (bug-detector input)
        self.blocked = list(blocked or [])
