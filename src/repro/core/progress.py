"""Ambient progress-hook switchboard for live streaming diagnostics.

The streaming job endpoint needs heartbeats from deep inside the
analysis — engine step counts, sharded-round boundaries, ladder rung
starts — but the engines are constructed many layers below the code
that owns the event sink (the daemon's job runner), inside rung runner
functions whose signatures the analyses own.  Threading a callback
through every one of those layers would turn a diagnostic feature into
an API migration.

Instead, the hook is *ambient per thread*, mirroring how
:func:`repro.obs.recorder.job_recording` isolates per-job counters: the
driver installs the job's callback with :func:`installed` around each
rung, and :class:`~repro.core.engine.PCFGEngine` /
:class:`~repro.core.shard.ShardedEngine` capture :func:`current` at
construction.  Analyses stay untouched; concurrent service jobs cannot
see each other's hooks.

Discipline for emitters:

* events are small plain dicts (``{"event": "progress", ...}``) that
  must survive ``json.dumps`` and a multiprocessing pipe;
* emit through :func:`emit` (or guard the callable yourself) — a
  throwing subscriber must never abort an analysis;
* keep the cadence coarse (the engine heartbeats every
  ``HEARTBEAT_EVERY_STEPS`` steps), because each event may cross a
  process boundary and an HTTP chunk.

With no hook installed the cost is one thread-local read at engine
construction and one ``is None`` test per heartbeat gate — disabled
mode stays within the telemetry overhead budget.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

ProgressHook = Callable[[dict], None]

#: engine steps between heartbeat events — coarse enough that a 20k-step
#: budget emits at most ~80 events, fine enough to watch convergence
HEARTBEAT_EVERY_STEPS = 256

_local = threading.local()


def current() -> Optional[ProgressHook]:
    """The current thread's progress hook, or None."""
    return getattr(_local, "hook", None)


@contextmanager
def installed(hook: Optional[ProgressHook]) -> Iterator[None]:
    """Install ``hook`` for the current thread (None is a no-op)."""
    if hook is None:
        yield
        return
    previous = getattr(_local, "hook", None)
    _local.hook = hook
    try:
        yield
    finally:
        _local.hook = previous


def emit(event: dict) -> None:
    """Deliver one event to the current hook; subscriber exceptions are
    swallowed (telemetry must never abort the analysis it watches)."""
    hook = getattr(_local, "hook", None)
    if hook is None:
        return
    try:
        hook(event)
    except Exception:
        pass
