"""Static communication topology: the output of the pCFG analysis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Set, Tuple


@dataclass(frozen=True)
class MatchRecord:
    """One symbolic send-receive match.

    ``sender_desc`` / ``receiver_desc`` are printable symbolic process-set
    descriptions (e.g. ``[1..np - 1]``), recorded at match time so the
    detected topology can be reported in the paper's notation.
    """

    send_node: int
    recv_node: int
    sender_desc: str
    receiver_desc: str
    send_label: str = ""
    recv_label: str = ""
    mtype_send: str = "int"
    mtype_recv: str = "int"

    def __str__(self) -> str:
        send = self.send_label or f"n{self.send_node}"
        recv = self.recv_label or f"n{self.recv_node}"
        return f"{send}:{self.sender_desc} -> {recv}:{self.receiver_desc}"


@dataclass
class StaticTopology:
    """The set of statically established matches.

    ``edges`` is the relation over CFG nodes; ``records`` keeps the symbolic
    process-set annotations (one per distinct match event shape).
    """

    edges: Set[Tuple[int, int]] = field(default_factory=set)
    records: List[MatchRecord] = field(default_factory=list)

    def add(self, record: MatchRecord) -> None:
        """Record a match."""
        self.edges.add((record.send_node, record.recv_node))
        if not any(
            existing.send_node == record.send_node
            and existing.recv_node == record.recv_node
            and existing.sender_desc == record.sender_desc
            and existing.receiver_desc == record.receiver_desc
            for existing in self.records
        ):
            self.records.append(record)

    def node_edges(self) -> FrozenSet[Tuple[int, int]]:
        """The (send CFG node, recv CFG node) relation."""
        return frozenset(self.edges)

    def describe(self) -> str:
        """Multi-line human-readable topology."""
        if not self.records:
            return "(no communication)"
        return "\n".join(str(record) for record in self.records)
