"""Structured diagnostics for the resilient analysis engine.

Section VI defines ``T`` (top) as the *sound local answer* when the
client's inference power runs out.  The engine does not treat every
failure as a global abort: each recoverable failure — an unprovable
send-receive match, a lost process-set bound, an unexpected exception in
a client callback, a tripped resource budget, a structurally malformed
CFG — is recorded as a :class:`Diagnostic` carrying a stable code, the
pCFG node it poisoned, and enough detail to act on (which knob to turn;
see the README troubleshooting table).

``AnalysisResult.diagnostics`` collects the records in occurrence order
and ``AnalysisResult.confidence`` summarizes the run:

``exact``
    no degradation: the topology and invariants are the full answer;
``partial``
    some pCFG nodes fell to ``T`` or a resource budget tripped, but the
    surviving topology, final states, and node invariants are sound;
``gave_up``
    the run aborted before establishing anything useful (entry-state
    failure), or ``EngineLimits.strict`` turned the first failure into a
    global abort (the paper-fidelity behavior).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.core.pcfg import PCFGNodeKey

# -- stable diagnostic codes --------------------------------------------------

#: no provable send-receive match while process sets are blocked (Sec. VI T)
GIVEUP_NO_MATCH = "GIVEUP_NO_MATCH"
#: a process-set bound was lost (widening / merge / overwrite) or the
#: configuration exceeded the ``max_psets`` split budget (the paper's ``p``)
GIVEUP_PSET_BOUND = "GIVEUP_PSET_BOUND"
#: an unexpected exception escaped a client callback (isolated to local T)
CLIENT_FAULT = "CLIENT_FAULT"
#: the ``max_steps`` budget tripped
BUDGET_STEPS = "BUDGET_STEPS"
#: the wall-clock ``deadline_sec`` budget tripped
BUDGET_DEADLINE = "BUDGET_DEADLINE"
#: the ``max_state_bytes`` retained-state budget tripped
BUDGET_MEMORY = "BUDGET_MEMORY"
#: the CFG violated a structural invariant (successor arity)
CFG_MALFORMED = "CFG_MALFORMED"
#: a checkpoint snapshot failed integrity checks (bad JSON, bad checksum,
#: undecodable payload); the engine degraded to a cold start
CHECKPOINT_CORRUPT = "CHECKPOINT_CORRUPT"
#: a checkpoint snapshot was well-formed but belongs to a different format
#: version, program/CFG, or client analysis; the engine degraded to a cold start
CHECKPOINT_MISMATCH = "CHECKPOINT_MISMATCH"
#: a checkpoint snapshot could not be *written* (disk full, permissions,
#: directory vanished); the analysis continued without crash-safety for
#: that snapshot instead of crashing on the OSError
CHECKPOINT_IO = "CHECKPOINT_IO"
#: a sharded-fixpoint worker process died mid-round (killed, OOM, crash);
#: the parent drained the remaining work in-process and the result is a
#: sound partial/complete answer, never a hang
SHARD_WORKER_LOST = "SHARD_WORKER_LOST"
#: the sharded executor could not ship states across process boundaries
#: (no registered codecs / unpicklable payload) and fell back to the
#: single-process engine; informational only
SHARD_FALLBACK = "SHARD_FALLBACK"

ALL_CODES = (
    GIVEUP_NO_MATCH,
    GIVEUP_PSET_BOUND,
    CLIENT_FAULT,
    BUDGET_STEPS,
    BUDGET_DEADLINE,
    BUDGET_MEMORY,
    CFG_MALFORMED,
    CHECKPOINT_CORRUPT,
    CHECKPOINT_MISMATCH,
    CHECKPOINT_IO,
    SHARD_WORKER_LOST,
    SHARD_FALLBACK,
)

#: the resource-budget codes: a budget trip cuts the run short without making
#: anything recorded wrong, so these are stripped when a run is resumed from
#: the trip's snapshot (the resumed run re-evaluates its own budgets)
BUDGET_CODES = (BUDGET_STEPS, BUDGET_DEADLINE, BUDGET_MEMORY)

# -- severities ---------------------------------------------------------------

ERROR = "error"      #: precision was lost at the diagnostic's node
WARNING = "warning"  #: the run was cut short but nothing recorded is wrong
INFO = "info"        #: noteworthy event that does not degrade the result
                     #: (e.g. a rejected checkpoint followed by a cold start)

# -- confidence levels --------------------------------------------------------

EXACT = "exact"
PARTIAL = "partial"
GAVE_UP = "gave_up"


@dataclass(frozen=True)
class Diagnostic:
    """One recorded degradation event.

    ``blocked`` carries the (CFG node id, process-set description) pairs
    that were blocked on communication when a ``GIVEUP_NO_MATCH`` fired —
    the bug detectors consume these.  ``callback`` names the originating
    client callback for ``CLIENT_FAULT`` records.
    """

    code: str
    message: str
    severity: str = ERROR
    #: the pCFG node poisoned to T (None for run-level diagnostics)
    node_key: Optional[PCFGNodeKey] = None
    blocked: Tuple[Tuple[int, str], ...] = ()
    callback: str = ""
    #: id of the provenance event recording this degradation — links the
    #: diagnostic into the flight recorder's derivation DAG, so
    #: ``repro explain --why-top`` can walk its causal chain.  None when
    #: provenance was disabled during the run.
    provenance_id: Optional[int] = None

    def format(self) -> str:
        """One-line human-readable rendering."""
        where = f" at pCFG node {self.node_key[0]}" if self.node_key else ""
        via = f" (client callback {self.callback!r})" if self.callback else ""
        return f"[{self.code}] {self.message}{where}{via}"


def summarize(diagnostics: Iterable[Diagnostic]) -> str:
    """Compact ``3x GIVEUP_NO_MATCH, 1x CLIENT_FAULT``-style tally."""
    counts = {}
    for diag in diagnostics:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    if not counts:
        return "no diagnostics"
    return ", ".join(f"{count}x {code}" for code, count in sorted(counts.items()))
