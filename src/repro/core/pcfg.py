"""Explored-pCFG bookkeeping.

The conceptual pCFG of Section V is enormous (every tuple of CFG locations
over every partition of processes).  The engine only materializes the nodes
it visits along its chosen interleaving; this module records that explored
subgraph so it can be inspected, rendered and measured (node/edge counts are
reported by the benchmarks as "fraction of the pCFG examined").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: a pCFG node key: the sorted tuple of occupied CFG locations plus the
#: tuple of in-flight send sites (buffered mode); two abstract configurations
#: with the same key are the same pCFG node and their states are joined
PCFGNodeKey = Tuple[Tuple[int, ...], Tuple[int, ...]]


@dataclass(frozen=True)
class PCFGEdge:
    """One explored pCFG edge with its transition kind."""

    src: PCFGNodeKey
    dst: PCFGNodeKey
    kind: str  # "transfer" | "branch" | "split" | "match" | "merge" | "buffer"
    detail: str = ""


@dataclass
class ExploredPCFG:
    """The visited fraction of the pCFG."""

    nodes: Set[PCFGNodeKey] = field(default_factory=set)
    edges: List[PCFGEdge] = field(default_factory=list)
    entry: Optional[PCFGNodeKey] = None

    def add_node(self, key: PCFGNodeKey) -> None:
        """Register a visited node."""
        if self.entry is None:
            self.entry = key
        self.nodes.add(key)

    def add_edge(self, edge: PCFGEdge) -> None:
        """Register a traversed edge."""
        self.add_node(edge.src)
        self.add_node(edge.dst)
        self.edges.append(edge)

    def node_count(self) -> int:
        """Number of distinct visited pCFG nodes."""
        return len(self.nodes)

    def edge_count(self) -> int:
        """Number of traversed pCFG edges (with multiplicity of kinds)."""
        return len(self.edges)

    def to_dot(self, cfg=None) -> str:
        """Graphviz rendering of the explored subgraph."""
        def fmt(key: PCFGNodeKey) -> str:
            locs, pending = key
            if cfg is not None:
                labels = ",".join(cfg.node(nid).label or str(nid) for nid in locs)
            else:
                labels = ",".join(str(nid) for nid in locs)
            extra = f" |{len(pending)} in flight|" if pending else ""
            return f"<{labels}{extra}>"

        ids: Dict[PCFGNodeKey, int] = {key: i for i, key in enumerate(sorted(self.nodes))}
        lines = ["digraph pcfg {"]
        for key, node_id in ids.items():
            lines.append(f'  n{node_id} [label="{fmt(key)}"];')
        seen = set()
        for edge in self.edges:
            signature = (edge.src, edge.dst, edge.kind)
            if signature in seen:
                continue
            seen.add(signature)
            lines.append(
                f'  n{ids[edge.src]} -> n{ids[edge.dst]} [label="{edge.kind}"];'
            )
        lines.append("}")
        return "\n".join(lines)
