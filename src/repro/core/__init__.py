"""The pCFG parallel dataflow framework — the paper's core contribution.

A *parallel control-flow graph* (pCFG) node is a tuple of process sets, each
mapped to the CFG node it currently executes (Section V).  Dataflow over the
pCFG (Section VI, Fig. 4) propagates a state ``(dfState, pSets, matches)``
along edges that represent process-set transitions, splits and merges, with
send-receive matching connecting the states of different process sets.

The engine here operationalizes Fig. 4:

* it explores exactly one interleaving (legal by the execution model's
  interleaving-obliviousness) and therefore only materializes the small
  fraction of the conceptual pCFG it needs;
* ``matchSendsRecvs``, process-set representation and the transfer function
  are supplied by a *client analysis* (:class:`~repro.core.client.ClientAnalysis`);
* when no exact match can be established while process sets are blocked on
  communication, the analysis gives up with ``T`` (top), as the paper
  requires for soundness;
* re-visited pCFG nodes are widened so loops converge to their invariant
  (the Fig. 5 ``{[0], [1..i], [i+1..np-1]}`` shape).

Public API::

    from repro.core import PCFGEngine
    result = PCFGEngine(cfg, client).run()
    result.matches          # {(send CFG node, recv CFG node), ...}
    result.match_records    # symbolic sender/receiver process sets per match
    result.gave_up          # True if the analysis hit T
"""

from repro.core.client import (
    Alternatives,
    BranchOutcome,
    ClientAnalysis,
    Decided,
    MatchResult,
    Split,
)
from repro.core.diagnostics import (
    ALL_CODES,
    BUDGET_DEADLINE,
    BUDGET_MEMORY,
    BUDGET_STEPS,
    CFG_MALFORMED,
    CLIENT_FAULT,
    GIVEUP_NO_MATCH,
    GIVEUP_PSET_BOUND,
    Diagnostic,
    summarize,
)
from repro.core.driver import (
    FallbackReport,
    Rung,
    RungOutcome,
    analyze_with_fallback,
    default_ladder,
)
from repro.core.engine import AnalysisResult, EngineLimits, PCFGEngine
from repro.core.errors import GiveUp, MalformedCFG
from repro.core.pcfg import ExploredPCFG, PCFGEdge, PCFGNodeKey
from repro.core.topology import MatchRecord, StaticTopology

__all__ = [
    "PCFGEngine",
    "AnalysisResult",
    "EngineLimits",
    "ClientAnalysis",
    "Decided",
    "Split",
    "Alternatives",
    "BranchOutcome",
    "MatchResult",
    "MatchRecord",
    "StaticTopology",
    "ExploredPCFG",
    "PCFGEdge",
    "PCFGNodeKey",
    # resilience layer
    "Diagnostic",
    "summarize",
    "GiveUp",
    "MalformedCFG",
    "ALL_CODES",
    "GIVEUP_NO_MATCH",
    "GIVEUP_PSET_BOUND",
    "CLIENT_FAULT",
    "BUDGET_STEPS",
    "BUDGET_DEADLINE",
    "BUDGET_MEMORY",
    "CFG_MALFORMED",
    # fallback ladder
    "analyze_with_fallback",
    "default_ladder",
    "FallbackReport",
    "Rung",
    "RungOutcome",
]
