"""Client-analysis interface for the pCFG framework.

The paper's Fig. 4 leaves several operations to the *client analysis*
(underlined in the dataflow formulas): the representation of dataflow state
and process sets, the transfer function, send-receive matching, process-set
splitting and renaming, and the union/widening operators.  This module
defines the contract the engine expects.

A client's analysis state is opaque to the engine except through these
operations.  Process sets are addressed *positionally*: a state tracks
``num_psets()`` sets, and the engine keeps a parallel tuple assigning each
position its current CFG node.  When sets split, merge or die, the client
returns a new state and the engine re-derives positions from the outcome
objects below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.lang.cfg import CFGNode


class ClientState:
    """Marker base class for client analysis states (opaque to the engine)."""


@dataclass
class Decided:
    """Branch outcome: the whole process set takes one side."""

    label: bool
    state: ClientState


@dataclass
class Split:
    """Branch outcome: the set splits on a rank-dependent condition.

    The pset at the branching position keeps the *true* subset; a new pset
    (appended at position ``num_psets()-1`` of ``state``) holds the *false*
    subset.  Either subset may be empty; the engine prunes empties via
    :meth:`ClientAnalysis.is_empty`.
    """

    state: ClientState


@dataclass
class Alternatives:
    """Branch outcome: undecidable data-dependent branch.

    The engine explores each ``(label, state)`` as a separate pCFG
    successor (a may-analysis over both paths).
    """

    outcomes: List[Tuple[bool, ClientState]]


BranchOutcome = object  # Decided | Split | Alternatives


@dataclass
class MatchResult:
    """A successful exact send-receive match.

    ``state`` reflects the world after the match: psets possibly split
    (matched subsets keep the original positions; residues appended in the
    order ``sender residue, receiver residue``) and received values
    propagated into the receiving set's namespace.

    For a match against a *buffered* (in-flight) send, ``sender_pos`` is
    None and ``pending_index`` names the consumed pending-send record.
    """

    state: ClientState
    sender_pos: Optional[int]
    recv_pos: int
    send_node: int
    recv_node: int
    sender_desc: str
    receiver_desc: str
    sender_residue: Optional[int] = None
    recv_residue: Optional[int] = None
    pending_index: Optional[int] = None
    mtype_send: str = "int"
    mtype_recv: str = "int"


class ClientAnalysis:
    """The operations a client must provide (paper Fig. 4, underlined)."""

    # -- lifecycle ------------------------------------------------------------

    def initial(self) -> ClientState:
        """State with a single process set ``[0..np-1]`` (defaultState)."""
        raise NotImplementedError

    def num_psets(self, state: ClientState) -> int:
        """Number of process sets tracked by the state."""
        raise NotImplementedError

    def describe_pset(self, state: ClientState, pos: int) -> str:
        """Printable symbolic description of one process set."""
        raise NotImplementedError

    # -- dataflow --------------------------------------------------------------

    def transfer(
        self, state: ClientState, pos: int, node: CFGNode
    ) -> Optional[ClientState]:
        """Transfer function for a non-branch, non-communication node.

        Returns None when the state becomes infeasible.
        """
        raise NotImplementedError

    def branch(
        self, state: ClientState, pos: int, node: CFGNode
    ) -> BranchOutcome:
        """Resolve a branch for the pset at ``pos``: Decided/Split/Alternatives."""
        raise NotImplementedError

    # -- communication -----------------------------------------------------------

    def try_match(
        self,
        state: ClientState,
        locs: Sequence[int],
        blocked: Sequence[bool],
        cfg,
    ) -> List[MatchResult]:
        """The paper's ``matchSendsRecvs``: find provable exact matches.

        ``locs[pos]`` is the CFG node of each pset; ``blocked[pos]`` says
        whether that pset is currently blocked on its node.  Must be *exact*:
        return an empty list rather than an approximate match.

        Normally returns at most one match (the engine re-runs matching at
        the successor node).  When matching is ambiguous because a symbolic
        comparison is unknown, the client may return several results whose
        states carry the complementary assumptions — the engine explores
        each as a separate pCFG successor (alternative worlds whose union
        covers all executions).
        """
        raise NotImplementedError

    def can_buffer(self, state: ClientState, pos: int, node: CFGNode) -> bool:
        """May the pset at a send advance, leaving the send in flight?

        Rendezvous-only clients return False; buffered clients enforce their
        in-flight budget here (Section X's non-blocking extension).
        """
        return False

    def buffer_send(
        self, state: ClientState, pos: int, node: CFGNode
    ) -> ClientState:
        """Record an in-flight send for the pset at ``pos``."""
        raise NotImplementedError

    def pending_sites(self, state: ClientState) -> Tuple[int, ...]:
        """Sorted CFG node ids of in-flight sends (part of pCFG identity)."""
        return ()

    # -- set structure --------------------------------------------------------------

    def is_empty(self, state: ClientState, pos: int) -> Optional[bool]:
        """Three-valued emptiness of a pset (True => engine deletes it)."""
        raise NotImplementedError

    def merge_psets(
        self, state: ClientState, keep: int, drop: int
    ) -> ClientState:
        """Fold pset ``drop`` into pset ``keep`` (they reached the same node)."""
        raise NotImplementedError

    def remove_pset(self, state: ClientState, pos: int) -> ClientState:
        """Delete an empty pset."""
        raise NotImplementedError

    def rename(self, state: ClientState, perm: Sequence[int]) -> ClientState:
        """Reorder psets: new position ``i`` holds old position ``perm[i]``."""
        raise NotImplementedError

    # -- lattice -----------------------------------------------------------------

    def join(
        self, old: ClientState, new: ClientState
    ) -> Optional[ClientState]:
        """Union of states at a re-visited pCFG node (None: incompatible)."""
        raise NotImplementedError

    def widen(
        self, old: ClientState, new: ClientState
    ) -> Optional[ClientState]:
        """Widening for convergence (None: bounds lost, engine goes to T)."""
        raise NotImplementedError

    def states_equal(self, left: ClientState, right: ClientState) -> bool:
        """Fixed-point test."""
        raise NotImplementedError

    def state_fingerprint(self, state: ClientState):
        """Hashable semantic identity of ``state``, or None.

        Fingerprint equality must imply ``states_equal`` — the engine uses
        it to hash-cons canonicalized states, so two states with the same
        fingerprint collapse to one object.  Returning None (the default)
        opts the state out of interning.
        """
        return None

    # -- provenance ---------------------------------------------------------------

    def describe_transfer(self, old: Optional[ClientState], new: ClientState):
        """Provenance delta between two states, as JSON-plain data (or None).

        Called by the engine *only* while the provenance flight recorder is
        enabled, once per state-changing event: for a transition, ``old``
        is the source node's state (None for the entry event); for a
        join/widen, ``old`` is the target node's previous state.  The
        returned mapping is attached verbatim to the provenance event —
        clients report whatever makes their derivation auditable
        (constraint-graph edge diffs, pset ranges, prover verdicts).
        Exceptions are contained by the engine and recorded in the event
        instead of degrading the run.  The default reports nothing.
        """
        return None

    def match_explanation(self):
        """The last ``try_match`` call's reasoning, as JSON-plain data.

        Polled by the engine after each match attempt *only* while
        provenance is enabled; returning a mapping attaches a
        ``match_attempt`` event carrying it (candidate pairs considered,
        surjection / identity-composition verdicts, prover traces).
        Returning None (the default) suppresses the event — clients should
        return data only when a candidate pair was actually examined, so
        unblocked steps stay silent.
        """
        return None

    # -- checkpoint/resume --------------------------------------------------------

    def checkpoint_extra(self):
        """Client-side accumulators to include in an engine snapshot.

        The engine's snapshot captures every state it holds, but a client
        may accumulate knowledge *outside* those states (observed print
        values, invariants harvested from ``assert`` transfers) that would
        not be rebuilt by resuming — return it here as codec-encodable
        data.  The default (None) persists nothing.
        """
        return None

    def restore_extra(self, data) -> None:
        """Reinstall data produced by :meth:`checkpoint_extra` on resume."""
