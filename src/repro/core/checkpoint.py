"""Crash-safe checkpoint/resume for the pCFG fixpoint engine.

A long fixpoint over a large pCFG is the dominant cost of an analysis run
(ROADMAP: production scale).  Before this module, any budget trip, SIGKILL
or host crash discarded every converged configuration.  A *snapshot* now
captures the engine's full fixpoint state — the priority worklist, the
per-node ``(dfState, pSets)`` map, visit counts, step accounting, the
partial topology, and the accumulated diagnostics — so a later run can
continue exactly where the interrupted one stopped and converge to the
identical :class:`~repro.core.engine.AnalysisResult`.

Snapshot format (``repro-ckpt/1``)
----------------------------------

One JSON document::

    {"format": "repro-ckpt/1", "checksum": "<sha256 of payload>", "payload": {...}}

The payload is produced by a *structural codec*: plain scalars pass
through, containers are tagged (``{"__t__": "tuple", "v": [...]}``), and
domain objects — constraint graphs, interval process sets, HSM terms,
client states — go through serializers registered per type with
:func:`register_codec`.  Client analyses register codecs for their own
state types (``repro.analyses.simple_symbolic`` registers the Section VII
state; subclasses inherit it) and may persist client-side accumulators via
:meth:`~repro.core.client.ClientAnalysis.checkpoint_extra`.

Integrity and identity
----------------------

Snapshots are written atomically (temp file + ``os.replace``) and verified
on load: JSON well-formedness, format version, and the payload checksum.
A snapshot also names the CFG it was taken over (a structural fingerprint)
and the client class; the engine refuses to warm-start from a snapshot of
a different program or client.  Every rejection degrades to a cold start
with a ``CHECKPOINT_CORRUPT`` / ``CHECKPOINT_MISMATCH`` diagnostic — a bad
snapshot can never crash or taint an analysis.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core import diagnostics
from repro.core.diagnostics import Diagnostic
from repro.core.pcfg import ExploredPCFG, PCFGEdge
from repro.core.topology import MatchRecord, StaticTopology
from repro.faults import plane as faults
from repro.obs import provenance
from repro.obs import recorder as obs

#: snapshot format version; bump on any incompatible payload change
FORMAT = "repro-ckpt/1"


class SnapshotError(Exception):
    """A snapshot could not be used.

    ``code`` is :data:`~repro.core.diagnostics.CHECKPOINT_CORRUPT` for
    integrity failures (unreadable file, bad JSON, checksum mismatch,
    undecodable payload) and
    :data:`~repro.core.diagnostics.CHECKPOINT_MISMATCH` for well-formed
    snapshots of a different format version, program/CFG, or client.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


# -- structural codec ---------------------------------------------------------

#: type -> (tag, encode); exact-type lookup with an isinstance fallback so
#: client-state subclasses reuse their base codec
_ENCODERS: Dict[type, Tuple[str, Callable[[Any], Any]]] = {}
#: tag -> decode
_DECODERS: Dict[str, Callable[[Any], Any]] = {}

_TAG = "__t__"


def register_codec(
    cls: type,
    tag: str,
    encode_fn: Callable[[Any], Any],
    decode_fn: Callable[[Any], Any],
) -> None:
    """Register a stable serializer for one domain type.

    ``encode_fn`` must return JSON-able-after-:func:`encode` data;
    ``decode_fn`` receives the decoded data back.  Round-trip stability
    (``decode(encode(x))`` semantically equal to ``x``) is what the
    Hypothesis property tests enforce per codec.
    """
    _ENCODERS[cls] = (tag, encode_fn)
    _DECODERS[tag] = decode_fn


def _lookup_encoder(obj: Any) -> Optional[Tuple[str, Callable[[Any], Any]]]:
    entry = _ENCODERS.get(type(obj))
    if entry is not None:
        return entry
    for cls, candidate in _ENCODERS.items():
        if isinstance(obj, cls):
            return candidate
    return None


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def encode(obj: Any) -> Any:
    """Encode a Python object into tagged JSON-able plain data."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [encode(item) for item in obj]
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "v": [encode(item) for item in obj]}
    if isinstance(obj, dict):
        return {_TAG: "dict", "v": [[encode(k), encode(v)] for k, v in obj.items()]}
    if isinstance(obj, (set, frozenset)):
        items = sorted((encode(item) for item in obj), key=_canonical)
        tag = "frozenset" if isinstance(obj, frozenset) else "set"
        return {_TAG: tag, "v": items}
    entry = _lookup_encoder(obj)
    if entry is None:
        raise SnapshotError(
            diagnostics.CHECKPOINT_CORRUPT,
            f"no snapshot codec registered for {type(obj).__name__}",
        )
    tag, encode_fn = entry
    return {_TAG: tag, "v": encode(encode_fn(obj))}


def decode(data: Any) -> Any:
    """Invert :func:`encode`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [decode(item) for item in data]
    if isinstance(data, dict):
        tag = data.get(_TAG)
        if tag == "tuple":
            return tuple(decode(item) for item in data["v"])
        if tag == "dict":
            return {decode(k): decode(v) for k, v in data["v"]}
        if tag == "set":
            return {decode(item) for item in data["v"]}
        if tag == "frozenset":
            return frozenset(decode(item) for item in data["v"])
        decoder = _DECODERS.get(tag)
        if decoder is None:
            raise SnapshotError(
                diagnostics.CHECKPOINT_CORRUPT,
                f"unknown snapshot codec tag {tag!r}",
            )
        return decoder(decode(data["v"]))
    raise SnapshotError(
        diagnostics.CHECKPOINT_CORRUPT,
        f"unencodable snapshot datum of type {type(data).__name__}",
    )


# -- fingerprints -------------------------------------------------------------


def cfg_fingerprint(cfg) -> str:
    """Structural identity of a CFG: nodes (kind + rendering) and edges.

    Two builds of the same program fingerprint identically; any structural
    drift (different program, changed lowering) changes the digest, which
    is what makes stale snapshots detectable.
    """
    parts = [f"entry={cfg.entry}", f"exit={cfg.exit}"]
    for node_id in sorted(cfg.nodes):
        node = cfg.nodes[node_id]
        parts.append(f"n{node_id}:{node.kind.value}:{node.describe()}:{node.label}")
        for dst, label in cfg.edges.get(node_id, []):
            parts.append(f"e{node_id}->{dst}:{label}")
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


# -- the snapshot object ------------------------------------------------------


@dataclass
class Snapshot:
    """One captured fixpoint state, held in its encoded (JSON-able) form.

    The same representation backs in-memory warm starts (the fallback
    ladder) and on-disk checkpoints, so both paths exercise the same
    codecs.
    """

    payload: dict

    @property
    def cfg_fingerprint(self) -> str:
        return self.payload.get("cfg", "")

    @property
    def client_name(self) -> str:
        return self.payload.get("client", "")

    @property
    def steps(self) -> int:
        return self.payload.get("engine", {}).get("steps", 0)

    def describe(self) -> str:
        """Short human-readable identity for ``resumed_from`` reporting."""
        return f"snapshot(step={self.steps}, client={self.client_name})"

    def to_json(self) -> str:
        body = _canonical(self.payload)
        checksum = hashlib.sha256(body.encode("utf-8")).hexdigest()
        return json.dumps(
            {"format": FORMAT, "checksum": checksum, "payload": self.payload},
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "Snapshot":
        """Parse and verify a serialized snapshot (raises SnapshotError)."""
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise SnapshotError(
                diagnostics.CHECKPOINT_CORRUPT, f"snapshot is not valid JSON: {exc}"
            ) from exc
        if not isinstance(document, dict) or "payload" not in document:
            raise SnapshotError(
                diagnostics.CHECKPOINT_CORRUPT, "snapshot document has no payload"
            )
        if document.get("format") != FORMAT:
            raise SnapshotError(
                diagnostics.CHECKPOINT_MISMATCH,
                f"snapshot format {document.get('format')!r} != {FORMAT!r}",
            )
        body = _canonical(document["payload"])
        checksum = hashlib.sha256(body.encode("utf-8")).hexdigest()
        if checksum != document.get("checksum"):
            raise SnapshotError(
                diagnostics.CHECKPOINT_CORRUPT, "snapshot checksum mismatch"
            )
        return cls(payload=document["payload"])


def load_snapshot(path) -> Snapshot:
    """Load and verify a snapshot file (raises SnapshotError)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SnapshotError(
            diagnostics.CHECKPOINT_CORRUPT, f"cannot read snapshot {path}: {exc}"
        ) from exc
    return Snapshot.from_json(text)


# -- engine-state capture / restore -------------------------------------------


def capture_run(engine, result, states, visits, worklist, seq_next) -> Snapshot:
    """Encode the engine's live fixpoint state into a :class:`Snapshot`.

    ``result.steps`` must already reflect only *completed* iterations (the
    engine subtracts the no-op iteration that tripped a budget), so a
    resumed run's final step count matches an uninterrupted run's.
    """
    client = engine.client
    payload = {
        "format": FORMAT,
        "cfg": cfg_fingerprint(engine.cfg),
        "client": type(client).__name__,
        "engine": {
            "steps": result.steps,
            "seq": seq_next,
            "worklist": encode(list(worklist)),
            "states": encode(states),
            "visits": encode(visits),
        },
        "result": {
            "topology": encode(result.topology),
            "gave_up": result.gave_up,
            "give_up_reason": result.give_up_reason,
            "final_states": encode(result.final_states),
            "vacuous_blocks": list(result.vacuous_blocks),
            "explored": encode(result.explored),
            "blocked_at_giveup": encode(
                [tuple(item) for item in result.blocked_at_giveup]
            ),
            "diagnostics": encode(result.diagnostics),
            "top_nodes": encode(result.top_nodes),
        },
        "client_extra": encode(client.checkpoint_extra()),
    }
    prov = provenance.active()
    if prov is not None:
        # the flight-recorder journal rides along (already JSON-plain), so
        # a resumed run continues the interrupted run's causal history
        payload["provenance"] = prov.snapshot_state()
    return Snapshot(payload=payload)


@dataclass
class RestoredRun:
    """Decoded fixpoint state, ready to drop into the engine loop."""

    steps: int
    seq: int
    worklist: list
    states: dict
    visits: dict
    topology: StaticTopology
    gave_up: bool
    give_up_reason: str
    final_states: list
    vacuous_blocks: list
    explored: ExploredPCFG
    blocked_at_giveup: list
    diagnostics: list
    top_nodes: set
    #: flight-recorder journal captured with the snapshot (None when the
    #: interrupted run had provenance disabled, or for older snapshots)
    provenance: Optional[dict] = None


def restore_run(snapshot: Snapshot, engine) -> RestoredRun:
    """Verify a snapshot against the engine's CFG/client and decode it.

    Raises :class:`SnapshotError` on any mismatch or decoding failure; the
    engine turns that into a diagnostic plus a cold start.
    """
    payload = snapshot.payload
    if not isinstance(payload, dict):
        raise SnapshotError(
            diagnostics.CHECKPOINT_CORRUPT, "snapshot payload is not a mapping"
        )
    if payload.get("format") != FORMAT:
        raise SnapshotError(
            diagnostics.CHECKPOINT_MISMATCH,
            f"snapshot format {payload.get('format')!r} != {FORMAT!r}",
        )
    fingerprint = cfg_fingerprint(engine.cfg)
    if payload.get("cfg") != fingerprint:
        raise SnapshotError(
            diagnostics.CHECKPOINT_MISMATCH,
            "snapshot was taken over a different program/CFG "
            f"({str(payload.get('cfg'))[:12]}... != {fingerprint[:12]}...)",
        )
    client_name = type(engine.client).__name__
    if payload.get("client") != client_name:
        raise SnapshotError(
            diagnostics.CHECKPOINT_MISMATCH,
            f"snapshot client {payload.get('client')!r} != {client_name!r}",
        )
    try:
        engine_part = payload["engine"]
        result_part = payload["result"]
        restored = RestoredRun(
            steps=int(engine_part["steps"]),
            seq=int(engine_part["seq"]),
            worklist=decode(engine_part["worklist"]),
            states=decode(engine_part["states"]),
            visits=decode(engine_part["visits"]),
            topology=decode(result_part["topology"]),
            gave_up=bool(result_part["gave_up"]),
            give_up_reason=str(result_part["give_up_reason"]),
            final_states=decode(result_part["final_states"]),
            vacuous_blocks=list(result_part["vacuous_blocks"]),
            explored=decode(result_part["explored"]),
            blocked_at_giveup=list(decode(result_part["blocked_at_giveup"])),
            diagnostics=decode(result_part["diagnostics"]),
            top_nodes=decode(result_part["top_nodes"]),
            provenance=payload.get("provenance"),
        )
        engine.client.restore_extra(decode(payload.get("client_extra")))
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(
            diagnostics.CHECKPOINT_CORRUPT, f"snapshot payload undecodable: {exc}"
        ) from exc
    return restored


# -- the on-disk checkpointer -------------------------------------------------


def atomic_write_text(path, text: str, fsync: bool = True, fault_scope: str = "disk") -> None:
    """Durable atomic file replacement: write-fsync-rename-fsync(dir).

    The temp file is created *next to* the target (same directory, hence
    same filesystem), so the final ``os.replace`` is a true atomic rename
    — never the cross-device ``EXDEV`` failure a ``/tmp``-hosted temp
    file can hit.  With ``fsync`` (the default) the file's bytes are
    flushed to stable storage before the rename and the directory entry
    after it, so a power loss leaves either the old file or the complete
    new one, never a torn write that merely *looks* renamed.  Raises
    ``OSError`` — callers that must not crash wrap this (see
    :meth:`Checkpointer.write`).  On *any* failure the temp file is
    removed: an ENOSPC/EIO abort never strands an orphan next to the
    target, and the target keeps its previous content.

    ``fault_scope`` names the trust boundary for the fault plane
    (:mod:`repro.faults.plane`): the checkpointer writes under ``ckpt``,
    the result cache under ``cache``, the journal compactor under
    ``journal``, so one instrumented site covers every durable write in
    the system.
    """
    path = Path(path)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    enospc = faults.check(f"{fault_scope}.write.enospc")
    eio = faults.check(f"{fault_scope}.write.eio")
    torn = faults.check(f"{fault_scope}.write.torn")
    crash = faults.check(f"{fault_scope}.write.crash")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            if enospc is not None:
                handle.write(text[: len(text) // 2])
                raise OSError(
                    errno.ENOSPC,
                    f"injected fault {fault_scope}.write.enospc: no space left on device",
                )
            if torn is not None:
                # a crash mid-write: partial bytes in the temp file, no
                # rename — the target must keep its old content
                handle.write(text[: max(1, int(len(text) * torn.arg))])
                handle.flush()
                raise OSError(
                    errno.EIO,
                    f"injected fault {fault_scope}.write.torn: crashed mid-write",
                )
            handle.write(text)
            if fsync:
                handle.flush()
                if eio is not None:
                    raise OSError(
                        errno.EIO,
                        f"injected fault {fault_scope}.write.eio: fsync failed",
                    )
                os.fsync(handle.fileno())
        if crash is not None:
            # crashed after the bytes were durable but before the rename:
            # the new content is lost, the old file survives intact
            raise OSError(
                errno.EIO,
                f"injected fault {fault_scope}.write.crash: "
                "crashed after fsync, before rename",
            )
        os.replace(tmp, path)
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass
    if fsync:
        # persist the rename itself; some platforms cannot open a
        # directory for fsync — that degrades durability, not atomicity
        try:
            dir_fd = os.open(str(path.parent), os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dir_fd)
        except OSError:
            pass
        finally:
            os.close(dir_fd)


class Checkpointer:
    """Writes snapshots atomically into a directory, one file per analysis.

    ``every_steps > 0`` additionally enables periodic checkpointing from
    inside the engine loop; 0 keeps only the budget-trip and interpreter-
    exit writes.
    """

    def __init__(self, directory, name: str = "analysis", every_steps: int = 0):
        self.directory = Path(directory)
        self.name = name
        self.every_steps = int(every_steps)

    @property
    def path(self) -> Path:
        return self.directory / f"{self.name}.ckpt.json"

    def write(self, snapshot: Snapshot) -> Path:
        """Durable atomic write-rename; a crash mid-write never corrupts
        the file (see :func:`atomic_write_text`).

        Any I/O failure — unwritable directory, disk full, the directory
        racing away — surfaces as :class:`SnapshotError` with code
        :data:`~repro.core.diagnostics.CHECKPOINT_IO`, so callers record
        a diagnostic instead of dying on a raw ``OSError``.
        """
        start = time.perf_counter()
        text = snapshot.to_json()
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            atomic_write_text(self.path, text, fault_scope="ckpt")
        except OSError as exc:
            obs.incr("engine.ckpt.io_errors")
            raise SnapshotError(
                diagnostics.CHECKPOINT_IO,
                f"cannot write snapshot {self.path}: {exc}",
            ) from exc
        obs.incr("engine.ckpt.writes")
        obs.observe("engine.ckpt.bytes", len(text))
        obs.observe("engine.ckpt.write_seconds", time.perf_counter() - start)
        return self.path

    def load(self) -> Snapshot:
        """Load this checkpointer's snapshot (raises SnapshotError)."""
        return load_snapshot(self.path)


# -- built-in codecs ----------------------------------------------------------
#
# Leaf domain types every client shares.  Client-specific state types are
# registered by the client modules (see ``repro.analyses.simple_symbolic``).


def _register_builtin_codecs() -> None:
    from repro.cgraph.constraint_graph import ConstraintGraph
    from repro.expr.linear import LinearExpr
    from repro.expr.poly import Monomial, Poly
    from repro.hsm.hsm import HSM
    from repro.procset.interval import Bound, ProcSet, SymRange

    register_codec(
        LinearExpr,
        "linexpr",
        lambda e: {"c": e.constant, "k": sorted(e.coeffs.items())},
        lambda d: LinearExpr(d["c"], dict(d["k"])),
    )
    register_codec(
        Bound,
        "bound",
        lambda b: sorted(b.exprs, key=str),
        lambda exprs: Bound(exprs),
    )
    register_codec(
        SymRange,
        "symrange",
        lambda r: [r.lb, r.ub],
        lambda d: SymRange(d[0], d[1]),
    )
    register_codec(
        ProcSet,
        "procset",
        lambda p: list(p.ranges),
        lambda ranges: ProcSet(ranges),
    )
    register_codec(
        ConstraintGraph,
        "cgraph",
        lambda g: g.to_state(),
        ConstraintGraph.from_state,
    )
    register_codec(
        Monomial,
        "monomial",
        lambda m: sorted(m.powers.items()),
        lambda items: Monomial(dict(items)),
    )
    register_codec(
        Poly,
        "poly",
        lambda p: sorted(p.terms.items(), key=lambda item: str(item[0])),
        lambda items: Poly(dict(items)),
    )
    register_codec(
        HSM,
        "hsm",
        lambda h: [h.base, h.rep, h.stride],
        lambda d: HSM(d[0], d[1], d[2]),
    )
    register_codec(
        MatchRecord,
        "match_record",
        lambda r: {
            "send_node": r.send_node,
            "recv_node": r.recv_node,
            "sender_desc": r.sender_desc,
            "receiver_desc": r.receiver_desc,
            "send_label": r.send_label,
            "recv_label": r.recv_label,
            "mtype_send": r.mtype_send,
            "mtype_recv": r.mtype_recv,
        },
        lambda d: MatchRecord(**d),
    )
    register_codec(
        StaticTopology,
        "topology",
        lambda t: {"edges": sorted(t.edges), "records": list(t.records)},
        lambda d: StaticTopology(edges=set(d["edges"]), records=list(d["records"])),
    )
    register_codec(
        PCFGEdge,
        "pcfg_edge",
        lambda e: [e.src, e.dst, e.kind, e.detail],
        lambda d: PCFGEdge(d[0], d[1], d[2], d[3]),
    )
    register_codec(
        ExploredPCFG,
        "explored_pcfg",
        lambda g: {
            "nodes": sorted(g.nodes),
            "edges": list(g.edges),
            "entry": g.entry,
        },
        lambda d: ExploredPCFG(
            nodes=set(d["nodes"]), edges=list(d["edges"]), entry=d["entry"]
        ),
    )
    register_codec(
        Diagnostic,
        "diagnostic",
        lambda diag: {
            "code": diag.code,
            "message": diag.message,
            "severity": diag.severity,
            "node_key": diag.node_key,
            "blocked": diag.blocked,
            "callback": diag.callback,
            "provenance_id": diag.provenance_id,
        },
        lambda d: Diagnostic(**d),
    )


_register_builtin_codecs()
