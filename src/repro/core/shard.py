"""Sharded multi-process execution of the pCFG fixpoint.

The fixpoint of Fig. 4 is a chaotic iteration: any fair schedule of the
worklist converges to the same least fixed point of the join/widen lattice.
That freedom is what this module exploits.  :class:`ShardedEngine`
partitions the pCFG configuration space into contiguous *reverse-postorder
ranges* (a configuration belongs to the shard owning the smallest RPO rank
among its CFG locations, so the shard map is stable and cheap) and runs a
bulk-synchronous iteration:

1. **Scatter** — group the dirty configurations by shard and submit one
   task per non-empty shard to a ``ProcessPoolExecutor``.  The pool's
   shared call queue is the work-stealing mechanism: with
   ``SHARD_FACTOR``× more shards than workers, an idle worker pulls the
   next shard task the moment it finishes, so uneven shards rebalance
   without explicit stealing machinery.  Task payloads ship states through
   the structural snapshot codecs (:mod:`repro.core.checkpoint`), the same
   stable serialization the checkpoint layer proves round-trip-exact.
2. **Local fixpoint** — each worker runs the *identical* per-step
   semantics (:class:`repro.core.step.StepCore`, shared with the serial
   engine) to a local fixed point over its shard: in-shard successors are
   joined/widened into the worker's table immediately; successors landing
   in other shards become *boundary facts* and are returned un-joined.
3. **Gather / reconcile** — the parent merges worker results in shard-id
   order (determinism), overwrites in-shard states (a worker's result
   state is always ⊒ the state it was handed), then absorbs every
   boundary fact through the same ``_absorb`` join/widen path the serial
   engine uses.  Facts that change a state mark it dirty for the next
   round.
4. **Converge** — rounds repeat until no shard produces a new fact.  This
   is the convergence barrier: an empty dirty set means every shard is at
   a fixed point *and* every cross-shard fact has been reconciled.

Resource budgets are enforced at round boundaries (each worker is
additionally capped at the remaining step/deadline budget, so parallel
runs can overshoot ``max_steps`` by at most one round's worth of work —
the budget is approximate in parallel mode, never silently unbounded).

Failure containment mirrors the serial engine.  A worker process that
dies mid-round (kill, OOM, segfault) surfaces as ``BrokenProcessPool``;
the parent records a ``SHARD_WORKER_LOST`` warning and finishes the
remaining work in-process — the run degrades to a ``partial`` result
with a diagnostic instead of hanging.  A client whose states cannot be
pickled or codec-encoded falls back to the single-process engine with a
``SHARD_FALLBACK`` info diagnostic.  Runs with provenance recording or
``strict`` mode delegate to the serial engine outright: both demand a
single deterministic event order that a process pool cannot provide.

Checkpointing is *serialize-on-round-boundary*: snapshots are only taken
between rounds (where the parent's tables are consistent), using the
standard snapshot format — a snapshot written by a sharded run resumes in
either engine, and vice versa.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import pickle
import signal
import time
from bisect import bisect_right
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Set, Tuple

from repro.core import checkpoint as checkpoint_mod
from repro.core import diagnostics
from repro.core import progress as progress_hooks
from repro.core.diagnostics import Diagnostic
from repro.core.engine import (
    _RECOVERABLE,
    AnalysisResult,
    EngineLimits,
    PCFGEngine,
)
from repro.core.pcfg import PCFGEdge, PCFGNodeKey
from repro.core.topology import StaticTopology
from repro.faults import plane as faults
from repro.lang.cfg import CFG
from repro.obs import provenance, slog, trace
from repro.obs import recorder as obs

#: shards per worker process — more shards than workers lets the pool's
#: shared call queue rebalance uneven shards onto idle workers
SHARD_FACTOR = 2

#: crash-injection hook for tests: a worker assigned this shard id kills
#: itself with SIGKILL before processing (simulates OOM-killer / segfault)
KILL_ENV = "REPRO_SHARD_KILL_SHARD"


class ShardPlan:
    """Contiguous partition of the RPO rank space into ``num_shards`` ranges.

    A configuration's shard is determined by the smallest RPO rank among
    its CFG locations (``StepCore._priority(key)[0]``) — upstream-aligned,
    so configurations that feed each other tend to share a shard and
    cross-shard traffic concentrates at real dataflow frontiers.
    """

    __slots__ = ("num_shards", "cuts")

    def __init__(self, num_ranks: int, num_shards: int):
        # rank ``num_ranks`` is the default for nodes missing from the RPO
        # index, so the domain is one wider than the index
        domain = num_ranks + 1
        self.num_shards = max(1, min(num_shards, domain))
        self.cuts: Tuple[int, ...] = tuple(
            (i * domain) // self.num_shards for i in range(1, self.num_shards)
        )

    def shard_of(self, min_rank: int) -> int:
        return bisect_right(self.cuts, min_rank)


# -- the worker side -----------------------------------------------------------

#: per-process worker engine, built once by the pool initializer
_WORKER: Optional["_ShardWorker"] = None


def _worker_init(blob: bytes) -> None:
    global _WORKER
    obs.reset()  # a forked child must not write into the parent's recorder
    cfg, client, limits, intern_states = pickle.loads(blob)
    _WORKER = _ShardWorker(cfg, client, limits, intern_states)


def _worker_run(task: dict) -> dict:
    return _WORKER.run_shard(task)


class _ShardWorker(PCFGEngine):
    """One worker process's engine: StepCore semantics plus the inherited
    degradation machinery, driven by :meth:`run_shard` instead of the
    serial worklist loop."""

    def run_shard(self, task: dict) -> dict:
        if task.get("kill") or os.environ.get(KILL_ENV) == str(task["shard"]):
            os.kill(os.getpid(), signal.SIGKILL)
        span_ctx = trace.TraceContext.from_dict(task.get("trace"))
        if span_ctx is not None and task.get("trace_sink"):
            # each pool worker writes its own span shard; the stitcher
            # reassembles them by trace id across process boundaries
            trace.configure_sink(task["trace_sink"], "shard-worker")
        with trace.activate(span_ctx):
            with trace.span("engine.shard.run", shard=task["shard"]):
                if task["capture"]:
                    with obs.recording() as recorder:
                        out = self._local_fixpoint(task)
                    out["counters"] = dict(recorder.counters)
                else:
                    out = self._local_fixpoint(task)
                    out["counters"] = None
        return out

    def _in_shard(self, key: PCFGNodeKey, cuts, shard: int) -> bool:
        return bisect_right(cuts, self._priority(key)[0]) == shard

    def _local_fixpoint(self, task: dict) -> dict:
        shard, cuts = task["shard"], task["cuts"]
        states: Dict[PCFGNodeKey, object] = {
            key: self._interned(checkpoint_mod.decode(enc))
            for key, enc in task["states"]
        }
        baseline = dict(states)  # object-identity snapshot: compute the delta
        visits: Dict[PCFGNodeKey, int] = dict(task["visits"])
        res = AnalysisResult(topology=StaticTopology())
        self._prov = None
        self._run_event = None
        deadline = None
        if task["deadline_sec"] is not None:
            deadline = time.monotonic() + task["deadline_sec"]

        heap: List[tuple] = []
        pending: Set[PCFGNodeKey] = set()
        seq = 0

        def enqueue(key: PCFGNodeKey) -> None:
            nonlocal seq
            if key in pending:
                obs.incr("engine.worklist.dedup")
                return
            pending.add(key)
            heapq.heappush(heap, (self._priority(key), seq, key))
            seq += 1

        for key in sorted(task["dirty"], key=self._priority):
            enqueue(key)

        #: boundary facts for other shards, deduped per (target, fingerprint)
        boundary: List[tuple] = []
        boundary_seen: Set[tuple] = set()
        steps = 0
        while heap:
            if steps >= task["max_steps"] or (
                deadline is not None and time.monotonic() > deadline
            ):
                break  # out of budget: hand the rest back as leftover
            _, _, key = heapq.heappop(heap)
            pending.discard(key)
            steps += 1
            obs.incr("engine.steps")
            visits[key] = visits.get(key, 0) + 1
            state = states[key]
            try:
                with obs.span("engine.step"):
                    successors = self._step(key, state, res)
            except _RECOVERABLE as failure:
                self._degrade(res, key, failure)
                continue
            for locs, succ_state, kind, detail in successors:
                try:
                    formed = self._canonical_form(locs, succ_state)
                    if formed is None:
                        continue
                    succ_key, succ_state, _ = formed
                    if self._in_shard(succ_key, cuts, shard):
                        res.explored.add_edge(
                            PCFGEdge(key, succ_key, kind, detail)
                        )
                        changed = self._absorb(
                            states, visits, succ_key, succ_state,
                            key, kind, detail, res,
                        )
                        if changed is not None:
                            enqueue(changed)
                    else:
                        obs.incr("engine.shard.boundary_facts")
                        fp = self._call(
                            "state_fingerprint",
                            self.client.state_fingerprint,
                            succ_state,
                        )
                        sig = (succ_key, fp, kind)
                        if fp is None or sig not in boundary_seen:
                            boundary_seen.add(sig)
                            boundary.append(
                                (succ_key, checkpoint_mod.encode(succ_state),
                                 key, kind, detail)
                            )
                except _RECOVERABLE as failure:
                    self._degrade(res, key, failure)
                    continue

        changed_states = [
            (key, checkpoint_mod.encode(state))
            for key, state in states.items()
            if baseline.get(key) is not state
        ]
        return {
            "shard": shard,
            "steps": steps,
            "changed": changed_states,
            "visits": visits,
            "boundary": boundary,
            "records": list(res.topology.records),
            "final": [checkpoint_mod.encode(s) for s in res.final_states],
            "vacuous": list(res.vacuous_blocks),
            "edges": list(res.explored.edges),
            "diagnostics": list(res.diagnostics),
            "top_nodes": set(res.top_nodes),
            "blocked": list(res.blocked_at_giveup),
            "gave_up": res.gave_up,
            "reason": res.give_up_reason,
            "leftover": sorted(pending),
        }


# -- the parent side -----------------------------------------------------------


class ShardedEngine(PCFGEngine):
    """Multi-process pCFG fixpoint with the serial engine's semantics.

    Drop-in for :class:`PCFGEngine` plus a ``jobs`` knob.  ``jobs <= 1``,
    ``strict`` mode, and active provenance recording all delegate to the
    serial engine; unpicklable/uncodecable clients fall back to it with a
    ``SHARD_FALLBACK`` info diagnostic.  ``run()`` never raises and never
    hangs: a lost worker degrades the run to a diagnosed partial result.
    """

    def __init__(
        self,
        cfg: CFG,
        client,
        limits: Optional[EngineLimits] = None,
        jobs: int = 2,
        intern_states: bool = True,
        checkpointer=None,
        progress=None,
    ):
        super().__init__(
            cfg, client, limits, intern_states, checkpointer, progress=progress
        )
        self.jobs = max(1, int(jobs))
        self._shard_cache: Dict[PCFGNodeKey, int] = {}

    # inherited run() wraps _run in the engine.run span

    def _run(self, resume=None) -> AnalysisResult:
        limits = self.limits
        self._prov = provenance.active()
        if self.jobs <= 1 or limits.strict or self._prov is not None:
            # strict mode needs deterministic first-failure order and the
            # flight recorder needs one causal event stream — both are
            # single-process properties
            return super()._run(resume)
        try:
            blob = pickle.dumps(
                (self.cfg, self.client, limits, self.intern_states),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception as exc:
            return self._serial_fallback(resume, f"CFG/client not picklable: {exc}")

        self._prov = None
        self._run_event = None
        result = AnalysisResult(topology=StaticTopology())
        states: Dict[PCFGNodeKey, object] = {}
        visits: Dict[PCFGNodeKey, int] = {}
        self._intern = {}
        self._shard_cache = {}
        dirty: Set[PCFGNodeKey] = set()
        deadline = None
        if limits.deadline_sec is not None:
            deadline = time.monotonic() + limits.deadline_sec

        restored = self._try_resume(resume, result) if resume is not None else None
        if restored is not None:
            restored_run, source = restored
            result.steps = restored_run.steps
            states = restored_run.states
            visits = restored_run.visits
            result.topology = restored_run.topology
            result.final_states = restored_run.final_states
            result.vacuous_blocks = restored_run.vacuous_blocks
            result.explored = restored_run.explored
            result.blocked_at_giveup = restored_run.blocked_at_giveup
            result.top_nodes = restored_run.top_nodes
            kept = [
                diag
                for diag in restored_run.diagnostics
                if diag.code not in diagnostics.BUDGET_CODES
            ]
            result.diagnostics.extend(kept)
            result.gave_up = any(
                diag.severity != diagnostics.INFO for diag in kept
            )
            result.give_up_reason = next(
                (
                    diag.message
                    for diag in kept
                    if diag.severity != diagnostics.INFO
                ),
                "",
            )
            for key in list(states):
                states[key] = self._interned(states[key])
            dirty = {key for _, _, key in restored_run.worklist}
            result.resumed_from = source
            obs.incr("engine.ckpt.resumes")
            slog.info("engine.resume", source=source, steps=result.steps)
        else:
            try:
                initial = self._call("initial", self.client.initial)
                entry_key = self._canonicalize_into(
                    states, visits, None, [self.cfg.entry], initial,
                    "entry", "", result,
                )
            except _RECOVERABLE as failure:
                self._degrade(result, None, failure)
                result.node_states = states
                self._finalize(result, aborted=True)
                return result
            if entry_key is not None:
                dirty.add(entry_key)

        try:
            checkpoint_mod.encode(states)
        except Exception as exc:
            # no snapshot codecs for this client's states: nothing can
            # cross a process boundary, so drain in-process
            self._note_fallback(result, f"states not codec-encodable: {exc}")
            self._drain_inline(result, states, visits, dirty, deadline)
            result.node_states = states
            self._finalize(result, aborted=False)
            return result

        plan = ShardPlan(len(self._rpo), self.jobs * SHARD_FACTOR)
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(blob,),
        )
        capture = obs.enabled()
        last_ckpt_steps = result.steps
        tripped = False
        rounds = 0
        try:
            while dirty:
                code_msg = self._parent_budget_check(result, states, deadline)
                if code_msg is not None:
                    self._record_budget(result, *code_msg)
                    tripped = True
                    break
                obs.incr("engine.shard.rounds")
                rounds += 1
                if self._progress is not None:
                    try:
                        self._progress({
                            "event": "progress",
                            "phase": "round",
                            "round": rounds,
                            "steps": result.steps,
                            "dirty": len(dirty),
                        })
                    except Exception:
                        self._progress = None
                by_shard: Dict[int, List[PCFGNodeKey]] = {}
                for key in dirty:
                    by_shard.setdefault(self._shard_of(plan, key), []).append(key)
                try:
                    tasks = self._build_tasks(
                        plan, by_shard, states, visits, result, deadline, capture
                    )
                except checkpoint_mod.SnapshotError as exc:
                    self._note_fallback(
                        result, f"state shipping failed mid-run: {exc}"
                    )
                    self._drain_inline(result, states, visits, dirty, deadline)
                    dirty = set()
                    break
                if tasks and faults.check("shard.worker.kill") is not None:
                    # parent-side decision (coverage accounting stays in
                    # one process); the worker SIGKILLs itself on pickup,
                    # exercising the BrokenProcessPool containment path
                    tasks[0]["kill"] = True
                futures = {
                    pool.submit(_worker_run, task): task["shard"]
                    for task in tasks
                }
                outcomes: List[dict] = []
                lost = False
                shipping_failed = False
                for future in futures:
                    try:
                        outcomes.append(future.result())
                    except BrokenProcessPool:
                        lost = True
                    except checkpoint_mod.SnapshotError as exc:
                        shipping_failed = True
                        self._note_fallback(
                            result, f"state shipping failed in a worker: {exc}"
                        )
                dirty, corrupt_shards = self._merge_round(
                    result, states, visits, outcomes
                )
                if corrupt_shards:
                    shipping_failed = True
                    self._note_fallback(
                        result,
                        "boundary facts from shard(s) "
                        f"{sorted(corrupt_shards)} undecodable",
                    )
                if lost or shipping_failed:
                    # a shard whose facts did not merge cleanly cannot be
                    # trusted as converged: silently dropping one boundary
                    # fact could freeze an early (unsound) fixpoint, so
                    # its whole input re-drains through the serial path
                    merged = {
                        out["shard"] for out in outcomes
                    } - corrupt_shards
                    dropped = {
                        key
                        for shard, keys in by_shard.items()
                        if shard not in merged
                        for key in keys
                    }
                    if lost:
                        self._worker_lost(result)
                    self._drain_inline(
                        result, states, visits, dirty | dropped, deadline
                    )
                    dirty = set()
                    break
                if (
                    self.checkpointer is not None
                    and self.checkpointer.every_steps > 0
                    and result.steps - last_ckpt_steps
                    >= self.checkpointer.every_steps
                ):
                    with obs.span("engine.checkpoint"):
                        snap = self._capture_sharded(result, states, visits, dirty)
                        if snap is not None:
                            self._write_checkpoint(snap, result)
                            last_ckpt_steps = result.steps
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if tripped:
            snap = self._capture_sharded(result, states, visits, dirty)
            if snap is not None:
                result.snapshot = snap
                if self.checkpointer is not None:
                    self._write_checkpoint(snap, result)
        result.node_states = states
        self._finalize(result, aborted=False)
        return result

    # -- round plumbing ---------------------------------------------------------

    def _shard_of(self, plan: ShardPlan, key: PCFGNodeKey) -> int:
        shard = self._shard_cache.get(key)
        if shard is None:
            shard = plan.shard_of(self._priority(key)[0])
            self._shard_cache[key] = shard
        return shard

    def _build_tasks(
        self, plan, by_shard, states, visits, result, deadline, capture
    ) -> List[dict]:
        limits = self.limits
        remaining_steps = max(1, limits.max_steps - result.steps)
        remaining_sec = None
        if deadline is not None:
            remaining_sec = max(0.01, deadline - time.monotonic())
        shard_states: Dict[int, List[tuple]] = {shard: [] for shard in by_shard}
        for key, state in states.items():
            shard = self._shard_of(plan, key)
            if shard in shard_states:
                shard_states[shard].append((key, checkpoint_mod.encode(state)))
        ctx = trace.current()
        trace_dict = ctx.to_dict() if ctx is not None else None
        sink = str(trace.sink()) if trace_dict is not None and trace.sink() else None
        return [
            {
                "shard": shard,
                "cuts": plan.cuts,
                "states": shard_states[shard],
                "visits": {
                    key: visits[key]
                    for key, _ in shard_states[shard]
                    if key in visits
                },
                "dirty": sorted(keys),
                "max_steps": remaining_steps,
                "deadline_sec": remaining_sec,
                "capture": capture,
                "trace": trace_dict,
                "trace_sink": sink,
            }
            for shard, keys in sorted(by_shard.items())
        ]

    def _merge_round(
        self, result, states, visits, outcomes: List[dict]
    ) -> Tuple[Set[PCFGNodeKey], Set[int]]:
        """Fold worker results into the parent tables; returns the next
        round's dirty set plus the shards whose payloads failed to decode.
        Merged in shard-id order so the outcome is independent of worker
        completion order.

        Decode failures are *contained*, never propagated: a shard whose
        states or boundary facts arrive corrupt (damaged shared memory,
        codec drift, injected) lands in the returned ``corrupt`` set and
        the caller re-drains its whole input serially.  Validation runs
        *before* any merge: once a shard's in-round states land in the
        parent tables, re-draining its round inputs is a no-op ("nothing
        changed") and an interior boundary fact the corruption destroyed
        would never be regenerated — the fixpoint would freeze early,
        silently missing matches.  Rejecting the whole outcome up front
        keeps the pre-round states, so the serial re-drain redoes the
        shard's work from scratch and re-emits every fact.
        """
        dirty: Set[PCFGNodeKey] = set()
        corrupt: Set[int] = set()
        outcomes = sorted(outcomes, key=lambda out: out["shard"])
        # pass 0: decode + validate every payload before touching any
        # parent table; a single bad fact poisons its whole outcome
        inject = faults.check("shard.boundary.corrupt")
        decoded: List[tuple] = []
        for out in outcomes:
            try:
                final = [checkpoint_mod.decode(enc) for enc in out["final"]]
                changed = [
                    (key, checkpoint_mod.decode(enc))
                    for key, enc in out["changed"]
                ]
                boundary = []
                for key, enc, src_key, kind, detail in out["boundary"]:
                    if inject is not None:
                        enc = {"__t__": "__injected_corruption__"}
                        inject = None  # damage exactly one fact per firing
                    boundary.append(
                        (key, checkpoint_mod.decode(enc), src_key, kind, detail)
                    )
            except checkpoint_mod.SnapshotError as exc:
                obs.incr("engine.shard.corrupt_payloads")
                slog.warning(
                    "engine.shard_corrupt_payload",
                    shard=out["shard"],
                    error=str(exc),
                )
                corrupt.add(out["shard"])
                continue
            decoded.append((out, final, changed, boundary))
        # pass 1: in-shard results (a worker's state strictly refines the
        # state it was handed, so overwrite is the correct merge)
        for out, final, changed, _boundary in decoded:
            obs.merge_counters(out["counters"])
            result.steps += out["steps"]
            for record in out["records"]:
                result.topology.add(record)
            result.vacuous_blocks.extend(out["vacuous"])
            for edge in out["edges"]:
                result.explored.add_edge(edge)
            result.diagnostics.extend(out["diagnostics"])
            result.top_nodes.update(out["top_nodes"])
            result.blocked_at_giveup.extend(out["blocked"])
            if out["gave_up"]:
                result.gave_up = True
                if not result.give_up_reason:
                    result.give_up_reason = out["reason"]
            for state in final:
                result.final_states.append(self._interned(state))
            for key, state in changed:
                states[key] = self._interned(state)
            for key, count in out["visits"].items():
                if count > visits.get(key, 0):
                    visits[key] = count
            dirty.update(out["leftover"])
        # pass 2: boundary facts — only after *all* in-shard overwrites, so
        # a fact joining into a shard another worker just advanced merges
        # with the fresh state, not the stale one
        for out, _final, _changed, boundary in decoded:
            for key, state, src_key, kind, detail in boundary:
                result.explored.add_edge(PCFGEdge(src_key, key, kind, detail))
                try:
                    with obs.span("engine.shard.reconcile"):
                        changed = self._absorb(
                            states, visits, key, state,
                            src_key, kind, detail, result,
                        )
                except _RECOVERABLE as failure:
                    self._degrade(result, src_key, failure)
                    continue
                if changed is not None:
                    dirty.add(changed)
        return dirty, corrupt

    def _parent_budget_check(
        self, result, states, deadline
    ) -> Optional[Tuple[str, str]]:
        """Round-boundary budget enforcement; returns (code, message) on a
        trip.  Parallel budgets are approximate: workers are individually
        capped at the remaining budget, and the parent re-checks here."""
        limits = self.limits
        if result.steps >= limits.max_steps:
            return (
                diagnostics.BUDGET_STEPS,
                f"engine step limit {limits.max_steps} exceeded",
            )
        if deadline is not None and time.monotonic() > deadline:
            return (
                diagnostics.BUDGET_DEADLINE,
                f"wall-clock deadline {limits.deadline_sec}s exceeded "
                f"after {result.steps} steps",
            )
        if limits.max_state_bytes is not None:
            usage = self._state_bytes(states)
            if usage > limits.max_state_bytes:
                return (
                    diagnostics.BUDGET_MEMORY,
                    f"retained state ~{usage} bytes exceeds budget "
                    f"{limits.max_state_bytes}",
                )
        return None

    def _capture_sharded(self, result, states, visits, dirty):
        """Snapshot between rounds: the dirty set *is* the worklist, so the
        snapshot resumes in either engine."""
        worklist = [
            (self._priority(key), seq, key)
            for seq, key in enumerate(sorted(dirty, key=self._priority))
        ]
        return self._capture(
            result, states, visits, worklist, len(worklist)
        )

    # -- degraded modes ----------------------------------------------------------

    def _serial_fallback(self, resume, why: str) -> AnalysisResult:
        result = super()._run(resume)
        self._note_fallback(result, why)
        return result

    def _note_fallback(self, result, why: str) -> None:
        obs.incr("engine.shard.fallbacks")
        slog.info("engine.shard_fallback", reason=why)
        result.diagnostics.append(
            Diagnostic(
                code=diagnostics.SHARD_FALLBACK,
                message=f"{why}; ran single-process",
                severity=diagnostics.INFO,
            )
        )

    def _worker_lost(self, result) -> None:
        obs.incr("engine.shard.workers_lost")
        message = (
            "a shard worker process died mid-round; "
            "remaining work drained in-process"
        )
        slog.warning("engine.shard_worker_lost", steps=result.steps)
        result.diagnostics.append(
            Diagnostic(
                code=diagnostics.SHARD_WORKER_LOST,
                message=message,
                severity=diagnostics.WARNING,
            )
        )
        result.gave_up = True
        if not result.give_up_reason:
            result.give_up_reason = message

    def _drain_inline(self, result, states, visits, dirty, deadline) -> None:
        """Serial in-process drain of ``dirty`` to the fixed point — the
        worker-loss and codec-failure escape hatch.  Same step semantics,
        same budget checks; never raises."""
        limits = self.limits
        heap: List[tuple] = []
        pending: Set[PCFGNodeKey] = set()
        seq = 0

        def enqueue(key: PCFGNodeKey) -> None:
            nonlocal seq
            if key in pending:
                obs.incr("engine.worklist.dedup")
                return
            pending.add(key)
            heapq.heappush(heap, (self._priority(key), seq, key))
            seq += 1

        for key in sorted(dirty, key=self._priority):
            enqueue(key)
        while heap:
            result.steps += 1
            obs.incr("engine.steps")
            if result.steps > limits.max_steps:
                self._record_budget(
                    result,
                    diagnostics.BUDGET_STEPS,
                    f"engine step limit {limits.max_steps} exceeded",
                )
                break
            if deadline is not None and time.monotonic() > deadline:
                self._record_budget(
                    result,
                    diagnostics.BUDGET_DEADLINE,
                    f"wall-clock deadline {limits.deadline_sec}s exceeded "
                    f"after {result.steps} steps",
                )
                break
            _, _, key = heapq.heappop(heap)
            pending.discard(key)
            visits[key] = visits.get(key, 0) + 1
            state = states[key]
            try:
                with obs.span("engine.step"):
                    successors = self._step(key, state, result)
            except _RECOVERABLE as failure:
                self._degrade(result, key, failure)
                continue
            for locs, succ_state, kind, detail in successors:
                try:
                    succ_key = self._canonicalize_into(
                        states, visits, key, locs, succ_state, kind, detail,
                        result,
                    )
                except _RECOVERABLE as failure:
                    self._degrade(result, key, failure)
                    continue
                if succ_key is not None:
                    enqueue(succ_key)
