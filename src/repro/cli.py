"""Command-line driver: ``python -m repro [options] <program.mpl | name>``.

Examples::

    python -m repro exchange_with_root             # analyze a corpus program
    python -m repro --list                         # list corpus programs
    python -m repro my_program.mpl --np 8          # analyze + validate a file
    python -m repro pingpong --constants           # constant propagation
    python -m repro message_leak --bugs            # bug detection
    python -m repro profile mdcask_full            # Section IX cost profile
    python -m repro sweep --tier smoke --seed 1337 # differential corpus sweep
    python -m repro mdcask_full --checkpoint-dir . # crash-safe snapshots
    python -m repro resume mdcask_full             # continue an interrupted run
    python -m repro explain pingpong --why-match   # causal chain of a match
    python -m repro explain bad --why-top          # why did a node fall to T?
    python -m repro profile pingpong --trace t.json  # Perfetto timeline
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analyses.bugs import detect_bugs
from repro.analyses.cartesian import CartesianClient
from repro.analyses.constprop import propagate_constants
from repro.analyses.patterns import classify_topology
from repro.analyses.simple_symbolic import analyze_program
from repro.core import diagnostics
from repro.core.driver import analyze_with_fallback
from repro.core.engine import EngineLimits
from repro.core.errors import GiveUp, MalformedCFG
from repro.lang import parse, programs
from repro.obs import export, profile_program, provenance, slog
from repro.runtime import DeadlockError


def _add_log_level(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level", default=None, metavar="LEVEL",
        choices=sorted(slog.LEVELS),
        help="mirror recorder events to stderr as single-line JSON at this "
             "level (debug|info|warning|error); the REPRO_LOG environment "
             "variable sets the same knob",
    )


def _load(target: str):
    path = Path(target)
    if path.exists():
        return parse(path.read_text()), None
    try:
        spec = programs.get(target)
    except KeyError:
        raise SystemExit(
            f"error: {target!r} is neither a file nor a corpus program "
            f"(try --list)"
        )
    return spec.parse(), spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Communication-sensitive static dataflow for MPL programs",
    )
    parser.add_argument("target", nargs="?", help="MPL file or corpus program name")
    parser.add_argument("--list", action="store_true", help="list corpus programs")
    parser.add_argument(
        "--np", type=int, default=8, help="process count for validation runs"
    )
    parser.add_argument(
        "--inputs", type=int, nargs="*", default=None,
        help="values consumed by input() calls",
    )
    parser.add_argument(
        "--constants", action="store_true", help="run constant propagation"
    )
    parser.add_argument("--bugs", action="store_true", help="run bug detection")
    parser.add_argument(
        "--no-validate", action="store_true", help="skip the concrete cross-check"
    )
    parser.add_argument(
        "--fallback", action="store_true",
        help="on a non-exact result, climb the precision-fallback ladder "
             "(escalated limits, then simpler clients, then the MPI-CFG "
             "baseline) and report which rung answered",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="paper-fidelity mode: abort the whole analysis on the first "
             "failure instead of localizing T to one pCFG node",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SEC",
        help="wall-clock budget for the engine run, in seconds",
    )
    parser.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="engine step budget (default: 20000)",
    )
    parser.add_argument(
        "--max-state-bytes", type=int, default=None, metavar="BYTES",
        help="retained-state memory budget for the engine run",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write crash-safe engine snapshots into DIR "
             "(default when checkpointing is active: .repro-ckpt)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="also snapshot every N engine steps (0: snapshot only on "
             "budget trips and interpreter exit)",
    )
    parser.add_argument(
        "--resume", nargs="?", const="auto", default=None, metavar="SNAPSHOT",
        help="warm-start from a snapshot file; with no value, use the "
             "target's snapshot in the checkpoint directory (a missing or "
             "stale snapshot degrades to a cold start, never an error)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the analysis: shards the pCFG fixpoint "
             "across N processes (results are lattice-equal to --jobs 1); "
             "with --fallback, runs the ladder rungs speculatively in the "
             "same pool instead",
    )
    _add_log_level(parser)
    return parser


def _engine_limits(args) -> EngineLimits:
    limits = EngineLimits(strict=args.strict, deadline_sec=args.deadline,
                          max_state_bytes=args.max_state_bytes)
    if args.max_steps is not None:
        limits.max_steps = args.max_steps
    return limits


def _checkpoint_config(args, program_name: str):
    """Build the ``(checkpointer, resume)`` pair for this invocation.

    Checkpointing activates when any of ``--checkpoint-dir``,
    ``--checkpoint-every`` or ``--resume`` is given; otherwise both are
    None and the engine runs exactly as before.
    """
    from repro.core.checkpoint import Checkpointer

    wants = (
        args.checkpoint_dir is not None
        or args.checkpoint_every > 0
        or args.resume is not None
    )
    if not wants:
        return None, None
    directory = Path(args.checkpoint_dir or ".repro-ckpt")
    checkpointer = Checkpointer(
        directory, name=program_name, every_steps=args.checkpoint_every
    )
    if args.resume is None:
        resume = None
    elif args.resume == "auto":
        resume = checkpointer.path
    else:
        resume = Path(args.resume)
    return checkpointer, resume


def _print_degraded(result) -> None:
    """Report a non-exact engine result: reason, diagnostics, and whatever
    sound partial topology survived."""
    print(f"analysis gave up (T): {result.give_up_reason}")
    print(f"confidence: {result.confidence} "
          f"({diagnostics.summarize(result.diagnostics)})")
    for diag in result.diagnostics:
        print(f"  {diag.format()}")
    if result.matches:
        print("partial communication topology (sound, possibly incomplete):")
        print(result.topology.describe())


def build_profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro profile",
        description="Section IX cost profile of one analysis run",
    )
    parser.add_argument("target", help="MPL file or corpus program name")
    parser.add_argument(
        "--json", dest="json_path", default="profile.json",
        help="where to write the JSON profile (default: profile.json)",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="print the table only"
    )
    parser.add_argument(
        "--naive", action="store_true",
        help="profile the naive full-reclosure strategy instead",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also record provenance and export a Chrome trace (load in "
             "chrome://tracing or ui.perfetto.dev)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="FILE",
        help="also record provenance and export the JSONL event journal",
    )
    _add_log_level(parser)
    return parser


def profile_main(argv) -> int:
    args = build_profile_parser().parse_args(argv)
    if args.log_level:
        slog.configure(args.log_level)
    program, spec = _load(args.target)
    name = spec.name if spec else Path(args.target).stem
    if args.trace or args.journal:
        # spill evicted events straight into the journal file so the
        # exported history is complete even past the ring capacity
        with provenance.recording(spill_path=args.journal) as prov:
            profile, result = profile_program(program, name=name, naive=args.naive)
        if args.trace:
            export.write_chrome_trace(args.trace, prov, process_name=name)
            print(f"wrote Chrome trace: {args.trace} "
                  f"({prov.total_events} events)")
        if args.journal:
            export.write_journal(args.journal, prov)
            print(f"wrote event journal: {args.journal}")
    else:
        profile, result = profile_program(program, name=name, naive=args.naive)
    print(profile.table())
    if not args.no_json:
        Path(args.json_path).write_text(profile.to_json())
        print(f"\nwrote {args.json_path}")
    if result.gave_up:
        print(f"analysis gave up (T): {result.give_up_reason}")
        return 1
    return 0


# -- repro explain -------------------------------------------------------------

_EXPLAIN_CLIENTS = ("cartesian", "simple-symbolic", "constprop")


def build_explain_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro explain",
        description="Re-run an analysis with the provenance flight recorder "
                    "on and walk the derivation DAG backward: why did a node "
                    "fall to T, why did (or didn't) a match fire, how was a "
                    "node's state derived?",
    )
    parser.add_argument("target", help="MPL file or corpus program name")
    parser.add_argument(
        "--client", choices=_EXPLAIN_CLIENTS, default="cartesian",
        help="client analysis to run (default: cartesian)",
    )
    parser.add_argument(
        "--why-top", action="store_true",
        help="explain the first degradation: the causal chain from the "
             "entry to the event (match failure, widen, client fault, "
             "budget trip) that degraded the run",
    )
    parser.add_argument(
        "--why-match", action="store_true",
        help="explain send-receive matching: the causal chain behind each "
             "established match, or the last failed attempts when none was",
    )
    parser.add_argument(
        "--node", default=None, metavar="LOCS",
        help="explain one pCFG node: comma-separated CFG node ids, e.g. "
             "'3,7' (see the node keys in diagnostics/topology output)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="export the run's Chrome trace (Perfetto-loadable JSON)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="FILE",
        help="export the run's JSONL event journal",
    )
    parser.add_argument(
        "--capacity", type=int, default=provenance.DEFAULT_CAPACITY,
        metavar="N", help="flight-recorder ring capacity in events",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="paper-fidelity mode (abort on first failure)",
    )
    parser.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="engine step budget (default: 20000)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SEC",
        help="wall-clock budget for the engine run, in seconds",
    )
    _add_log_level(parser)
    return parser


def _explain_client(name: str):
    if name == "simple-symbolic":
        from repro.analyses.simple_symbolic import SimpleSymbolicClient

        return SimpleSymbolicClient()
    if name == "constprop":
        from repro.analyses.constprop import ConstantPropagationClient

        return ConstantPropagationClient()
    return CartesianClient()


def _print_chain(prov, event_id, cfg, header: str) -> bool:
    """Print one causal chain (oldest first); False when unresolvable."""
    chain = prov.chain(event_id)
    if not chain:
        return False
    print(header)
    for depth, event in enumerate(chain):
        indent = "  " * min(depth, 8)
        print(f"  {indent}{event.describe(cfg)}")
        if event.data:
            rendered = json.dumps(event.data, sort_keys=True, default=str)
            if len(rendered) > 240:
                rendered = rendered[:240] + "..."
            print(f"  {indent}  data: {rendered}")
    return True


def explain_main(argv) -> int:
    args = build_explain_parser().parse_args(argv)
    if args.log_level:
        slog.configure(args.log_level)
    program, _spec = _load(args.target)
    limits = EngineLimits(strict=args.strict, deadline_sec=args.deadline)
    if args.max_steps is not None:
        limits.max_steps = args.max_steps
    client = _explain_client(args.client)
    with provenance.recording(capacity=args.capacity, spill_path=args.journal) as prov:
        result, cfg, client = analyze_program(program, client, limits)

    print(
        f"confidence: {result.confidence} "
        f"({diagnostics.summarize(result.diagnostics)}); "
        f"{prov.total_events} provenance events, {result.steps} engine steps"
    )
    if args.trace:
        export.write_chrome_trace(args.trace, prov)
        print(f"wrote Chrome trace: {args.trace}")
    if args.journal:
        export.write_journal(args.journal, prov)
        print(f"wrote event journal: {args.journal}")

    status = 0
    explained = False
    if args.why_top:
        explained = True
        traced = [d for d in result.diagnostics if d.provenance_id is not None]
        if not traced:
            print("why-top: nothing degraded — the run needed no T and "
                  "tripped no budget")
            status = 1
        for diag in traced:
            ok = _print_chain(
                prov, diag.provenance_id, cfg,
                f"why-top: [{diag.code}] {diag.message}",
            )
            if not ok:
                print(f"why-top: [{diag.code}] provenance event "
                      f"#{diag.provenance_id} no longer resolvable "
                      "(evicted without a spill file)")
                status = 1
    if args.why_match:
        explained = True
        matches = [e for e in prov.events() if e.kind == "match"]
        if matches:
            for event in matches:
                _print_chain(
                    prov, event.event_id, cfg,
                    f"why-match: {event.detail}",
                )
        else:
            attempts = [e for e in prov.events() if e.kind == "match_attempt"]
            if attempts:
                _print_chain(
                    prov, attempts[-1].event_id, cfg,
                    "why-match: no match established; last attempt:",
                )
            else:
                print("why-match: no send-receive matching occurred")
                status = 1
    if args.node:
        explained = True
        try:
            locs = tuple(int(part) for part in args.node.split(",") if part.strip())
        except ValueError:
            raise SystemExit(f"error: --node expects comma-separated CFG "
                             f"node ids, got {args.node!r}")
        events = prov.events_for_node(locs)
        if not events:
            print(f"node {locs}: no recorded events (node never reached, or "
                  "evicted from the ring — raise --capacity)")
            status = 1
        else:
            _print_chain(
                prov, events[-1].event_id, cfg,
                f"node {locs}: derivation of its current state",
            )
    if not explained:
        # no question asked: summarize the journal
        counts = prov.kind_counts()
        print("event kinds: " + ", ".join(
            f"{count}x {kind}" for kind, count in sorted(counts.items())
        ))
        last = prov.last_event_id
        if last is not None:
            _print_chain(prov, last, cfg, "causal chain of the last event:")
    return status


# -- repro sweep ---------------------------------------------------------------


def build_sweep_parser() -> argparse.ArgumentParser:
    from repro.corpus.sweep import FAULTS, SMOKE_SEED, TIER_SIZES

    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Corpus-scale differential sweep: generate seeded MPL "
                    "programs, run each through the fallback ladder AND the "
                    "concrete interpreter, and check that static matches "
                    "cover every observed dynamic match (soundness). Any "
                    "divergence fails the sweep.",
    )
    parser.add_argument(
        "--tier", choices=sorted(TIER_SIZES), default="smoke",
        help="corpus size tier: smoke (~50, pinned by the checked-in "
             "manifest), pr (~200), nightly (~2000)",
    )
    parser.add_argument(
        "--seed", type=int, default=SMOKE_SEED, metavar="N",
        help="base seed the tier's program seeds derive from (the smoke "
             "tier is pinned by corpus/manifest_smoke.json instead); "
             "printed in CI so any run reproduces exactly",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (multiprocessing)",
    )
    parser.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="override the tier's program count",
    )
    parser.add_argument(
        "--report", default=None, metavar="FILE",
        help="write a JSONL report: one record per program plus a final "
             "summary line",
    )
    parser.add_argument(
        "--shrink", action="store_true",
        help="greedily minimize each divergent program and file it under "
             "the regressions directory",
    )
    parser.add_argument(
        "--manifest", default=None, metavar="FILE",
        help="manifest path for the smoke tier "
             "(default: corpus/manifest_smoke.json)",
    )
    parser.add_argument(
        "--regressions-dir", default=None, metavar="DIR",
        help="where --shrink files minimized reproducers "
             "(default: corpus/regressions)",
    )
    parser.add_argument(
        "--write-manifest", action="store_true",
        help="regenerate the tier manifest from --seed and exit "
             "(required after any grammar change)",
    )
    parser.add_argument(
        "--inject-fault", choices=FAULTS, default=None, metavar="FAULT",
        help="harness self-test: inject a chaos-style analyzer fault "
             "(drop-match removes one claimed edge) so the sweep MUST "
             "report divergences",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SEC",
        help="per-rung wall-clock budget for each program's analysis",
    )
    parser.add_argument(
        "--max-steps", type=int, default=None, metavar="N",
        help="engine step budget per rung (default: 20000)",
    )
    _add_log_level(parser)
    return parser


def sweep_main(argv) -> int:
    from repro.corpus import sweep as sweep_mod
    from repro.obs import recorder as obs_recorder

    args = build_sweep_parser().parse_args(argv)
    if args.log_level:
        slog.configure(args.log_level)

    if args.manifest:
        manifest_path = Path(args.manifest)
    else:
        manifest_path = sweep_mod.resolve_default(sweep_mod.DEFAULT_MANIFEST)
    if args.write_manifest:
        manifest = sweep_mod.write_manifest(
            manifest_path, base_seed=args.seed, count=args.count, tier=args.tier
        )
        print(
            f"wrote {manifest_path}: {len(manifest['programs'])} programs, "
            f"grammar v{manifest['grammar_version']}, seed {args.seed}"
        )
        return 0

    limits = None
    if args.deadline is not None or args.max_steps is not None:
        limits = EngineLimits(deadline_sec=args.deadline)
        if args.max_steps is not None:
            limits.max_steps = args.max_steps

    if args.tier == "smoke":
        try:
            programs = sweep_mod.load_manifest(manifest_path)
        except FileNotFoundError:
            print(
                f"error: smoke manifest {manifest_path} not found "
                "(regenerate with 'repro sweep --write-manifest', or pass "
                "--manifest FILE)"
            )
            return 2
        except ValueError as exc:
            print(f"error: {exc}")
            return 2
        seeds = [generated.seed for generated in programs]
        if args.count is not None:
            seeds = seeds[: args.count]
        print(
            f"smoke tier: {len(seeds)} programs from {manifest_path} "
            f"(grammar v{sweep_mod.GRAMMAR_VERSION}, drift-checked)"
        )
    else:
        count = args.count or sweep_mod.TIER_SIZES[args.tier]
        seeds = sweep_mod.seed_stream(args.seed, count)
        print(
            f"{args.tier} tier: {count} programs derived from seed "
            f"{args.seed} (reproduce with --tier {args.tier} "
            f"--seed {args.seed})"
        )

    with obs_recorder.recording() as recorder:
        summary = sweep_mod.run_sweep(
            seeds,
            tier=args.tier,
            base_seed=args.seed,
            jobs=args.jobs,
            limits=limits,
            fault=args.inject_fault,
            shrink=args.shrink,
            report_path=Path(args.report) if args.report else None,
            regressions_dir=(
                Path(args.regressions_dir) if args.regressions_dir else None
            ),
        )
        counters = dict(recorder.counters)
    print(summary.table())
    sweep_counters = {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith("sweep.")
    }
    if sweep_counters:
        print("  counters: " + ", ".join(
            f"{name}={value}" for name, value in sweep_counters.items()
        ))
    if args.report:
        print(f"wrote JSONL report: {args.report}")
    if summary.failures:
        print(
            f"sweep FAILED: {summary.counts.get('divergent', 0)} divergent, "
            f"{summary.counts.get('error', 0)} errored "
            f"(reproduce any program with its corpus_id via "
            f"repro.corpus.generate_from_id)"
        )
        return 1
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the analysis service: a crash-safe HTTP daemon with "
                    "admission control, a content-addressed result cache, "
                    "retry/backoff, per-rung circuit breakers, and graceful "
                    "SIGTERM drain (see DESIGN.md section 13).",
    )
    parser.add_argument(
        "--state-dir", default=".repro-serve", metavar="DIR",
        help="durable state: job journal, result cache, daemon.json discovery "
             "file (default: %(default)s)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8642,
        help="listen port (0 picks an ephemeral port, published in "
             "daemon.json; default: %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker threads (default: %(default)s)"
    )
    parser.add_argument(
        "--queue-size", type=int, default=64,
        help="bounded admission queue; beyond it requests are shed with 429 "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--degrade-at", type=float, default=0.75, metavar="FRACTION",
        help="queue fill fraction above which executions degrade to the "
             "baseline-only ladder (default: %(default)s)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=2,
        help="attempt retries after worker loss or watchdog timeout "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SEC",
        help="per-attempt watchdog override (default: derived from the "
             "ladder's deadline budget)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SEC",
        help="graceful-shutdown budget; unfinished jobs stay journaled for "
             "the next daemon (default: %(default)s)",
    )
    parser.add_argument(
        "--deadline-sec", type=float, default=30.0,
        help="default per-job wall-clock budget (default: %(default)s)",
    )
    parser.add_argument(
        "--tenants", default=None, metavar="FILE",
        help='per-tenant QoS budgets as JSON: {"name": {"deadline_sec": ..., '
             '"max_steps": ..., "max_state_bytes": ...}}',
    )
    parser.add_argument(
        "--inline", action="store_true",
        help="run attempts in worker threads instead of disposable worker "
             "processes (tests/bench; no crash isolation)",
    )
    parser.add_argument(
        "--allow-test-faults", action="store_true",
        help="honor test_fault injection directives in requests (crash "
             "tests only; never in production)",
    )
    _add_log_level(parser)
    return parser


def serve_main(argv) -> int:
    from repro.serve.daemon import ServiceConfig, TenantBudget, load_tenants
    from repro.serve.http import run_server
    from repro.serve.retry import RetryPolicy

    args = build_serve_parser().parse_args(argv)
    if args.log_level:
        slog.configure(args.log_level)
    tenants = {}
    if args.tenants:
        tenants = load_tenants(args.tenants)
    tenants.setdefault("default", TenantBudget(deadline_sec=args.deadline_sec))
    config = ServiceConfig(
        state_dir=Path(args.state_dir),
        workers=args.workers,
        queue_size=args.queue_size,
        degrade_at=args.degrade_at,
        isolation="inline" if args.inline else "process",
        retry=RetryPolicy(max_retries=args.max_retries),
        job_timeout_sec=args.job_timeout,
        allow_test_faults=args.allow_test_faults,
        tenants=tenants,
    )
    run_server(
        config, host=args.host, port=args.port,
        drain_timeout_sec=args.drain_timeout,
    )
    return 0


def build_faults_parser() -> argparse.ArgumentParser:
    from repro.faults.plane import CATALOG

    parser = argparse.ArgumentParser(
        prog="repro faults",
        description="Soundness-under-fault invariant sweep: run seeded "
                    "fault schedules against the full pipeline (service, "
                    "sharded engine, HTTP) and machine-check that every "
                    "answer stays exact-or-accounted, sound, replayable, "
                    "and cache-clean. Any violation fails the sweep and "
                    "prints the REPRO_FAULT_SEED that replays it.",
    )
    parser.add_argument(
        "--seed", type=int, default=1337, metavar="N",
        help="base seed the per-case fault schedules derive from",
    )
    parser.add_argument(
        "--cases", type=int, default=2 * len(CATALOG), metavar="N",
        help=f"number of schedules to run (catalog has {len(CATALOG)} "
             "points; a full multiple rotates through every one)",
    )
    parser.add_argument(
        "--replay", metavar="BASE:CASE", default=None,
        help="re-run exactly one failing case from its printed "
             "REPRO_FAULT_SEED label (e.g. --replay 1337:5)",
    )
    parser.add_argument(
        "--report", metavar="FILE", default=None,
        help="write per-case verdicts + merged coverage as JSONL",
    )
    parser.add_argument(
        "--require-coverage", action="store_true",
        help="also fail if any catalog point never fired across the sweep",
    )
    parser.add_argument(
        "--state-root", metavar="DIR", default=None,
        help="directory for per-case service state (default: a temp dir)",
    )
    _add_log_level(parser)
    return parser


def faults_main(argv) -> int:
    import tempfile

    from repro.faults import invariants
    from repro.faults.plane import CATALOG

    args = build_faults_parser().parse_args(argv)
    if args.log_level:
        slog.configure(args.log_level)

    if args.replay:
        base_text, _, case_text = args.replay.partition(":")
        try:
            base_seed, case_index = int(base_text), int(case_text or "0")
        except ValueError:
            print(f"error: --replay wants BASE:CASE, got {args.replay!r}")
            return 2
        cases = [case_index]
    else:
        base_seed, cases = args.seed, list(range(args.cases))

    if args.state_root:
        state_root = Path(args.state_root)
        state_root.mkdir(parents=True, exist_ok=True)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-faults-")
        state_root = Path(cleanup.name)

    print(
        f"fault sweep: {len(cases)} case(s), base seed {base_seed}, "
        f"{len(CATALOG)} catalog points"
    )
    report = invariants.SweepReport(base_seed=base_seed)
    try:
        for case_index in cases:
            result = invariants.run_case(base_seed, case_index, state_root)
            report.cases.append(result)
            fired = sorted(result.coverage and {
                name for name, cell in result.coverage.items() if cell["fired"]
            } or ())
            marker = "ok  " if result.ok else "FAIL"
            print(
                f"  {marker} case {result.case:3d} focus={result.focus:24s} "
                f"channel={result.channel:7s} fired={','.join(fired) or '-'}"
            )
            for violation in result.violations:
                print(f"       {violation}")
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    summary = report.summary()
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            for case_result in report.cases:
                handle.write(json.dumps(case_result.to_json()) + "\n")
            handle.write(json.dumps({"summary": summary}) + "\n")
        print(f"report: {args.report}")

    failures = report.failures
    unexercised = report.unexercised()
    print(
        f"{len(report.cases)} case(s): {len(report.cases) - len(failures)} ok, "
        f"{len(failures)} failed; "
        f"{len(CATALOG) - len(unexercised)}/{len(CATALOG)} fault points fired"
    )
    if unexercised:
        print(f"never fired: {', '.join(unexercised)}")
    for case_result in failures:
        print(f"replay with: REPRO_FAULT_SEED={case_result.label}")
    if failures:
        return 1
    if args.require_coverage and unexercised and not args.replay:
        print("error: --require-coverage set and some points never fired")
        return 1
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Stitch one request's per-process span shards (daemon, "
                    "attempt workers, shard-pool workers) into a single "
                    "Chrome trace loadable in chrome://tracing or "
                    "ui.perfetto.dev. Trace ids come back in every service "
                    "response and streaming admission event.",
    )
    parser.add_argument("trace_id", help="trace id from a service response")
    parser.add_argument(
        "--state-dir", default=".repro-serve", metavar="DIR",
        help="the daemon's state directory; span shards live under "
             "DIR/traces (default: %(default)s)",
    )
    parser.add_argument(
        "--sink", default=None, metavar="DIR",
        help="read span shards from DIR directly (overrides --state-dir)",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="output path (default: trace-<trace_id>.json)",
    )
    _add_log_level(parser)
    return parser


def trace_main(argv) -> int:
    from repro.obs import trace as trace_mod

    args = build_trace_parser().parse_args(argv)
    if args.log_level:
        slog.configure(args.log_level)
    sink = Path(args.sink) if args.sink else Path(args.state_dir) / "traces"
    try:
        document = trace_mod.stitch(sink, args.trace_id)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out = Path(args.out) if args.out else Path(f"trace-{args.trace_id}.json")
    out.write_text(json.dumps(document, indent=1))
    spans = [e for e in document["traceEvents"] if e.get("ph") == "X"]
    pids = {e["pid"] for e in spans}
    names = sorted({e["name"] for e in spans})
    span_of = {e["args"].get("span"): e for e in spans}
    roots = [
        e for e in spans if e["args"].get("parent") not in span_of
    ]
    wall_us = 0
    if spans:
        start = min(e["ts"] for e in spans)
        end = max(e["ts"] + e.get("dur", 0) for e in spans)
        wall_us = end - start
    print(
        f"trace {args.trace_id}: {len(spans)} spans across {len(pids)} "
        f"process(es), {wall_us / 1000.0:.1f} ms wall"
    )
    print(f"  root span(s): " + ", ".join(sorted(e["name"] for e in roots)))
    print(f"  span names: {', '.join(names)}")
    print(f"wrote {out}")
    return 0


def main(argv=None) -> int:
    """Top-level entry point: GiveUp-family failures exit nonzero with a
    one-line message, never a traceback."""
    try:
        return _main(argv)
    except MalformedCFG as exc:
        print(f"error: malformed CFG: {exc}", file=sys.stderr)
        return 1
    except GiveUp as exc:
        print(f"error: analysis gave up (T): {exc.reason}", file=sys.stderr)
        return 1


def _main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    slog.configure_from_env()
    if argv and argv[0] == "profile":
        return profile_main(argv[1:])
    if argv and argv[0] == "explain":
        return explain_main(argv[1:])
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "faults":
        return faults_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "resume":
        # ``repro resume <target> [...]`` == ``repro <target> [...] --resume``
        return _main(list(argv[1:]) + ["--resume"])
    args = build_parser().parse_args(argv)
    if args.log_level:
        slog.configure(args.log_level)
    if args.list:
        for spec in programs.all_specs():
            print(f"{spec.name:26s} {spec.paper_ref:18s} {spec.pattern}")
        return 0
    if not args.target:
        build_parser().print_help()
        return 2

    program, spec = _load(args.target)
    name = spec.name if spec else Path(args.target).stem
    checkpointer, resume = _checkpoint_config(args, name)
    limits = _engine_limits(args)

    if args.bugs:
        report, result, _cfg = detect_bugs(program)
        print(report.describe())
        return 0 if report.is_clean() else 1

    if args.constants:
        report, result, cfg = propagate_constants(
            program, limits=limits, checkpointer=checkpointer, resume=resume
        )
        for node_id in sorted(report.parallel):
            print(
                f"print at node {cfg.node(node_id).label}: "
                f"parallel={report.parallel[node_id]} "
                f"sequential={report.sequential[node_id]}"
            )
        return 0

    if args.fallback:
        report = analyze_with_fallback(
            program, limits=limits, checkpointer=checkpointer, resume=resume,
            jobs=args.jobs,
        )
        for outcome in report.rungs:
            print(f"rung {outcome.describe()}")
        print(f"answer from rung: {report.rung_name}")
        result, cfg = report.result, report.cfg
        if result.confidence != diagnostics.EXACT:
            if result.diagnostics:
                _print_degraded(result)
            else:
                # the baseline rung: total but over-approximate
                print("communication topology (baseline over-approximation):")
                print(result.topology.describe())
            return 1
    else:
        result, cfg, client = analyze_program(
            program, CartesianClient(), limits,
            checkpointer=checkpointer, resume=resume, jobs=args.jobs,
        )
        if result.confidence != diagnostics.EXACT:
            _print_degraded(result)
            return 1
    print("communication topology:")
    print(result.topology.describe())
    if not args.no_validate:
        try:
            report = classify_topology(
                program, result, cfg, probe_np=args.np, inputs=args.inputs
            )
        except DeadlockError as deadlock:
            print(f"validation run deadlocked: {deadlock}")
            return 1
        print(f"pattern: {report.pattern} ({report.confidence})")
        if report.suggestion:
            print(f"suggested rewrite: {report.suggestion}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
