"""Affine integer expressions ``c0 + c1*v1 + ... + cn*vn``.

These are the workhorse of the Section VII client analysis: process-set
bounds (``[1 .. np-1]``), message expressions (``id + 1``, ``i``, ``0``) and
the equivalence sets attached to range bounds are all affine expressions over
program variables.

The representation is canonical: a mapping from variable name to a non-zero
integer coefficient, plus an integer constant.  Two ``LinearExpr`` objects
compare equal iff they denote the same affine function, which makes them
usable as dictionary keys and set members.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

Scalar = int
ExprLike = Union["LinearExpr", int, str]


class LinearExpr:
    """An immutable affine expression over named integer variables.

    >>> i = LinearExpr.var("i")
    >>> (i + 3) - LinearExpr.var("i")
    LinearExpr(3)
    >>> (2 * i + 1).coeff("i")
    2
    """

    __slots__ = ("_coeffs", "_const", "_hash")

    def __init__(self, const: int = 0, coeffs: Optional[Mapping[str, int]] = None):
        clean: Dict[str, int] = {}
        if coeffs:
            for name, coeff in coeffs.items():
                if coeff != 0:
                    clean[name] = int(coeff)
        # single-variable expressions (the overwhelmingly common shape on the
        # enrichment hot path) need no sort
        if len(clean) > 1:
            self._coeffs: Tuple[Tuple[str, int], ...] = tuple(sorted(clean.items()))
        else:
            self._coeffs = tuple(clean.items())
        self._const = int(const)
        self._hash = hash((self._const, self._coeffs))

    # -- constructors ------------------------------------------------------

    @classmethod
    def const(cls, value: int) -> "LinearExpr":
        """The constant expression ``value`` (interned: instances are
        immutable, so the hot shapes are shared)."""
        return _cached_const(value)

    @classmethod
    def _raw(cls, const: int, coeffs: Tuple[Tuple[str, int], ...]) -> "LinearExpr":
        """Internal: build from an already-canonical (sorted, non-zero) tuple."""
        self = cls.__new__(cls)
        self._coeffs = coeffs
        self._const = const
        self._hash = hash((const, coeffs))
        return self

    @classmethod
    def var(cls, name: str, coeff: int = 1) -> "LinearExpr":
        """The expression ``coeff * name`` (interned, like :meth:`const`)."""
        return _cached_var(name, coeff)

    @classmethod
    def coerce(cls, value: ExprLike) -> "LinearExpr":
        """Lift an ``int`` or variable-name ``str`` into a ``LinearExpr``."""
        if isinstance(value, LinearExpr):
            return value
        if isinstance(value, int):
            return cls(value)
        if isinstance(value, str):
            return cls.var(value)
        raise TypeError(f"cannot coerce {value!r} to LinearExpr")

    # -- inspection --------------------------------------------------------

    @property
    def constant(self) -> int:
        """The additive constant term."""
        return self._const

    @property
    def coeffs(self) -> Dict[str, int]:
        """Variable coefficients as a fresh dict (non-zero entries only)."""
        return dict(self._coeffs)

    def coeff(self, name: str) -> int:
        """Coefficient of variable ``name`` (0 if absent)."""
        for var, coeff in self._coeffs:
            if var == name:
                return coeff
        return 0

    def variables(self) -> Tuple[str, ...]:
        """Names of all variables with non-zero coefficient, sorted."""
        return tuple(name for name, _ in self._coeffs)

    def is_constant(self) -> bool:
        """True iff the expression mentions no variables."""
        return not self._coeffs

    def as_constant(self) -> Optional[int]:
        """The integer value if constant, else ``None``."""
        return self._const if not self._coeffs else None

    def is_var_plus_const(self) -> bool:
        """True iff of the paper's ``var + c`` shape (single unit-coeff var)."""
        return len(self._coeffs) == 1 and self._coeffs[0][1] == 1

    def split_var_plus_const(self) -> Optional[Tuple[str, int]]:
        """Return ``(var, c)`` when the expression is ``var + c``."""
        if self.is_var_plus_const():
            return self._coeffs[0][0], self._const
        return None

    def mentions(self, name: str) -> bool:
        """True iff variable ``name`` occurs with non-zero coefficient."""
        return self.coeff(name) != 0

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: ExprLike) -> "LinearExpr":
        if type(other) is int:
            # hot path (shifts, offsets): coefficients are unchanged
            if other == 0:
                return self
            return LinearExpr._raw(self._const + other, self._coeffs)
        other = LinearExpr.coerce(other)
        coeffs = dict(self._coeffs)
        for name, coeff in other._coeffs:
            coeffs[name] = coeffs.get(name, 0) + coeff
        return LinearExpr(self._const + other._const, coeffs)

    __radd__ = __add__

    def __neg__(self) -> "LinearExpr":
        return LinearExpr(-self._const, {name: -coeff for name, coeff in self._coeffs})

    def __sub__(self, other: ExprLike) -> "LinearExpr":
        if type(other) is int:
            return self + (-other)
        return self + (-LinearExpr.coerce(other))

    def __rsub__(self, other: ExprLike) -> "LinearExpr":
        return LinearExpr.coerce(other) - self

    def __mul__(self, scalar: int) -> "LinearExpr":
        if not isinstance(scalar, int):
            return NotImplemented
        return LinearExpr(
            self._const * scalar,
            {name: coeff * scalar for name, coeff in self._coeffs},
        )

    __rmul__ = __mul__

    def substitute(self, bindings: Mapping[str, ExprLike]) -> "LinearExpr":
        """Replace each bound variable with its expression."""
        if not self._coeffs:
            return self
        if len(self._coeffs) == 1:
            # hot shape: ``var + c`` with a single substitution
            name, coeff = self._coeffs[0]
            if name not in bindings:
                return self
            if coeff == 1:
                return LinearExpr.coerce(bindings[name]) + self._const
        result = LinearExpr(self._const)
        for name, coeff in self._coeffs:
            if name in bindings:
                result = result + coeff * LinearExpr.coerce(bindings[name])
            else:
                result = result + LinearExpr.var(name, coeff)
        return result

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a total assignment of the mentioned variables."""
        total = self._const
        for name, coeff in self._coeffs:
            total += coeff * env[name]
        return total

    def shift(self, delta: int) -> "LinearExpr":
        """The expression plus an integer ``delta``."""
        return self + delta

    # -- protocol ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearExpr):
            return NotImplemented
        return self._const == other._const and self._coeffs == other._coeffs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"LinearExpr({self})"

    def __str__(self) -> str:
        parts = []
        for name, coeff in self._coeffs:
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        if self._const or not parts:
            parts.append(str(self._const))
        text = parts[0]
        for part in parts[1:]:
            text += f" - {part[1:]}" if part.startswith("-") else f" + {part}"
        return text


@lru_cache(maxsize=4096)
def _cached_const(value: int) -> LinearExpr:
    return LinearExpr(value)


@lru_cache(maxsize=4096)
def _cached_var(name: str, coeff: int) -> LinearExpr:
    return LinearExpr(0, {name: coeff})


def sum_exprs(exprs: Iterable[ExprLike]) -> LinearExpr:
    """Sum an iterable of expression-likes (empty sum is 0)."""
    total = LinearExpr(0)
    for expr in exprs:
        total = total + LinearExpr.coerce(expr)
    return total
