"""Equality reasoning under program invariants.

The Cartesian-topology client (Section VIII) proves HSM facts *modulo*
application invariants such as ``np = nrows * ncols`` and ``ncols = 2 *
nrows``.  An :class:`InvariantSystem` holds a set of such equations, oriented
as substitutions ``var -> polynomial``, and offers a ``normalize`` operation
that rewrites any polynomial into a canonical representative of its
equivalence class.  Two polynomials are provably equal iff their normal forms
coincide.

Substitutions are applied to fixpoint, so chained invariants (``np = nrows *
ncols``, ``ncols = 2 * nrows``) normalize ``np`` all the way to
``2 * nrows**2``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.expr.poly import Poly, PolyLike

_MAX_REWRITE_ROUNDS = 32


class InvariantSystem:
    """A set of oriented polynomial equalities ``var = poly``.

    Positivity assumptions (every registered variable denotes a positive
    process-grid extent) are tracked so clients can ask sign questions about
    normalized terms.
    """

    def __init__(self) -> None:
        self._subst: Dict[str, Poly] = {}
        self._positive: set = set()

    @classmethod
    def from_equalities(
        cls, equalities: Iterable[Tuple[str, PolyLike]]
    ) -> "InvariantSystem":
        """Build a system from ``(var, poly)`` pairs, e.g. ``("np", nrows*ncols)``."""
        system = cls()
        for name, poly in equalities:
            system.add_equality(name, poly)
        return system

    def add_equality(self, name: str, poly: PolyLike) -> None:
        """Register the invariant ``name = poly``.

        The right-hand side is normalized against the invariants already
        present, and existing substitutions are re-normalized so the system
        stays confluent.
        """
        rhs = self.normalize(Poly.coerce(poly))
        if rhs.variables() and name in rhs.variables():
            raise ValueError(f"circular invariant {name} = {rhs}")
        self._subst[name] = rhs
        binding = {name: rhs}
        self._subst = {
            var: value.substitute(binding) for var, value in self._subst.items()
        }

    def assume_positive(self, *names: str) -> None:
        """Record that each named variable is a positive integer."""
        self._positive.update(names)

    @property
    def substitutions(self) -> Dict[str, Poly]:
        """The oriented substitution map as a fresh dict."""
        return dict(self._subst)

    # -- snapshot serialization ----------------------------------------------

    def snapshot_state(self) -> dict:
        """Raw internal state for the checkpoint codec.

        The substitutions are stored verbatim (already normalized against
        each other), so restoring does not re-run ``add_equality``'s
        re-normalization and the rebuilt system is bit-identical.
        """
        return {
            "subst": dict(self._subst),
            "positive": set(self._positive),
        }

    def restore_state(self, data: Mapping) -> None:
        """Reinstall state produced by :meth:`snapshot_state`."""
        self._subst = dict(data["subst"])
        self._positive = set(data["positive"])

    def normalize(self, poly: PolyLike) -> Poly:
        """Rewrite ``poly`` to its canonical form under the invariants."""
        current = Poly.coerce(poly)
        for _ in range(_MAX_REWRITE_ROUNDS):
            replaced = current.substitute(self._subst)
            if replaced == current:
                return current
            current = replaced
        return current

    def equal(self, left: PolyLike, right: PolyLike) -> bool:
        """True iff the invariants prove ``left == right``."""
        return self.normalize(left) == self.normalize(right)

    def exact_div(self, dividend: PolyLike, divisor: PolyLike) -> Optional[Poly]:
        """Exact division of normal forms, or ``None`` when not exact."""
        dividend = self.normalize(dividend)
        divisor = self.normalize(divisor)
        if divisor.is_zero():
            return None
        return dividend.exact_div(divisor)

    def divides(self, divisor: PolyLike, dividend: PolyLike) -> bool:
        """True iff ``divisor | dividend`` provably (via exact division)."""
        return self.exact_div(dividend, divisor) is not None

    def is_positive(self, poly: PolyLike) -> bool:
        """Conservative proof of ``poly >= 1`` given every positive variable
        is an integer >= 1."""
        return self.is_nonnegative(Poly.coerce(poly) - 1)

    def is_nonnegative(self, poly: PolyLike) -> bool:
        """Conservative proof of ``poly >= 0`` for all positive-variable
        assignments >= 1.

        Uses monomial dominance: with every variable >= 1, a monomial is >=
        any of its divisors, so a positive term ``c' * m'`` can absorb a
        negative term ``c * m`` whenever ``m | m'``.  Each negative term must
        be fully absorbed by positive terms of dominating monomials.
        """
        normal = self.normalize(poly)
        credits: dict = {}
        deficits: dict = {}
        for mono, coeff in normal.terms.items():
            if any(name not in self._positive for name in mono.powers):
                # unknown-sign variable: only safe if the term is absent
                return False
            if coeff > 0:
                credits[mono] = coeff
            elif coeff < 0:
                deficits[mono] = -coeff
        # absorb high-degree deficits first (they need the rarest credits)
        for mono in sorted(deficits, key=lambda m: -m.degree()):
            needed = deficits[mono]
            # prefer the smallest dominating credit monomial so large ones
            # remain available for other deficits
            dominators = sorted(
                (m for m in credits if credits[m] > 0 and mono.divides(m)),
                key=lambda m: m.degree(),
            )
            for dom in dominators:
                take = min(needed, credits[dom])
                credits[dom] -= take
                needed -= take
                if needed == 0:
                    break
            if needed > 0:
                return False
        return True

    def sample_environment(
        self, base: Optional[Mapping[str, int]] = None
    ) -> Dict[str, int]:
        """Extend a concrete assignment of the free variables to all variables.

        Useful in tests: pick values for the independent variables (e.g.
        ``nrows``) and derive the dependent ones (``np``) from the invariants.
        """
        env: Dict[str, int] = dict(base or {})
        for _ in range(_MAX_REWRITE_ROUNDS):
            progressed = False
            for name, poly in self._subst.items():
                if name in env:
                    continue
                if all(var in env for var in poly.variables()):
                    env[name] = poly.evaluate(env)
                    progressed = True
            if not progressed:
                break
        return env

    def __repr__(self) -> str:
        eqs = ", ".join(f"{name}={poly}" for name, poly in sorted(self._subst.items()))
        return f"InvariantSystem({eqs})"
