"""Symbolic integer algebra used throughout the analysis.

Two representations are provided:

* :class:`~repro.expr.linear.LinearExpr` — affine expressions ``c0 + c1*v1 +
  c2*v2 + ...`` over named integer variables.  These are the currency of the
  simple symbolic client analysis (Section VII of the paper): process-set
  bounds and ``var + c`` message expressions.

* :class:`~repro.expr.poly.Poly` — multivariate polynomials with integer
  coefficients.  Hierarchical Sequence Maps (Section VIII) need products such
  as ``nrows * ncols`` for repetition counts and strides, plus divisibility
  reasoning under program invariants like ``np = nrows * ncols``.
"""

from repro.expr.linear import LinearExpr
from repro.expr.poly import Monomial, Poly
from repro.expr.rewrite import InvariantSystem

__all__ = ["LinearExpr", "Monomial", "Poly", "InvariantSystem"]
