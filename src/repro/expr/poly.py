"""Multivariate integer polynomials for HSM reasoning.

Hierarchical Sequence Maps (Section VIII) carry repetition counts and strides
such as ``nrows``, ``nrows * ncols`` or ``2 * nrows**2``.  Matching the NAS-CG
transpose requires multiplying, dividing and checking divisibility of such
terms under program invariants (``np = nrows * ncols``).  This module provides
an exact polynomial arithmetic with those operations.

A :class:`Monomial` is a product of variable powers; a :class:`Poly` is an
integer-coefficient sum of monomials.  Both are immutable and hashable.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from repro.expr.linear import LinearExpr

PolyLike = Union["Poly", "Monomial", LinearExpr, int, str]


class Monomial:
    """A product of variable powers, e.g. ``nrows**2 * ncols``.

    The empty monomial is the multiplicative unit 1.
    """

    __slots__ = ("_powers", "_hash")

    def __init__(self, powers: Optional[Mapping[str, int]] = None):
        clean: Dict[str, int] = {}
        if powers:
            for name, power in powers.items():
                if power < 0:
                    raise ValueError(f"negative power for {name!r}")
                if power > 0:
                    clean[name] = int(power)
        self._powers: Tuple[Tuple[str, int], ...] = tuple(sorted(clean.items()))
        self._hash = hash(self._powers)

    @classmethod
    def unit(cls) -> "Monomial":
        """The monomial 1."""
        return cls()

    @classmethod
    def var(cls, name: str, power: int = 1) -> "Monomial":
        """The monomial ``name**power``."""
        return cls({name: power})

    @property
    def powers(self) -> Dict[str, int]:
        """Variable powers as a fresh dict."""
        return dict(self._powers)

    def degree(self) -> int:
        """Total degree (sum of powers)."""
        return sum(power for _, power in self._powers)

    def is_unit(self) -> bool:
        """True iff this is the monomial 1."""
        return not self._powers

    def __mul__(self, other: "Monomial") -> "Monomial":
        powers = dict(self._powers)
        for name, power in other._powers:
            powers[name] = powers.get(name, 0) + power
        return Monomial(powers)

    def divides(self, other: "Monomial") -> bool:
        """True iff ``other / self`` is a monomial."""
        mine = dict(self._powers)
        theirs = dict(other._powers)
        return all(theirs.get(name, 0) >= power for name, power in mine.items())

    def __floordiv__(self, other: "Monomial") -> "Monomial":
        if not other.divides(self):
            raise ValueError(f"{other} does not divide {self}")
        powers = dict(self._powers)
        for name, power in other._powers:
            powers[name] = powers.get(name, 0) - power
        return Monomial(powers)

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a total assignment."""
        value = 1
        for name, power in self._powers:
            value *= env[name] ** power
        return value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Monomial):
            return NotImplemented
        return self._powers == other._powers

    def __lt__(self, other: "Monomial") -> bool:
        # Graded lexicographic order, used only for canonical printing/sorting.
        return (-self.degree(), self._powers) < (-other.degree(), other._powers)

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self._powers:
            return "1"
        parts = []
        for name, power in self._powers:
            parts.append(name if power == 1 else f"{name}^{power}")
        return "*".join(parts)

    def __repr__(self) -> str:
        return f"Monomial({self})"


class Poly:
    """An integer-coefficient multivariate polynomial.

    >>> nrows = Poly.var("nrows")
    >>> (nrows * nrows + 2 * nrows).evaluate({"nrows": 3})
    15
    """

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Optional[Mapping[Monomial, int]] = None):
        clean: Dict[Monomial, int] = {}
        if terms:
            for mono, coeff in terms.items():
                if coeff != 0:
                    clean[mono] = int(coeff)
        self._terms: Tuple[Tuple[Monomial, int], ...] = tuple(
            sorted(clean.items(), key=lambda item: item[0])
        )
        self._hash = hash(self._terms)

    # -- constructors ------------------------------------------------------

    @classmethod
    def const(cls, value: int) -> "Poly":
        """The constant polynomial ``value``."""
        return cls({Monomial.unit(): value})

    @classmethod
    def var(cls, name: str) -> "Poly":
        """The polynomial ``name``."""
        return cls({Monomial.var(name): 1})

    @classmethod
    def coerce(cls, value: PolyLike) -> "Poly":
        """Lift ints, strings, monomials and affine expressions into a Poly."""
        if isinstance(value, Poly):
            return value
        if isinstance(value, Monomial):
            return cls({value: 1})
        if isinstance(value, int):
            return cls.const(value)
        if isinstance(value, str):
            return cls.var(value)
        if isinstance(value, LinearExpr):
            terms: Dict[Monomial, int] = {Monomial.unit(): value.constant}
            for name, coeff in value.coeffs.items():
                terms[Monomial.var(name)] = coeff
            return cls(terms)
        raise TypeError(f"cannot coerce {value!r} to Poly")

    # -- inspection --------------------------------------------------------

    @property
    def terms(self) -> Dict[Monomial, int]:
        """Monomial-to-coefficient mapping as a fresh dict."""
        return dict(self._terms)

    def is_zero(self) -> bool:
        """True iff this is the zero polynomial."""
        return not self._terms

    def is_constant(self) -> bool:
        """True iff no monomial mentions a variable."""
        return all(mono.is_unit() for mono, _ in self._terms)

    def as_constant(self) -> Optional[int]:
        """The integer value if constant, else ``None``."""
        if self.is_zero():
            return 0
        if len(self._terms) == 1 and self._terms[0][0].is_unit():
            return self._terms[0][1]
        return None

    def as_monomial(self) -> Optional[Tuple[int, Monomial]]:
        """Return ``(coeff, monomial)`` when the poly is a single term."""
        if len(self._terms) == 1:
            mono, coeff = self._terms[0]
            return coeff, mono
        return None

    def as_linear(self) -> Optional[LinearExpr]:
        """Convert back to an affine expression when total degree <= 1."""
        const = 0
        coeffs: Dict[str, int] = {}
        for mono, coeff in self._terms:
            if mono.is_unit():
                const = coeff
            elif mono.degree() == 1:
                (name, _power), = mono.powers.items()
                coeffs[name] = coeff
            else:
                return None
        return LinearExpr(const, coeffs)

    def variables(self) -> Tuple[str, ...]:
        """Sorted names of all variables occurring in the polynomial."""
        names = set()
        for mono, _coeff in self._terms:
            names.update(mono.powers)
        return tuple(sorted(names))

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: PolyLike) -> "Poly":
        other = Poly.coerce(other)
        terms = dict(self._terms)
        for mono, coeff in other._terms:
            terms[mono] = terms.get(mono, 0) + coeff
        return Poly(terms)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly({mono: -coeff for mono, coeff in self._terms})

    def __sub__(self, other: PolyLike) -> "Poly":
        return self + (-Poly.coerce(other))

    def __rsub__(self, other: PolyLike) -> "Poly":
        return Poly.coerce(other) - self

    def __mul__(self, other: PolyLike) -> "Poly":
        other = Poly.coerce(other)
        terms: Dict[Monomial, int] = {}
        for mono_a, coeff_a in self._terms:
            for mono_b, coeff_b in other._terms:
                mono = mono_a * mono_b
                terms[mono] = terms.get(mono, 0) + coeff_a * coeff_b
        return Poly(terms)

    __rmul__ = __mul__

    def divisible_by(self, divisor: PolyLike) -> bool:
        """True iff exact division by ``divisor`` yields a polynomial."""
        return self.exact_div(divisor) is not None

    def exact_div(self, divisor: PolyLike) -> Optional["Poly"]:
        """Exact polynomial division, or ``None`` when not exact.

        The divisor must be a single term (the only case HSM rules need).
        """
        divisor = Poly.coerce(divisor)
        single = divisor.as_monomial()
        if single is None:
            quotient = self._try_general_division(divisor)
            return quotient
        dcoeff, dmono = single
        if dcoeff == 0:
            raise ZeroDivisionError("exact_div by zero polynomial")
        terms: Dict[Monomial, int] = {}
        for mono, coeff in self._terms:
            if coeff % dcoeff != 0 or not dmono.divides(mono):
                return None
            terms[mono // dmono] = coeff // dcoeff
        return Poly(terms)

    def _try_general_division(self, divisor: "Poly") -> Optional["Poly"]:
        """Best-effort multi-term division via repeated leading-term steps."""
        remainder = self
        quotient = Poly()
        lead = divisor._terms[-1] if divisor._terms else None
        if lead is None:
            raise ZeroDivisionError("exact_div by zero polynomial")
        lead_mono, lead_coeff = lead
        for _ in range(len(self._terms) * 4 + 4):
            if remainder.is_zero():
                return quotient
            rem_mono, rem_coeff = remainder._terms[-1]
            if rem_coeff % lead_coeff != 0 or not lead_mono.divides(rem_mono):
                return None
            step = Poly({rem_mono // lead_mono: rem_coeff // lead_coeff})
            quotient = quotient + step
            remainder = remainder - step * divisor
        return None

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Evaluate under a total assignment of the mentioned variables."""
        return sum(coeff * mono.evaluate(env) for mono, coeff in self._terms)

    def substitute(self, bindings: Mapping[str, PolyLike]) -> "Poly":
        """Replace each bound variable with a polynomial."""
        result = Poly()
        for mono, coeff in self._terms:
            term = Poly.const(coeff)
            for name, power in mono.powers.items():
                base = Poly.coerce(bindings[name]) if name in bindings else Poly.var(name)
                for _ in range(power):
                    term = term * base
            result = result + term
        return result

    # -- protocol ----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = Poly.const(other)
        if not isinstance(other, Poly):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        parts = []
        for mono, coeff in reversed(self._terms):
            if mono.is_unit():
                parts.append(str(coeff))
            elif coeff == 1:
                parts.append(str(mono))
            elif coeff == -1:
                parts.append(f"-{mono}")
            else:
                parts.append(f"{coeff}*{mono}")
        text = parts[0]
        for part in parts[1:]:
            text += f" - {part[1:]}" if part.startswith("-") else f" + {part}"
        return text

    def __repr__(self) -> str:
        return f"Poly({self})"


ZERO = Poly()
ONE = Poly.const(1)
