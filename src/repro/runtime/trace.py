"""Execution traces and concrete communication topologies."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Tuple


@dataclass(frozen=True)
class MatchEvent:
    """One dynamic send-receive match.

    ``send_node`` / ``recv_node`` are CFG node ids, so a set of MatchEvents
    projects onto the static ``matches`` relation the pCFG analysis computes.
    """

    src: int
    dst: int
    value: int
    send_node: int
    recv_node: int
    mtype_sent: str
    mtype_received: str


@dataclass(frozen=True)
class Topology:
    """A concrete communication topology.

    * ``proc_edges`` — dynamic (sender rank, receiver rank) pairs.
    * ``node_edges`` — static (send CFG node, receive CFG node) pairs that
      actually communicated; this is the relation to compare against the
      static analysis' ``matches``.
    """

    proc_edges: FrozenSet[Tuple[int, int]]
    node_edges: FrozenSet[Tuple[int, int]]

    def degree_histogram(self) -> Dict[int, int]:
        """Histogram of out-degree over sender ranks (topology shape)."""
        degree: Dict[int, int] = {}
        for src, _dst in self.proc_edges:
            degree[src] = degree.get(src, 0) + 1
        histogram: Dict[int, int] = {}
        for count in degree.values():
            histogram[count] = histogram.get(count, 0) + 1
        return histogram


@dataclass
class Trace:
    """Everything observable about one execution."""

    num_procs: int
    matches: List[MatchEvent] = field(default_factory=list)
    prints: Dict[int, List[int]] = field(default_factory=dict)
    leaked: List[Tuple[int, int, int]] = field(default_factory=list)
    #: per-process count of executed CFG steps
    steps: Dict[int, int] = field(default_factory=dict)

    def record_match(self, event: MatchEvent) -> None:
        """Append a dynamic match."""
        self.matches.append(event)

    def record_print(self, rank: int, value: int) -> None:
        """Append a printed value for a process."""
        self.prints.setdefault(rank, []).append(value)

    def topology(self) -> Topology:
        """Project the trace onto its communication topology."""
        proc_edges = frozenset((event.src, event.dst) for event in self.matches)
        node_edges = frozenset(
            (event.send_node, event.recv_node) for event in self.matches
        )
        return Topology(proc_edges, node_edges)

    def type_mismatches(self) -> List[MatchEvent]:
        """Dynamic matches whose declared send/receive types disagree."""
        return [
            event
            for event in self.matches
            if event.mtype_sent != event.mtype_received
        ]

    def observable(self) -> Tuple:
        """A canonical fingerprint of observable behaviour.

        Two executions of an interleaving-oblivious program must produce
        identical fingerprints regardless of schedule: same per-process
        prints and the same set of dynamic matches (matches are compared as
        a multiset since their global interleaving order is not observable).
        """
        matches = tuple(
            sorted(
                (e.src, e.dst, e.value, e.send_node, e.recv_node)
                for e in self.matches
            )
        )
        prints = tuple(sorted((rank, tuple(vals)) for rank, vals in self.prints.items()))
        leaked = tuple(sorted(self.leaked))
        return (matches, prints, leaked)
