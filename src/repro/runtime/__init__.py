"""Concrete execution substrate for MPL programs.

This package implements the Section III execution model operationally: ``np``
processes run the same program, sends are non-blocking and buffered on FIFO
per-pair channels, receives block until a message from the designated sender
arrives.  It provides the *ground truth* against which the static analyses
are validated:

* :class:`~repro.runtime.interpreter.Machine` — runs a program under a
  pluggable scheduler and records a :class:`~repro.runtime.trace.Trace`.
* :mod:`~repro.runtime.scheduler` — deterministic and randomized interleaving
  schedulers, used to test the model's interleaving-obliviousness property
  (paper Appendix).
* :func:`~repro.runtime.interpreter.run_program` — one-call helper.
"""

from repro.runtime.channels import ChannelNetwork
from repro.runtime.interpreter import (
    DeadlockError,
    Machine,
    MPLAssertionError,
    Observation,
    StepLimitError,
    observe_program,
    run_program,
)
from repro.runtime.scheduler import (
    RandomScheduler,
    ReverseScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.runtime.trace import MatchEvent, Topology, Trace

__all__ = [
    "Machine",
    "run_program",
    "observe_program",
    "Observation",
    "DeadlockError",
    "MPLAssertionError",
    "StepLimitError",
    "ChannelNetwork",
    "Scheduler",
    "RoundRobinScheduler",
    "ReverseScheduler",
    "RandomScheduler",
    "Trace",
    "MatchEvent",
    "Topology",
]
