"""Interleaving schedulers.

A scheduler repeatedly picks which runnable process takes the next step.  The
paper proves the execution model is *interleaving-oblivious* — observable
behaviour is independent of this choice — and the test suite exercises that
theorem by running every corpus program under all of these schedulers and
comparing trace fingerprints.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence


class Scheduler:
    """Strategy interface: choose the next process to step."""

    def choose(self, runnable: Sequence[int]) -> int:
        """Pick one rank from the non-empty list of runnable ranks."""
        raise NotImplementedError

    def reset(self) -> None:
        """Restore initial scheduler state (optional)."""


class RoundRobinScheduler(Scheduler):
    """Cycle through ranks in increasing order."""

    def __init__(self) -> None:
        self._last = -1

    def choose(self, runnable: Sequence[int]) -> int:
        candidates = sorted(runnable)
        for rank in candidates:
            if rank > self._last:
                self._last = rank
                return rank
        self._last = candidates[0]
        return candidates[0]

    def reset(self) -> None:
        self._last = -1


class ReverseScheduler(Scheduler):
    """Always run the highest-ranked runnable process (adversarial order)."""

    def choose(self, runnable: Sequence[int]) -> int:
        return max(runnable)


class GreedyScheduler(Scheduler):
    """Always run the lowest-ranked runnable process to completion bias."""

    def choose(self, runnable: Sequence[int]) -> int:
        return min(runnable)


class RandomScheduler(Scheduler):
    """Uniformly random runnable process, seeded for reproducibility."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = random.Random(seed)

    def choose(self, runnable: Sequence[int]) -> int:
        return self._rng.choice(list(runnable))

    def reset(self) -> None:
        self._rng = random.Random(self._seed)


def standard_schedulers(random_seeds: Optional[List[int]] = None) -> List[Scheduler]:
    """The scheduler battery used by obliviousness tests and benches."""
    schedulers: List[Scheduler] = [
        RoundRobinScheduler(),
        ReverseScheduler(),
        GreedyScheduler(),
    ]
    for seed in random_seeds if random_seeds is not None else [1, 2, 3]:
        schedulers.append(RandomScheduler(seed))
    return schedulers
