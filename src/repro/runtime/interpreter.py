"""Concrete interpreter for MPL programs.

All ``np`` processes execute the same CFG.  Sends are buffered
(non-blocking), receives block until the designated sender's next message is
available — exactly the Section III model.  The machine runs under a
pluggable :class:`~repro.runtime.scheduler.Scheduler` and records a
:class:`~repro.runtime.trace.Trace` of matches, prints and leaked messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.lang.ast import (
    Assert,
    Assign,
    BinOp,
    Compare,
    Expr,
    InputExpr,
    Num,
    Print,
    Program,
    Recv,
    Send,
    UnaryOp,
    Var,
)
from repro.lang.cfg import CFG, NodeKind, build_cfg
from repro.runtime.channels import ChannelNetwork
from repro.runtime.scheduler import RoundRobinScheduler, Scheduler
from repro.runtime.trace import MatchEvent, Trace


class DeadlockError(RuntimeError):
    """Raised when no process can make progress but some are not finished."""


class MPLAssertionError(AssertionError):
    """An ``assert`` statement evaluated to false at runtime."""


class StepLimitError(RuntimeError):
    """The machine exceeded its step budget (probable livelock)."""


@dataclass
class _ProcessState:
    rank: int
    pc: int
    env: Dict[str, int] = field(default_factory=dict)
    inputs: List[int] = field(default_factory=list)
    done: bool = False


class _Evaluator:
    """Expression evaluation for one process."""

    def __init__(self, state: _ProcessState, num_procs: int):
        self._state = state
        self._num_procs = num_procs

    def eval(self, expr: Expr) -> int:
        if isinstance(expr, Num):
            return expr.value
        if isinstance(expr, Var):
            if expr.name == "id":
                return self._state.rank
            if expr.name == "np":
                return self._num_procs
            if expr.name not in self._state.env:
                raise NameError(
                    f"process {self._state.rank}: variable {expr.name!r} "
                    "read before assignment"
                )
            return self._state.env[expr.name]
        if isinstance(expr, InputExpr):
            if not self._state.inputs:
                raise RuntimeError(
                    f"process {self._state.rank}: input() exhausted"
                )
            return self._state.inputs.pop(0)
        if isinstance(expr, UnaryOp):
            value = self.eval(expr.operand)
            if expr.op == "-":
                return -value
            if expr.op == "not":
                return 0 if value else 1
            raise ValueError(f"unknown unary op {expr.op!r}")
        if isinstance(expr, Compare):
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            result = {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[expr.op]
            return 1 if result else 0
        if isinstance(expr, BinOp):
            if expr.op == "and":
                return self.eval(expr.right) if self.eval(expr.left) else 0
            if expr.op == "or":
                left = self.eval(expr.left)
                return left if left else self.eval(expr.right)
            left = self.eval(expr.left)
            right = self.eval(expr.right)
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                if right == 0:
                    raise ZeroDivisionError(
                        f"process {self._state.rank}: division by zero"
                    )
                return left // right
            if expr.op == "%":
                if right == 0:
                    raise ZeroDivisionError(
                        f"process {self._state.rank}: modulo by zero"
                    )
                return left % right
            raise ValueError(f"unknown binary op {expr.op!r}")
        raise TypeError(f"cannot evaluate {type(expr).__name__}")


class Machine:
    """An ``np``-process MPL machine.

    Parameters
    ----------
    program:
        The MPL program (every process runs the same code).
    num_procs:
        The concrete value of ``np``.
    inputs:
        Values returned by successive ``input()`` calls.  Every process gets
        its own copy of this list (the usual way runtime parameters such as
        grid extents reach all processes).
    scheduler:
        Interleaving policy; defaults to round-robin.
    max_steps:
        Global step budget guarding against livelock.
    """

    def __init__(
        self,
        program: Program,
        num_procs: int,
        inputs: Optional[Sequence[int]] = None,
        scheduler: Optional[Scheduler] = None,
        max_steps: int = 1_000_000,
        cfg: Optional[CFG] = None,
    ):
        self.program = program
        self.cfg = cfg if cfg is not None else build_cfg(program)
        self.num_procs = num_procs
        self.network = ChannelNetwork(num_procs)
        self.scheduler = scheduler or RoundRobinScheduler()
        self.scheduler.reset()
        self.max_steps = max_steps
        self.trace = Trace(num_procs)
        self._procs = [
            _ProcessState(rank, self.cfg.entry, {}, list(inputs or []))
            for rank in range(num_procs)
        ]

    # -- runnability ---------------------------------------------------------

    def _is_runnable(self, state: _ProcessState) -> bool:
        if state.done:
            return False
        node = self.cfg.node(state.pc)
        if node.kind == NodeKind.RECV:
            assert isinstance(node.stmt, Recv)
            src = _Evaluator(state, self.num_procs).eval(node.stmt.src)
            if not 0 <= src < self.num_procs:
                raise ValueError(
                    f"process {state.rank}: receive from invalid rank {src}"
                )
            return self.network.poll(src, state.rank) is not None
        return True

    def runnable_ranks(self) -> List[int]:
        """Ranks that can take a step right now."""
        return [state.rank for state in self._procs if self._is_runnable(state)]

    def all_done(self) -> bool:
        """True iff every process reached the CFG exit."""
        return all(state.done for state in self._procs)

    # -- stepping -------------------------------------------------------------

    def step(self, rank: int) -> None:
        """Execute one CFG node on the given process."""
        state = self._procs[rank]
        node = self.cfg.node(state.pc)
        evaluator = _Evaluator(state, self.num_procs)
        self.trace.steps[rank] = self.trace.steps.get(rank, 0) + 1

        if node.kind == NodeKind.EXIT:
            state.done = True
            return
        if node.kind in (NodeKind.ENTRY, NodeKind.SKIP):
            self._advance(state)
            return
        if node.kind == NodeKind.ASSIGN:
            assert isinstance(node.stmt, Assign)
            state.env[node.stmt.target] = evaluator.eval(node.stmt.value)
            self._advance(state)
            return
        if node.kind == NodeKind.PRINT:
            assert isinstance(node.stmt, Print)
            self.trace.record_print(rank, evaluator.eval(node.stmt.value))
            self._advance(state)
            return
        if node.kind == NodeKind.ASSERT:
            assert isinstance(node.stmt, Assert)
            if not evaluator.eval(node.stmt.cond):
                raise MPLAssertionError(
                    f"process {rank}: assertion failed: {node.stmt.cond}"
                )
            self._advance(state)
            return
        if node.kind == NodeKind.BRANCH:
            taken = bool(evaluator.eval(node.cond))
            self._advance(state, label=taken)
            return
        if node.kind == NodeKind.SEND:
            assert isinstance(node.stmt, Send)
            dest = evaluator.eval(node.stmt.dest)
            if not 0 <= dest < self.num_procs:
                raise ValueError(f"process {rank}: send to invalid rank {dest}")
            value = evaluator.eval(node.stmt.value)
            self.network.send(rank, dest, value, node.node_id, node.stmt.mtype)
            self._advance(state)
            return
        if node.kind == NodeKind.RECV:
            assert isinstance(node.stmt, Recv)
            src = evaluator.eval(node.stmt.src)
            message = self.network.receive(src, rank)
            if message is None:
                raise RuntimeError(
                    f"process {rank}: stepped a non-runnable receive"
                )
            state.env[node.stmt.target] = message.value
            self.trace.record_match(
                MatchEvent(
                    src=message.src,
                    dst=rank,
                    value=message.value,
                    send_node=message.send_node,
                    recv_node=node.node_id,
                    mtype_sent=message.mtype,
                    mtype_received=node.stmt.mtype,
                )
            )
            self._advance(state)
            return
        raise TypeError(f"unhandled node kind {node.kind}")

    def _advance(self, state: _ProcessState, label: Optional[bool] = None) -> None:
        successors = self.cfg.successors(state.pc)
        if label is None:
            targets = [dst for dst, lbl in successors if lbl is None]
        else:
            targets = [dst for dst, lbl in successors if lbl is label]
        if len(targets) != 1:
            raise RuntimeError(
                f"node {state.pc} has {len(targets)} successors for label {label}"
            )
        state.pc = targets[0]
        if self.cfg.node(state.pc).kind == NodeKind.EXIT:
            state.done = True

    # -- driving ---------------------------------------------------------------

    def run(self) -> Trace:
        """Run to completion (or raise on deadlock / step-limit)."""
        steps = 0
        while not self.all_done():
            runnable = self.runnable_ranks()
            if not runnable:
                blocked = [
                    (state.rank, self.cfg.node(state.pc).describe())
                    for state in self._procs
                    if not state.done
                ]
                raise DeadlockError(f"deadlock; blocked processes: {blocked}")
            rank = self.scheduler.choose(runnable)
            self.step(rank)
            steps += 1
            if steps > self.max_steps:
                raise StepLimitError(f"exceeded {self.max_steps} steps")
        self.trace.leaked = [
            (msg.src, msg.dst, msg.value) for msg in self.network.undelivered()
        ]
        return self.trace


def run_program(
    program: Program,
    num_procs: int,
    inputs: Optional[Sequence[int]] = None,
    scheduler: Optional[Scheduler] = None,
    cfg: Optional[CFG] = None,
) -> Trace:
    """Parse-and-go helper: execute and return the trace."""
    machine = Machine(program, num_procs, inputs=inputs, scheduler=scheduler, cfg=cfg)
    return machine.run()


@dataclass
class Observation:
    """The oracle-facing view of one execution: trace plus terminal status.

    Unlike :func:`run_program`, a failed execution is a *result*, not an
    exception: the matches a deadlocked or limit-tripped run established
    before stalling are real concrete behavior, and the differential sweep
    (:mod:`repro.corpus.sweep`) must still hold the static analysis to
    covering them.
    """

    trace: Trace
    #: ``ok`` | ``deadlock`` | ``step_limit`` | ``assertion``
    status: str
    detail: str = ""

    @property
    def completed(self) -> bool:
        return self.status == "ok"


def observe_program(
    program: Program,
    num_procs: int,
    inputs: Optional[Sequence[int]] = None,
    scheduler: Optional[Scheduler] = None,
    cfg: Optional[CFG] = None,
    max_steps: int = 1_000_000,
) -> Observation:
    """Execute and capture the trace even when the run does not complete."""
    machine = Machine(
        program, num_procs, inputs=inputs, scheduler=scheduler,
        max_steps=max_steps, cfg=cfg,
    )
    status, detail = "ok", ""
    try:
        machine.run()
    except DeadlockError as exc:
        status, detail = "deadlock", str(exc)
    except StepLimitError as exc:
        status, detail = "step_limit", str(exc)
    except MPLAssertionError as exc:
        status, detail = "assertion", str(exc)
    # run() only records leaks on clean completion; the partial trace needs
    # them too (undelivered messages are observable sends)
    machine.trace.leaked = [
        (msg.src, msg.dst, msg.value) for msg in machine.network.undelivered()
    ]
    return Observation(trace=machine.trace, status=status, detail=detail)
