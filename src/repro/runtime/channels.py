"""FIFO per-pair message channels.

The execution model posits one bi-directional FIFO channel per ordered
process pair.  A message carries its payload value, its static send site (the
CFG node id of the ``send``) and its declared message type, so traces can
relate dynamic communication back to program points.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple


@dataclass(frozen=True)
class Message:
    """One in-flight message."""

    src: int
    dst: int
    value: int
    send_node: int
    mtype: str
    seq: int


class ChannelNetwork:
    """All channels of an ``np``-process machine.

    Messages between each ordered pair ``(src, dst)`` are delivered in FIFO
    order; messages between different pairs are independent, matching the
    MPI-style non-overtaking guarantee the paper assumes.
    """

    def __init__(self, num_procs: int):
        if num_procs <= 0:
            raise ValueError("need at least one process")
        self.num_procs = num_procs
        self._queues: Dict[Tuple[int, int], Deque[Message]] = {}
        self._seq = 0

    def _queue(self, src: int, dst: int) -> Deque[Message]:
        key = (src, dst)
        if key not in self._queues:
            self._queues[key] = deque()
        return self._queues[key]

    def send(self, src: int, dst: int, value: int, send_node: int, mtype: str) -> Message:
        """Enqueue a message (non-blocking send)."""
        self._check_rank(src)
        self._check_rank(dst)
        message = Message(src, dst, value, send_node, mtype, self._seq)
        self._seq += 1
        self._queue(src, dst).append(message)
        return message

    def poll(self, src: int, dst: int) -> Optional[Message]:
        """The next message from ``src`` to ``dst`` without consuming it."""
        queue = self._queue(src, dst)
        return queue[0] if queue else None

    def receive(self, src: int, dst: int) -> Optional[Message]:
        """Dequeue the next message from ``src`` to ``dst`` (or None)."""
        queue = self._queue(src, dst)
        return queue.popleft() if queue else None

    def in_flight(self) -> int:
        """Total number of undelivered messages."""
        return sum(len(queue) for queue in self._queues.values())

    def undelivered(self) -> Tuple[Message, ...]:
        """All undelivered messages (for message-leak ground truth)."""
        leftovers = []
        for queue in self._queues.values():
            leftovers.extend(queue)
        return tuple(sorted(leftovers, key=lambda m: m.seq))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_procs:
            raise ValueError(
                f"process rank {rank} out of range [0..{self.num_procs - 1}]"
            )
