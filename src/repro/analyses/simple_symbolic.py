"""Section VII: the simple symbolic send-receive client analysis.

State = a :class:`~repro.cgraph.ConstraintGraph` over per-process-set
variable namespaces.  Process sets = symbolic ranges ``[lb..ub]`` whose
bounds carry equivalence sets of ``var + c`` expressions.  Message
expressions = affine forms ``var + c`` (with ``id + c`` as the shifting
special case).

Send-receive matching implements the paper's two conditions — the send
expression surjectively maps the matched senders onto the matched receivers,
and the composition of receive and send expressions is the identity on the
matched senders — for four shapes of expression pairs:

=====  ======================  =====================
case   send expression          receive expression
=====  ======================  =====================
A      ``id + c``               ``id + d``  (requires ``c + d == 0``)
C      any affine, singleton    any affine
D      any affine               any affine, singleton receiver
=====  ======================  =====================

When a comparison needed by matching is unknown but expressible, the matcher
splits the world on it (complementary assumptions in the two returned
states), which is how the abstract loop state of the Fig. 7 shift pattern
resolves into the three Fig. 8 matches.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cgraph.constraint_graph import ConstraintGraph, edge_diff
from repro.cgraph.namespaces import GLOBALS, qualify
from repro.cgraph.stats import ClosureStats
from repro.core.client import (
    Alternatives,
    ClientAnalysis,
    ClientState,
    Decided,
    MatchResult,
    Split,
)
from repro.core.diagnostics import GIVEUP_PSET_BOUND
from repro.core.errors import GiveUp
from repro.expr.linear import LinearExpr
from repro.lang.ast import (
    Assert,
    Assign,
    BinOp,
    Compare,
    Expr,
    InputExpr,
    Num,
    Print,
    Recv,
    Send,
    UnaryOp,
    Var,
)
from repro.lang.cfg import CFGNode, NodeKind
from repro.obs import provenance
from repro.obs import recorder as obs
from repro.procset.interval import Bound, ProcSet, SymRange

_NS_PATTERN = re.compile(r"ps\d+::")

#: per-event caps on provenance payloads (match-trace records, diff lines)
#: — explain output stays readable and events stay cheap to serialize
_TRACE_CAP = 32


def _cap_list(items: list, cap: int = _TRACE_CAP) -> list:
    if len(items) <= cap:
        return items
    return items[:cap] + [f"... +{len(items) - cap} more"]


@dataclass(frozen=True)
class Pending:
    """An in-flight (buffered) send awaiting a matching receive."""

    send_node: int
    origin_uid: int
    pset: ProcSet
    dest: Optional[LinearExpr]
    value: Optional[LinearExpr]
    mtype: str


@dataclass(frozen=True)
class PSetEntry:
    """One tracked process set: a stable namespace uid plus its range."""

    uid: int
    pset: ProcSet


@dataclass
class SymbolicState(ClientState):
    """The client's dataflow state: ``(dfState, pSets)`` of the paper."""

    cg: ConstraintGraph
    psets: Tuple[PSetEntry, ...]
    pendings: Tuple[Pending, ...] = ()
    next_uid: int = 1

    def copy(self) -> "SymbolicState":
        return SymbolicState(self.cg.copy(), self.psets, self.pendings, self.next_uid)


@dataclass
class _Ambiguous:
    """A matching attempt stuck on an unknown (but assumable) comparison."""

    lhs: LinearExpr
    rhs: LinearExpr  # the unknown condition is lhs <= rhs


class SimpleSymbolicClient(ClientAnalysis):
    """The Section VII client analysis.

    Parameters
    ----------
    min_np:
        Assumed lower bound on the process count (the paper's examples
        implicitly require enough processes for every role to be non-empty;
        4 covers all corpus patterns).
    buffering:
        Allow sends to advance while in flight (Section X non-blocking
        extension); required for the self-exchange patterns (transpose).
    max_pendings:
        In-flight send budget per configuration.
    """

    def __init__(
        self,
        min_np: int = 4,
        buffering: bool = True,
        max_pendings: int = 4,
        stats: Optional[ClosureStats] = None,
        ambiguity_depth: int = 3,
        naive_closure: bool = False,
        naive_copy: bool = False,
    ):
        self.min_np = min_np
        self.buffering = buffering
        self.max_pendings = max_pendings
        self.stats = stats
        self.ambiguity_depth = ambiguity_depth
        #: Section IX ablation: re-close the constraint graph on every query
        self.naive_closure = naive_closure
        #: ablation / property-test oracle: eager deep copies, no COW or memos
        self.naive_copy = naive_copy
        #: node_id -> set of printed constant values (None marks "unknown")
        self.print_observations: Dict[int, Set[Optional[int]]] = {}
        #: (graph fingerprint, ranges) -> enriched ProcSet (see ``_enrich``)
        self._enrich_memo: Dict[tuple, ProcSet] = {}
        #: provenance narration of the current ``try_match`` call: one
        #: record per candidate pair examined.  None whenever the flight
        #: recorder is disabled, so matching stays trace-free by default.
        self._match_trace: Optional[list] = None
        #: last PRINT-node observation ``(node_id, value)`` — consumed by
        #: ``describe_transfer`` so a print's derived fact lands on the
        #: event of the transition that established it
        self._last_print: Optional[tuple] = None

    # ------------------------------------------------------------------ basics

    def initial(self) -> SymbolicState:
        cg = ConstraintGraph(
            self.stats,
            naive_closure=self.naive_closure,
            naive_copy=self.naive_copy,
        )
        cg.add_lower("np", self.min_np)
        id0 = qualify(0, "id")
        cg.add_lower(id0, 0)
        cg.add_diff("np", id0, -1)  # id <= np - 1
        pset = ProcSet(
            [SymRange(Bound.of(0), Bound.of(LinearExpr.var("np") - 1))]
        )
        return SymbolicState(cg, (PSetEntry(0, pset),), (), 1)

    def num_psets(self, state: SymbolicState) -> int:
        return len(state.psets)

    def describe_pset(self, state: SymbolicState, pos: int) -> str:
        return _pretty(str(state.psets[pos].pset))

    def pending_sites(self, state: SymbolicState) -> Tuple[int, ...]:
        return tuple(sorted(p.send_node for p in state.pendings))

    # --------------------------------------------------------------- expressions

    def affine(self, expr: Expr, uid: int) -> Optional[LinearExpr]:
        """Convert an MPL expression into a qualified affine form (or None)."""
        if isinstance(expr, Num):
            return LinearExpr.const(expr.value)
        if isinstance(expr, Var):
            if expr.name in GLOBALS:
                return LinearExpr.var(expr.name)
            return LinearExpr.var(qualify(uid, expr.name))
        if isinstance(expr, InputExpr):
            return None
        if isinstance(expr, UnaryOp):
            inner = self.affine(expr.operand, uid)
            if inner is None or expr.op != "-":
                return None
            return -inner
        if isinstance(expr, BinOp):
            left = self.affine(expr.left, uid)
            right = self.affine(expr.right, uid)
            if left is None or right is None:
                return None
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                if left.is_constant():
                    return right * left.as_constant()
                if right.is_constant():
                    return left * right.as_constant()
                return None
            if expr.op in ("/", "%"):
                lc, rc = left.as_constant(), right.as_constant()
                if lc is not None and rc is not None and rc != 0:
                    return LinearExpr.const(lc // rc if expr.op == "/" else lc % rc)
                return None
            return None
        return None

    def _uniform(self, expr: LinearExpr, uid: int, cg: ConstraintGraph) -> Optional[LinearExpr]:
        """Rewrite ``expr`` to mention no per-process variables of ``uid``.

        Per-process variables pinned to a constant by the state are
        substituted; any remaining namespace variable makes the expression
        non-uniform across the set (None).
        """
        prefix = f"ps{uid}::"
        bindings = {}
        for name in expr.variables():
            if name.startswith(prefix):
                value = cg.const_value(name)
                if value is None:
                    return None
                bindings[name] = LinearExpr.const(value)
        return expr.substitute(bindings) if bindings else expr

    # ----------------------------------------------------------------- transfer

    def transfer(
        self, state: SymbolicState, pos: int, node: CFGNode
    ) -> Optional[SymbolicState]:
        with obs.span("client.transfer"):
            return self._transfer(state, pos, node)

    def _transfer(
        self, state: SymbolicState, pos: int, node: CFGNode
    ) -> Optional[SymbolicState]:
        entry = state.psets[pos]
        if node.kind in (NodeKind.ENTRY, NodeKind.SKIP):
            return state
        if node.kind == NodeKind.PRINT:
            assert isinstance(node.stmt, Print)
            expr = self.affine(node.stmt.value, entry.uid)
            value = state.cg.eval_const(expr) if expr is not None else None
            self.print_observations.setdefault(node.node_id, set()).add(value)
            if provenance.enabled():
                self._last_print = (node.node_id, value)
            return state
        if node.kind == NodeKind.ASSERT:
            assert isinstance(node.stmt, Assert)
            new = state.copy()
            self._assume(new.cg, node.stmt.cond, entry.uid, True)
            if new.cg.infeasible:
                return None
            return new
        if node.kind == NodeKind.ASSIGN:
            assert isinstance(node.stmt, Assign)
            return self._apply_assign(state, pos, node.stmt)
        raise TypeError(f"transfer on unexpected node kind {node.kind}")

    def _apply_assign(
        self, state: SymbolicState, pos: int, stmt: Assign
    ) -> Optional[SymbolicState]:
        entry = state.psets[pos]
        if stmt.target == "id":
            raise GiveUp("assignment to the read-only variable 'id'")
        if stmt.target == "np":
            raise GiveUp("assignment to the read-only variable 'np'")
        target = qualify(entry.uid, stmt.target)
        rhs = self.affine(stmt.value, entry.uid)
        new = state.copy()
        if rhs is not None and rhs.coeff(target) == 1 and len(rhs.coeffs) >= 1:
            # self-increment  x := x + c : occurrences of x in symbolic
            # bounds now denote the *new* x, so substitute x -> x - c
            offset = rhs - LinearExpr.var(target)
            if offset.is_constant():
                delta = offset.as_constant()
                bindings = {target: LinearExpr.var(target) - delta}
                new.psets = tuple(
                    PSetEntry(e.uid, e.pset.substitute(bindings)) for e in new.psets
                )
                new.pendings = tuple(
                    replace(
                        p,
                        pset=p.pset.substitute(bindings),
                        dest=p.dest.substitute(bindings) if p.dest else None,
                        value=p.value.substitute(bindings) if p.value else None,
                    )
                    for p in new.pendings
                )
                new.cg.assign(target, rhs)
                return new
            rhs = None  # e.g. x := x + y — treat as havoc below
        # non-self assignment: bounds mentioning the target must be repaired
        new = self._repair_bounds(new, target)
        if rhs is not None and rhs.coeff(target) != 0:
            rhs = None
        new.cg.assign(target, rhs)
        if new.cg.infeasible:
            return None
        return new

    def _repair_bounds(self, state: SymbolicState, target: str) -> SymbolicState:
        """Rewrite symbolic bounds so they no longer mention ``target``."""

        def repair_bound(bound: Bound) -> Bound:
            keep = {e for e in bound.exprs if not e.mentions(target)}
            vocabulary = state.cg.variables()
            for expr in bound.exprs:
                if expr.mentions(target):
                    for alt in state.cg.equivalents(expr, vocabulary):
                        if not alt.mentions(target):
                            keep.add(alt)
            if not keep:
                raise GiveUp(
                    f"process-set bound lost its last expression when "
                    f"{_pretty(target)} was overwritten",
                    code=GIVEUP_PSET_BOUND,
                )
            return Bound(keep)

        def repair_pset(pset: ProcSet) -> ProcSet:
            return ProcSet(
                [
                    SymRange(repair_bound(r.lb), repair_bound(r.ub))
                    for r in pset.ranges
                ]
            )

        mentions = any(
            r.lb.mentions(target) or r.ub.mentions(target)
            for e in state.psets
            for r in e.pset.ranges
        )
        if not mentions:
            return state
        state.psets = tuple(
            PSetEntry(e.uid, repair_pset(e.pset)) for e in state.psets
        )
        return state

    # ------------------------------------------------------------------- branch

    def branch(self, state: SymbolicState, pos: int, node: CFGNode):
        entry = state.psets[pos]
        cond = node.cond
        decided = self._decide(state.cg, cond, entry.uid)
        if decided is not None:
            return Decided(decided, state)
        id_split = self._try_id_split(state, pos, cond)
        if id_split is not None:
            return id_split
        if "id" in cond.free_vars():
            # a rank-dependent branch that could not be split exactly:
            # Alternatives would be unsound here (in a real execution
            # different members take different sides simultaneously)
            raise GiveUp(
                f"cannot split process set on rank-dependent branch {cond}"
            )
        # process-uniform data-dependent branch: explore both sides
        outcomes = []
        for label in (True, False):
            alt = state.copy()
            self._assume(alt.cg, cond, entry.uid, label)
            if not alt.cg.infeasible:
                outcomes.append((label, alt))
        return Alternatives(outcomes)

    def _decide(
        self, cg: ConstraintGraph, cond: Expr, uid: int
    ) -> Optional[bool]:
        if isinstance(cond, UnaryOp) and cond.op == "not":
            inner = self._decide(cg, cond.operand, uid)
            return None if inner is None else (not inner)
        if not isinstance(cond, Compare):
            return None
        left = self.affine(cond.left, uid)
        right = self.affine(cond.right, uid)
        if left is None or right is None:
            return None
        if cond.op == "==":
            return cg.entails_eq(left, right)
        if cond.op == "!=":
            verdict = cg.entails_eq(left, right)
            return None if verdict is None else (not verdict)
        if cond.op == "<=":
            return cg.entails_leq(left, right)
        if cond.op == "<":
            return cg.entails_leq(left + 1, right)
        if cond.op == ">=":
            return cg.entails_leq(right, left)
        if cond.op == ">":
            return cg.entails_leq(right + 1, left)
        return None

    def _assume(
        self, cg: ConstraintGraph, cond: Expr, uid: int, label: bool
    ) -> None:
        """Fold ``cond == label`` into the constraint graph (best effort)."""
        if isinstance(cond, UnaryOp) and cond.op == "not":
            self._assume(cg, cond.operand, uid, not label)
            return
        if isinstance(cond, BinOp) and cond.op == "and" and label:
            self._assume(cg, cond.left, uid, True)
            self._assume(cg, cond.right, uid, True)
            return
        if isinstance(cond, BinOp) and cond.op == "or" and not label:
            self._assume(cg, cond.left, uid, False)
            self._assume(cg, cond.right, uid, False)
            return
        if not isinstance(cond, Compare):
            return
        compare = cond if label else cond.negated()
        left = self.affine(compare.left, uid)
        right = self.affine(compare.right, uid)
        if left is None or right is None:
            return
        if compare.op == "==":
            cg.assume_eq(left, right)
        elif compare.op == "<=":
            cg.assume_leq(left, right)
        elif compare.op == "<":
            cg.assume_leq(left + 1, right)
        elif compare.op == ">=":
            cg.assume_leq(right, left)
        elif compare.op == ">":
            cg.assume_leq(right + 1, left)
        # '!=' is a disjunction: not expressible, soundly ignored

    def _try_id_split(
        self, state: SymbolicState, pos: int, cond: Expr
    ) -> Optional[Split]:
        """Split the set on a rank-dependent comparison, when exact."""
        if not isinstance(cond, Compare):
            return None
        entry = state.psets[pos]
        id_name = qualify(entry.uid, "id")
        left = self.affine(cond.left, entry.uid)
        right = self.affine(cond.right, entry.uid)
        if left is None or right is None:
            return None
        # normalize to  id <op> threshold
        if left.coeff(id_name) == 1 and not (left - LinearExpr.var(id_name)).mentions(id_name) \
                and right.coeff(id_name) == 0:
            op = cond.op
            threshold = right - (left - LinearExpr.var(id_name))
        elif right.coeff(id_name) == 1 and left.coeff(id_name) == 0:
            flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
            op = flip[cond.op]
            threshold = left - (right - LinearExpr.var(id_name))
        else:
            return None
        if threshold.mentions(id_name):
            return None
        threshold = self._uniform(threshold, entry.uid, state.cg)
        if threshold is None:
            return None
        cg = state.cg
        true_all = []
        false_all = []
        for rng in entry.pset.ranges:
            partition = self._partition_range(rng, op, threshold, cg)
            if partition is None:
                return None
            true_all.extend(partition[0])
            false_all.extend(partition[1])
        true_set = ProcSet(true_all).prune_empty(cg)
        false_set = ProcSet(false_all).prune_empty(cg)
        new = self._split_entry(state, pos, true_set, false_set)
        return Split(new)

    def _partition_range(self, rng: SymRange, op: str, threshold: LinearExpr, cg):
        """Partition one range by ``id <op> threshold``; None when unknown."""
        point = Bound(cg.equivalents(threshold, cg.variables()) | {threshold})
        point_range = SymRange(point, point)

        def eq_partition():
            inside = rng.intersect(point_range, cg)
            outside = rng.difference(point_range, cg)
            if inside is None or outside is None:
                return None
            return [inside], outside

        def below(cut: Bound):
            return rng.intersect(SymRange(rng.lb, cut), cg)

        def above(cut: Bound):
            return rng.intersect(SymRange(cut, rng.ub), cg)

        if op == "==":
            partition = eq_partition()
            if partition is None:
                return None
            return partition
        if op == "!=":
            partition = eq_partition()
            if partition is None:
                return None
            return partition[1], partition[0]
        if op in ("<", "<="):
            cut = point if op == "<=" else point.shift(-1)
            low = below(cut)
            high = above(cut.shift(1))
            if low is None or high is None:
                return None
            return [low], [high]
        if op in (">", ">="):
            cut = point if op == ">=" else point.shift(1)
            high = above(cut)
            low = below(cut.shift(-1))
            if low is None or high is None:
                return None
            return [high], [low]
        return None

    def _intersect_exact(
        self, a: SymRange, b: SymRange, cg: ConstraintGraph
    ) -> Optional[SymRange]:
        return a.intersect(b, cg)

    def _split_entry(
        self, state: SymbolicState, pos: int, keep_set: ProcSet, new_set: ProcSet
    ) -> SymbolicState:
        """Refine pset ``pos`` to ``keep_set`` and append ``new_set`` (fresh ns).

        The new namespace receives a copy of the old namespace's constraints
        (paper: the new set's state is a copy of the old set's) and both
        namespaces' ``id`` is re-bounded to the respective subset.
        """
        new = state.copy()
        entry = new.psets[pos]
        # both subsets receive fresh namespace copies; the parent namespace
        # is left untouched, so bounds elsewhere that mention it keep their
        # meaning (re-binding a live namespace silently reinterprets them)
        true_uid = new.next_uid
        false_uid = new.next_uid + 1
        new.next_uid += 2
        self._copy_namespace(new.cg, entry.uid, true_uid)
        self._copy_namespace(new.cg, entry.uid, false_uid)
        self._constrain_id(new.cg, true_uid, keep_set)
        self._constrain_id(new.cg, false_uid, new_set)
        keep_set = self._enrich(keep_set, new.cg)
        new_set = self._enrich(new_set, new.cg)
        psets = list(new.psets)
        psets[pos] = PSetEntry(true_uid, keep_set)
        psets.append(PSetEntry(false_uid, new_set))
        new.psets = tuple(psets)
        return new

    def _copy_namespace(self, cg: ConstraintGraph, old_uid: int, new_uid: int) -> None:
        prefix = f"ps{old_uid}::"
        mapping = {
            name: f"ps{new_uid}::{name[len(prefix):]}"
            for name in cg.variables()
            if name.startswith(prefix)
        }
        if mapping:
            cg.copy_namespace_from(mapping.keys(), mapping)

    def _constrain_id(self, cg: ConstraintGraph, uid: int, pset: ProcSet) -> None:
        """Bound the namespace's ``id`` by the set's outer hull."""
        if not pset.ranges:
            return
        id_expr = LinearExpr.var(qualify(uid, "id"))
        first, last = pset.ranges[0], pset.ranges[-1]
        for lb_expr in first.lb.exprs:
            cg.assume_leq(lb_expr, id_expr)
        for ub_expr in last.ub.exprs:
            cg.assume_leq(id_expr, ub_expr)

    def _enrich(self, pset: ProcSet, cg: ConstraintGraph) -> ProcSet:
        """Drop provably-empty ranges, then extend every bound with all
        provably-equal expressions.

        Memoized on ``(graph fingerprint, ranges)``: enrichment is pure in
        the graph's semantics, and the same (state, pset) pairs recur at
        every re-visit of a pCFG node until its fixed point.
        """
        key = None
        if not (self.naive_closure or self.naive_copy):
            key = (cg.fingerprint(), pset.ranges)
            hit = self._enrich_memo.get(key)
            if hit is not None:
                return hit
        vocabulary = frozenset(cg.variables())
        pset = pset.prune_empty(cg)

        def enrich_bound(bound: Bound) -> Bound:
            exprs = set(bound.exprs)
            for expr in bound.exprs:
                exprs |= cg.equivalents(expr, vocabulary)
            return Bound(exprs)

        result = ProcSet(
            [SymRange(enrich_bound(r.lb), enrich_bound(r.ub)) for r in pset.ranges]
        )
        if key is not None:
            if len(self._enrich_memo) >= 4096:
                self._enrich_memo.clear()
            self._enrich_memo[key] = result
        return result

    # ------------------------------------------------------------------ matching

    def try_match(self, state, locs, blocked, cfg) -> List[MatchResult]:
        self._match_trace = [] if provenance.enabled() else None
        return self._match_search(state, locs, cfg, self.ambiguity_depth)

    def match_explanation(self):
        trace = self._match_trace
        if not trace:
            return None
        return {"attempts": trace}

    def describe_transfer(self, old, new):
        data: dict = {}
        new_psets = [_pretty(str(entry.pset)) for entry in new.psets]
        if old is None or new_psets != [
            _pretty(str(entry.pset)) for entry in old.psets
        ]:
            data["psets"] = new_psets
        diff = edge_diff(old.cg if old is not None else None, new.cg)
        if diff is not None:
            data["constraints"] = {
                key: _cap_list(value) if isinstance(value, list) else value
                for key, value in diff.items()
            }
        if old is not None and new.pendings != old.pendings:
            data["in_flight"] = [p.send_node for p in new.pendings]
        if self._last_print is not None:
            node_id, value = self._last_print
            self._last_print = None
            data["printed"] = {
                "node": node_id,
                "value": value if value is not None else "unknown",
            }
        return data or None

    def _match_search(
        self, state: SymbolicState, locs: Sequence[int], cfg, depth: int
    ) -> List[MatchResult]:
        if state.cg.infeasible:
            return []
        senders = [
            pos for pos, nid in enumerate(locs)
            if cfg.node(nid).kind == NodeKind.SEND
        ]
        receivers = [
            pos for pos, nid in enumerate(locs)
            if cfg.node(nid).kind == NodeKind.RECV
        ]
        # rendezvous matches first, then in-flight sends
        for r_pos in receivers:
            recv_node = cfg.node(locs[r_pos])
            for s_pos in senders:
                send_node = cfg.node(locs[s_pos])
                outcome = self._attempt(
                    state, cfg,
                    s_pos, send_node, None,
                    r_pos, recv_node,
                )
                results = self._resolve(outcome, state, locs, cfg, depth)
                if results:
                    return results
            for index, pending in enumerate(state.pendings):
                outcome = self._attempt(
                    state, cfg,
                    None, cfg.node(pending.send_node), (index, pending),
                    r_pos, recv_node,
                )
                results = self._resolve(outcome, state, locs, cfg, depth)
                if results:
                    return results
        return []

    def _resolve(
        self, outcome, state: SymbolicState, locs, cfg, depth: int
    ) -> List[MatchResult]:
        """Turn an attempt outcome into engine-facing match results."""
        if outcome is None:
            return []
        if isinstance(outcome, MatchResult):
            return [outcome]
        assert isinstance(outcome, _Ambiguous)
        if depth <= 0:
            return []
        obs.incr("client.match.world_splits")
        results: List[MatchResult] = []
        world_true = state.copy()
        world_true.cg.assume_leq(outcome.lhs, outcome.rhs)
        if not world_true.cg.infeasible:
            results.extend(self._match_search(world_true, locs, cfg, depth - 1))
        world_false = state.copy()
        world_false.cg.assume_leq(outcome.rhs + 1, outcome.lhs)
        if not world_false.cg.infeasible:
            results.extend(self._match_search(world_false, locs, cfg, depth - 1))
        return results

    def _attempt(
        self,
        state: SymbolicState,
        cfg,
        s_pos: Optional[int],
        send_node: CFGNode,
        pending: Optional[Tuple[int, Pending]],
        r_pos: int,
        recv_node: CFGNode,
    ):
        """One candidate pair, with provenance narration when enabled."""
        outcome = self._attempt_pair(
            state, cfg, s_pos, send_node, pending, r_pos, recv_node
        )
        trace = self._match_trace
        if trace is not None and len(trace) < _TRACE_CAP:
            if outcome is None:
                verdict = "no provable match"
            elif isinstance(outcome, _Ambiguous):
                verdict = (
                    f"ambiguous: is {outcome.lhs} <= {outcome.rhs}? "
                    "(worlds split on both answers)"
                )
            else:
                verdict = (
                    f"matched {outcome.sender_desc} -> {outcome.receiver_desc}"
                )
            trace.append(
                {
                    "send_node": send_node.node_id,
                    "recv_node": recv_node.node_id,
                    "in_flight": pending[0] if pending else None,
                    "verdict": verdict,
                }
            )
        return outcome

    # The heart: one (sender or pending) x (receiver) matching attempt.
    def _attempt_pair(
        self,
        state: SymbolicState,
        cfg,
        s_pos: Optional[int],
        send_node: CFGNode,
        pending: Optional[Tuple[int, Pending]],
        r_pos: int,
        recv_node: CFGNode,
    ):
        obs.incr("client.match.attempts")
        cg = state.cg
        send_stmt = send_node.stmt
        recv_stmt = recv_node.stmt
        assert isinstance(send_stmt, Send) and isinstance(recv_stmt, Recv)
        if pending is None:
            s_entry = state.psets[s_pos]
            s_uid, s_set = s_entry.uid, s_entry.pset
            s_expr = self.affine(send_stmt.dest, s_uid)
            s_value = self.affine(send_stmt.value, s_uid)
        else:
            _, record = pending
            s_uid, s_set = record.origin_uid, record.pset
            s_expr = record.dest
            s_value = record.value
        r_entry = state.psets[r_pos]
        r_uid, r_set = r_entry.uid, r_entry.pset
        r_expr = self.affine(recv_stmt.src, r_uid)
        if s_expr is None or r_expr is None:
            return None
        s_rng = s_set.single_range()
        r_rng = r_set.single_range()
        if s_rng is None or r_rng is None:
            return None

        id_s = qualify(s_uid, "id")
        id_r = qualify(r_uid, "id")
        plan = self._plan_match(cg, s_rng, s_expr, id_s, s_uid, r_rng, r_expr, id_r, r_uid)
        if plan is None or isinstance(plan, _Ambiguous):
            return plan
        s_procs, r_procs = plan

        # residues (exact differences required; unknown comparisons become
        # world-splits so e.g. "is this the last loop iteration?" resolves)
        s_residue = self._difference_or_split(s_rng, s_procs, cg)
        if isinstance(s_residue, _Ambiguous):
            return s_residue
        r_residue = self._difference_or_split(r_rng, r_procs, cg)
        if isinstance(r_residue, _Ambiguous):
            return r_residue
        if s_residue is None or r_residue is None:
            return None

        new = state.copy()
        # Every subset — matched or residue — gets a FRESH namespace copied
        # from its parent; the parent namespace is never re-tightened.
        # (Re-binding a live namespace would silently reinterpret every
        # other bound expression that mentions it.)  Enrichment follows the
        # id constraints so each subset's bounds pick up their
        # own-namespace ``id`` form, the anchor that loop widening keeps.
        s_matched = ProcSet([s_procs])
        r_matched = ProcSet([r_procs])
        psets = list(new.psets)
        residue_positions: List[Optional[int]] = [None, None]

        def fresh_subset(parent_uid: int, subset: ProcSet) -> Tuple[int, ProcSet]:
            uid = new.next_uid
            new.next_uid += 1
            self._copy_namespace(new.cg, parent_uid, uid)
            self._constrain_id(new.cg, uid, subset)
            return uid, self._enrich(subset, new.cg)

        if pending is None:
            whole_sender = not s_residue
            if whole_sender:
                # the entire set advances: no split, namespace unchanged
                psets[s_pos] = PSetEntry(s_uid, self._enrich(s_matched, new.cg))
            else:
                m_uid, m_set = fresh_subset(s_uid, s_matched)
                psets[s_pos] = PSetEntry(m_uid, m_set)
                res_uid, res_set = fresh_subset(s_uid, ProcSet(s_residue))
                psets.append(PSetEntry(res_uid, res_set))
                residue_positions[0] = len(psets) - 1
        else:
            index, record = pending
            pendings = list(new.pendings)
            if s_residue:
                pendings[index] = replace(record, pset=ProcSet(s_residue))
            else:
                del pendings[index]
            new.pendings = tuple(pendings)

        if not r_residue:
            psets[r_pos] = PSetEntry(r_uid, self._enrich(r_matched, new.cg))
            recv_uid = r_uid
        else:
            m_uid, m_set = fresh_subset(r_uid, r_matched)
            psets[r_pos] = PSetEntry(m_uid, m_set)
            recv_uid = m_uid
            res_uid, res_set = fresh_subset(r_uid, ProcSet(r_residue))
            psets.append(PSetEntry(res_uid, res_set))
            residue_positions[1] = len(psets) - 1
        new.psets = tuple(psets)

        # value propagation into the matched receivers' namespace
        sender_uid = s_uid if (pending is not None or not s_residue) else psets[s_pos].uid
        self._propagate_value(
            new,
            sender_uid,
            s_procs,
            s_expr,
            id_s,
            s_value,
            recv_uid,
            recv_stmt.target,
            id_r,
        )
        if new.cg.infeasible:
            return None

        return MatchResult(
            state=new,
            sender_pos=s_pos,
            recv_pos=r_pos,
            send_node=send_node.node_id,
            recv_node=recv_node.node_id,
            sender_desc=_pretty(str(ProcSet([s_procs]))),
            receiver_desc=_pretty(str(ProcSet([r_procs]))),
            sender_residue=residue_positions[0],
            recv_residue=residue_positions[1],
            pending_index=pending[0] if pending else None,
            mtype_send=send_stmt.mtype,
            mtype_recv=recv_stmt.mtype,
        )

    def _difference_or_split(self, rng: SymRange, sub: SymRange, cg):
        """``rng - sub`` as range pieces, or the comparison to split on.

        Returns a list of pieces, an :class:`_Ambiguous` naming the unknown
        bound comparison, or None when bounds are incomparable even as a
        split candidate.
        """
        pieces = rng.difference(sub, cg)
        if pieces is not None:
            return pieces
        overlap = rng.intersect(sub, cg)
        if overlap is None:
            return None
        left = rng.lb.lt(overlap.lb, cg)
        if left is None and rng.lb.eq(overlap.lb, cg) is None:
            return _Ambiguous(rng.lb.shift(1).canonical(), overlap.lb.canonical())
        right = overlap.ub.lt(rng.ub, cg)
        if right is None and rng.ub.eq(overlap.ub, cg) is None:
            return _Ambiguous(overlap.ub.shift(1).canonical(), rng.ub.canonical())
        return None

    def _plan_match(
        self, cg, s_rng, s_expr, id_s, s_uid, r_rng, r_expr, id_r, r_uid
    ):
        """Find matched subsets (sProcs, rProcs) or an ambiguity, or None."""
        s_shift = self._as_id_shift(cg, s_expr, id_s, s_uid)
        r_shift = self._as_id_shift(cg, r_expr, id_r, r_uid)

        # case A: both expressions shift the rank by uniform offsets
        if s_shift is not None and r_shift is not None:
            identity = cg.entails_eq(s_shift + r_shift, LinearExpr.const(0))
            if identity is not True:
                return None
            image = s_rng.translate(s_shift)
            return self._clip(cg, image, r_rng, back_shift=s_shift, s_rng=s_rng)

        # case C: singleton sender, arbitrary affine expressions
        s_single = s_rng.is_singleton(cg)
        if s_single is True:
            return self._plan_singleton_sender(
                cg, s_rng, s_expr, id_s, r_rng, r_expr, id_r, r_shift
            )

        # case D: singleton receiver, arbitrary affine expressions
        r_single = r_rng.is_singleton(cg)
        if r_single is True:
            return self._plan_singleton_receiver(
                cg, s_rng, s_expr, id_s, s_shift, r_rng, r_expr, id_r
            )
        return None

    def _as_id_shift(self, cg, expr: LinearExpr, id_name: str, uid: int):
        """``expr == id + offset`` with a set-uniform offset, else None."""
        if expr.coeff(id_name) != 1:
            return None
        offset = expr - LinearExpr.var(id_name)
        return self._uniform(offset, uid, cg)

    def _clip(self, cg, image: SymRange, r_rng: SymRange, back_shift, s_rng):
        """rProcs = image(S) intersect R; sProcs = its preimage.

        Unknown bound comparisons become ambiguities so the engine can split
        the world on them.
        """
        lb, amb = self._max_bound(cg, image.lb, r_rng.lb)
        if amb is not None:
            return amb
        ub, amb = self._min_bound(cg, image.ub, r_rng.ub)
        if amb is not None:
            return amb
        r_procs = SymRange(lb, ub)
        empty = r_procs.is_empty(cg)
        if empty is True:
            return None
        if empty is None:
            return _Ambiguous(lb.canonical(), ub.canonical())
        s_procs = r_procs.translate(-1 * back_shift)
        # sProcs is within S by construction (image clipped then shifted back)
        return (s_procs, r_procs)

    def _max_bound(self, cg, a: Bound, b: Bound):
        verdict = a.leq(b, cg)
        if verdict is True:
            return b, None
        if verdict is False:
            return a, None
        reverse = b.leq(a, cg)
        if reverse is True:
            return a, None
        if reverse is False:
            return b, None
        return None, _Ambiguous(a.canonical(), b.canonical())

    def _min_bound(self, cg, a: Bound, b: Bound):
        verdict = a.leq(b, cg)
        if verdict is True:
            return a, None
        if verdict is False:
            return b, None
        reverse = b.leq(a, cg)
        if reverse is True:
            return b, None
        if reverse is False:
            return a, None
        return None, _Ambiguous(a.canonical(), b.canonical())

    def _plan_singleton_sender(
        self, cg, s_rng, s_expr, id_s, r_rng, r_expr, id_r, r_shift
    ):
        dest = Bound(
            {s_expr.substitute({id_s: e}) for e in s_rng.lb.exprs}
        )
        dest = Bound(
            set(dest.exprs)
            | {
                alt
                for e in dest.exprs
                for alt in cg.equivalents(e, cg.variables())
            }
        )
        target = SymRange(dest, dest)
        inside_lo = r_rng.lb.leq(dest, cg)
        inside_hi = dest.leq(r_rng.ub, cg)
        if inside_lo is False or inside_hi is False:
            return None
        if inside_lo is None:
            return _Ambiguous(r_rng.lb.canonical(), dest.canonical())
        if inside_hi is None:
            return _Ambiguous(dest.canonical(), r_rng.ub.canonical())
        # identity: the receive expression at the destination names the sender
        if r_shift is not None:
            back = Bound({e + r_shift for e in dest.exprs})
        else:
            back = Bound({r_expr.substitute({id_r: e}) for e in dest.exprs})
        if self._bounds_equal(cg, back, s_rng.lb) is not True:
            return None
        return (s_rng, target)

    def _plan_singleton_receiver(
        self, cg, s_rng, s_expr, id_s, s_shift, r_rng, r_expr, id_r
    ):
        origin = Bound({r_expr.substitute({id_r: e}) for e in r_rng.lb.exprs})
        origin = Bound(
            set(origin.exprs)
            | {
                alt
                for e in origin.exprs
                for alt in cg.equivalents(e, cg.variables())
            }
        )
        source = SymRange(origin, origin)
        inside_lo = s_rng.lb.leq(origin, cg)
        inside_hi = origin.leq(s_rng.ub, cg)
        if inside_lo is False or inside_hi is False:
            return None
        if inside_lo is None:
            return _Ambiguous(s_rng.lb.canonical(), origin.canonical())
        if inside_hi is None:
            return _Ambiguous(origin.canonical(), s_rng.ub.canonical())
        if s_shift is not None:
            forward = Bound({e + s_shift for e in origin.exprs})
        else:
            forward = Bound({s_expr.substitute({id_s: e}) for e in origin.exprs})
        if self._bounds_equal(cg, forward, r_rng.lb) is not True:
            return None
        return (source, r_rng)

    def _bounds_equal(self, cg, a: Bound, b: Bound) -> Optional[bool]:
        if a.exprs & b.exprs:
            return True
        return a.eq(b, cg)

    def _propagate_value(
        self, state, s_uid, s_procs, s_expr, id_s, s_value, r_uid, target, id_r
    ) -> None:
        """Assign the received value into the matched receivers' namespace."""
        target_name = qualify(r_uid, target)
        state = self._repair_bounds(state, target_name)
        if s_value is None:
            state.cg.assign(target_name, None)
            return
        singleton = s_procs.is_singleton(state.cg)
        if singleton is True:
            # one sender: the receiver's value equals the sender's expression
            state.cg.assign(target_name, None)
            if s_value.is_constant() or s_value.is_var_plus_const():
                state.cg.assign(target_name, s_value)
            else:
                constant = state.cg.eval_const(s_value)
                if constant is not None:
                    state.cg.assign(target_name, LinearExpr.const(constant))
            return
        # shifting match: representable when the value is rank-uniform or a
        # pure function of the sender's rank
        if s_value.coeff(id_s) != 0:
            offset = s_value - LinearExpr.var(id_s) * s_value.coeff(id_s)
            uniform = self._uniform(offset, s_uid, state.cg)
            shift = self._as_id_shift(state.cg, s_expr, id_s, s_uid)
            if uniform is not None and shift is not None and s_value.coeff(id_s) == 1:
                # receiver r got value (r - shift) + offset
                received = LinearExpr.var(qualify(r_uid, "id")) - shift + uniform
                state.cg.assign(target_name, None)
                if received.is_var_plus_const() or received.is_constant():
                    state.cg.assign(target_name, received)
                return
            state.cg.assign(target_name, None)
            return
        uniform = self._uniform(s_value, s_uid, state.cg)
        state.cg.assign(target_name, None)
        if uniform is not None and (uniform.is_constant() or uniform.is_var_plus_const()):
            state.cg.assign(target_name, uniform)

    # ----------------------------------------------------------------- buffering

    def can_buffer(self, state: SymbolicState, pos: int, node: CFGNode) -> bool:
        if not self.buffering or len(state.pendings) >= self.max_pendings:
            return False
        assert isinstance(node.stmt, Send)
        entry = state.psets[pos]
        return self.affine(node.stmt.dest, entry.uid) is not None

    def buffer_send(self, state: SymbolicState, pos: int, node: CFGNode) -> SymbolicState:
        assert isinstance(node.stmt, Send)
        entry = state.psets[pos]
        new = state.copy()
        new.pendings = new.pendings + (
            Pending(
                send_node=node.node_id,
                origin_uid=entry.uid,
                pset=entry.pset,
                dest=self.affine(node.stmt.dest, entry.uid),
                value=self.affine(node.stmt.value, entry.uid),
                mtype=node.stmt.mtype,
            ),
        )
        return new

    # --------------------------------------------------------------- set algebra

    def is_empty(self, state: SymbolicState, pos: int) -> Optional[bool]:
        return state.psets[pos].pset.is_empty(state.cg)

    def _purge_namespace_refs(
        self, state: SymbolicState, doomed_uids: Sequence[int]
    ) -> SymbolicState:
        """Re-express all symbolic bounds without the doomed namespaces.

        Must run while ``state.cg`` still knows the doomed variables: each
        bound expression referencing them is replaced by provably-equal
        expressions over surviving namespaces (e.g. the dying singleton's
        ``id`` becomes the next singleton's ``id - 1``), then the doomed
        forms are dropped.  A bound left with no expression means the
        analysis lost track of a set boundary — GiveUp.
        """
        prefixes = tuple(f"ps{uid}::" for uid in doomed_uids)
        cg = state.cg
        vocabulary = cg.variables()

        def doomed(expr: LinearExpr) -> bool:
            return any(name.startswith(prefixes) for name in expr.variables())

        def fix_bound(bound: Bound) -> Bound:
            exprs = {e for e in bound.exprs if not doomed(e)}
            for expr in bound.exprs:
                if doomed(expr):
                    exprs |= {
                        alt
                        for alt in cg.equivalents(expr, vocabulary)
                        if not doomed(alt)
                    }
            if not exprs:
                raise GiveUp(
                    "a process-set bound could not be re-expressed when its "
                    "defining namespace was merged away",
                    code=GIVEUP_PSET_BOUND,
                )
            return Bound(exprs)

        def fix_pset(pset: ProcSet) -> ProcSet:
            return ProcSet(
                [SymRange(fix_bound(r.lb), fix_bound(r.ub)) for r in pset.ranges]
            )

        def fix_expr(expr: Optional[LinearExpr]) -> Optional[LinearExpr]:
            if expr is None or not doomed(expr):
                return expr
            for alt in cg.equivalents(expr, vocabulary):
                if not doomed(alt):
                    return alt
            return expr  # left dangling: comparisons on it stay unknown

        state.psets = tuple(PSetEntry(e.uid, fix_pset(e.pset)) for e in state.psets)
        state.pendings = tuple(
            replace(
                p,
                pset=fix_pset(p.pset),
                dest=fix_expr(p.dest),
                value=fix_expr(p.value),
            )
            for p in state.pendings
        )
        return state

    def merge_psets(self, state: SymbolicState, keep: int, drop: int) -> SymbolicState:
        new = state.copy()
        keep_entry, drop_entry = new.psets[keep], new.psets[drop]
        # The engine fixes positions (the entry at ``drop`` goes away), but
        # the *namespace* that survives is the smaller uid: merged sets
        # (e.g. everyone at the exit) then keep a stable namespace across
        # loop iterations, which join()'s positional uid alignment requires.
        survivor_uid = min(keep_entry.uid, drop_entry.uid)
        doomed_uid = max(keep_entry.uid, drop_entry.uid)
        new = self._purge_namespace_refs(new, [doomed_uid])
        keep_entry, drop_entry = new.psets[keep], new.psets[drop]
        survivor_prefix = f"ps{survivor_uid}::"
        doomed_prefix = f"ps{doomed_uid}::"
        # the merged namespace over-approximates both sets' variable states
        cg_survivor = new.cg.copy()
        cg_survivor.remove_vars(
            [n for n in cg_survivor.variables() if n.startswith(doomed_prefix)]
        )
        cg_doomed = new.cg.copy()
        cg_doomed.remove_vars(
            [n for n in cg_doomed.variables() if n.startswith(survivor_prefix)]
        )
        cg_doomed.rename(
            {
                n: survivor_prefix + n[len(doomed_prefix):]
                for n in cg_doomed.variables()
                if n.startswith(doomed_prefix)
            }
        )
        merged_cg = cg_survivor.join(cg_doomed)
        merged_set = keep_entry.pset.union_with(drop_entry.pset, new.cg)
        psets = [e for i, e in enumerate(new.psets) if i != drop]
        psets[keep if keep < drop else keep - 1] = PSetEntry(
            survivor_uid, self._enrich(merged_set, merged_cg)
        )
        new.cg = merged_cg
        new.psets = tuple(psets)
        new.pendings = tuple(
            replace(
                p,
                origin_uid=survivor_uid if p.origin_uid == doomed_uid else p.origin_uid,
            )
            for p in new.pendings
        )
        return new

    def remove_pset(self, state: SymbolicState, pos: int) -> SymbolicState:
        new = state.copy()
        new.psets = tuple(e for i, e in enumerate(new.psets) if i != pos)
        return new

    def rename(self, state: SymbolicState, perm: Sequence[int]) -> SymbolicState:
        new = state.copy()
        new.psets = tuple(state.psets[p] for p in perm)
        return new

    # ------------------------------------------------------------------- lattice

    def join(self, old: SymbolicState, new: SymbolicState) -> Optional[SymbolicState]:
        with obs.span("client.join"):
            return self._join(old, new)

    def _join(self, old: SymbolicState, new: SymbolicState) -> Optional[SymbolicState]:
        if old is new:
            return old  # hash-consed identical states: join is the identity
        if len(old.psets) != len(new.psets):
            return None
        aligned = self._align_uids(old, new)
        if aligned is None:
            return None
        old_enriched = self._enrich_state(old)
        new_enriched = self._enrich_state(aligned)
        psets: List[PSetEntry] = []
        for mine, theirs in zip(old_enriched.psets, new_enriched.psets):
            widened = mine.pset.widen_with(theirs.pset)
            if widened is None:
                return None
            psets.append(PSetEntry(mine.uid, widened))
        pendings = self._join_pendings(old_enriched, new_enriched)
        if pendings is None:
            return None
        cg = old_enriched.cg.join(new_enriched.cg)
        return SymbolicState(
            cg, tuple(psets), pendings, max(old.next_uid, aligned.next_uid)
        )

    def widen(self, old: SymbolicState, combined: SymbolicState) -> Optional[SymbolicState]:
        cg = old.cg.widen(combined.cg)
        return SymbolicState(cg, combined.psets, combined.pendings, combined.next_uid)

    def states_equal(self, left: SymbolicState, right: SymbolicState) -> bool:
        if left is right:
            return True
        if len(left.psets) != len(right.psets):
            return False
        for a, b in zip(left.psets, right.psets):
            if len(a.pset.ranges) != len(b.pset.ranges):
                return False
            for ra, rb in zip(a.pset.ranges, b.pset.ranges):
                if ra.lb.exprs != rb.lb.exprs or ra.ub.exprs != rb.ub.exprs:
                    return False
        if left.pendings != right.pendings:
            return False
        return left.cg.equivalent_to(right.cg)

    def state_fingerprint(self, state: SymbolicState):
        """Hashable semantic identity for the engine's hash-consing table.

        Combines the constraint graph's closed-form fingerprint with the
        process-set ranges, the in-flight sends, and the uid allocator, so
        fingerprint-equal states are interchangeable for the rest of the
        exploration.  The Section IX ablations opt out: forcing closures to
        fingerprint would distort the naive profile they exist to measure.
        """
        if self.naive_closure or self.naive_copy:
            return None
        return (
            state.cg.fingerprint(),
            tuple((e.uid, e.pset.ranges) for e in state.psets),
            tuple(
                (p.send_node, p.origin_uid, p.pset.ranges, p.dest, p.value, p.mtype)
                for p in state.pendings
            ),
            state.next_uid,
        )

    # -- checkpoint/resume ------------------------------------------------------

    def checkpoint_extra(self):
        """Client accumulators an engine snapshot must carry.

        ``print_observations`` is populated by ``transfer`` at PRINT nodes
        already executed — a resumed run never replays those transfers, so
        the constants report (Fig. 2) would silently lose values without
        this.
        """
        return {
            "print_observations": {
                node_id: set(values)
                for node_id, values in self.print_observations.items()
            },
        }

    def restore_extra(self, data) -> None:
        if not data:
            return
        observations = data.get("print_observations") or {}
        self.print_observations = {
            node_id: set(values) for node_id, values in observations.items()
        }

    def _enrich_state(self, state: SymbolicState) -> SymbolicState:
        new = state.copy()
        new.psets = tuple(
            PSetEntry(e.uid, self._enrich(e.pset, new.cg)) for e in new.psets
        )
        new.pendings = tuple(
            replace(p, pset=self._enrich(p.pset, new.cg)) for p in new.pendings
        )
        return new

    def _align_uids(
        self, old: SymbolicState, new: SymbolicState
    ) -> Optional[SymbolicState]:
        """Rename ``new``'s namespaces so positions share uids with ``old``."""
        mapping: Dict[int, int] = {}
        for mine, theirs in zip(old.psets, new.psets):
            if mine.uid != theirs.uid:
                mapping[theirs.uid] = mine.uid
        if not mapping:
            return new
        aligned = new.copy()
        # two-phase rename through temporaries to avoid collisions
        temp_base = max(
            [old.next_uid, new.next_uid] + list(mapping.values()) + list(mapping)
        ) + 1
        phase1 = {src: temp_base + i for i, src in enumerate(mapping)}
        phase2 = {phase1[src]: dst for src, dst in mapping.items()}
        # clear stale variables of dead namespaces we are renaming into —
        # re-express any bound still using them first, then project them out
        # (the graph is closed, so projection loses nothing)
        live_uids = {entry.uid for entry in new.psets}
        stale_uids = [
            target for target in mapping.values() if target not in live_uids
        ]
        if stale_uids:
            aligned = self._purge_namespace_refs(aligned, stale_uids)
        for target in stale_uids:
            prefix = f"ps{target}::"
            stale = [n for n in aligned.cg.variables() if n.startswith(prefix)]
            if stale:
                aligned.cg.remove_vars(stale)
        for phase in (phase1, phase2):
            var_map: Dict[str, str] = {}
            for name in aligned.cg.variables():
                for src, dst in phase.items():
                    prefix = f"ps{src}::"
                    if name.startswith(prefix):
                        var_map[name] = f"ps{dst}::{name[len(prefix):]}"
            aligned.cg.rename(var_map)
            bindings = {
                src_name: LinearExpr.var(dst_name)
                for src_name, dst_name in var_map.items()
            }
            aligned.psets = tuple(
                PSetEntry(
                    phase.get(e.uid, e.uid),
                    e.pset.substitute(bindings) if bindings else e.pset,
                )
                for e in aligned.psets
            )
            aligned.pendings = tuple(
                replace(
                    p,
                    origin_uid=phase.get(p.origin_uid, p.origin_uid),
                    pset=p.pset.substitute(bindings) if bindings else p.pset,
                    dest=p.dest.substitute(bindings) if p.dest and bindings else p.dest,
                    value=p.value.substitute(bindings) if p.value and bindings else p.value,
                )
                for p in aligned.pendings
            )
        return aligned

    def _join_pendings(
        self, old: SymbolicState, new: SymbolicState
    ) -> Optional[Tuple[Pending, ...]]:
        if len(old.pendings) != len(new.pendings):
            return None
        mine = sorted(old.pendings, key=lambda p: (p.send_node, p.origin_uid))
        theirs = sorted(new.pendings, key=lambda p: (p.send_node, p.origin_uid))
        joined: List[Pending] = []
        for a, b in zip(mine, theirs):
            if a.send_node != b.send_node or a.dest != b.dest or a.mtype != b.mtype:
                return None
            widened = a.pset.widen_with(b.pset)
            if widened is None:
                return None
            value = a.value if a.value == b.value else None
            joined.append(replace(a, pset=widened, value=value))
        return tuple(joined)


def _pretty(text: str) -> str:
    """Strip namespace qualifiers for human-readable set descriptions."""
    return _NS_PATTERN.sub("", text)


def analyze_program(program_or_spec, client: Optional[SimpleSymbolicClient] = None,
                    limits=None, *, checkpointer=None, resume=None, jobs=1):
    """Convenience wrapper: parse/build CFG, run the engine, return
    ``(result, cfg, client)``.

    ``checkpointer`` persists crash-safe snapshots during the run;
    ``resume`` warm-starts the engine from a snapshot object or file (see
    :mod:`repro.core.checkpoint`).  ``jobs > 1`` runs the sharded
    multi-process fixpoint (see :mod:`repro.core.shard`), which produces
    lattice-equal results and transparently falls back to the serial
    engine when the workload cannot be sharded.
    """
    from repro.core.engine import PCFGEngine
    from repro.lang.cfg import build_cfg

    if hasattr(program_or_spec, "parse"):
        program = program_or_spec.parse()
    else:
        program = program_or_spec
    cfg = build_cfg(program)
    client = client or SimpleSymbolicClient()
    if jobs and jobs > 1:
        from repro.core.shard import ShardedEngine

        engine = ShardedEngine(
            cfg, client, limits, jobs=jobs, checkpointer=checkpointer
        )
    else:
        engine = PCFGEngine(cfg, client, limits, checkpointer=checkpointer)
    result = engine.run(resume=resume)
    return result, cfg, client


def _register_snapshot_codecs() -> None:
    """Stable serializers for the Section VII client's state types.

    Registered per client analysis as the checkpoint layer requires;
    subclasses (Cartesian, constant propagation) share the state types and
    therefore the codecs.
    """
    from repro.core.checkpoint import register_codec

    register_codec(
        PSetEntry,
        "pset_entry",
        lambda entry: [entry.uid, entry.pset],
        lambda data: PSetEntry(data[0], data[1]),
    )
    register_codec(
        Pending,
        "pending_send",
        lambda p: [p.send_node, p.origin_uid, p.pset, p.dest, p.value, p.mtype],
        lambda d: Pending(d[0], d[1], d[2], d[3], d[4], d[5]),
    )
    register_codec(
        SymbolicState,
        "symbolic_state",
        lambda s: [s.cg, list(s.psets), list(s.pendings), s.next_uid],
        lambda d: SymbolicState(d[0], tuple(d[1]), tuple(d[2]), d[3]),
    )


_register_snapshot_codecs()
