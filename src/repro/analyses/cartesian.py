"""Section VIII: the Cartesian-topology client analysis (HSM-based).

The simple symbolic client matches ``var + c`` message expressions.  NAS-CG's
transpose uses expressions built from ``* / %`` over grid extents — beyond
the affine fragment.  This client extends the simple client: whenever a
send/receive expression is not affine, it is converted into a Hierarchical
Sequence Map (Section VIII-A) over the process set and matched via the HSM
identity/surjection proofs of Section VIII-B.

Program ``assert`` statements seed the invariant system (``np == nrows *
ncols``, ``ncols == nrows`` / ``ncols == 2 * nrows``), exactly as the
paper's Fig. 6 example relies on the application's own assertions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.analyses.simple_symbolic import (
    _TRACE_CAP,
    Pending,
    PSetEntry,
    SimpleSymbolicClient,
    SymbolicState,
    _cap_list,
    _pretty,
)
from repro.cgraph.namespaces import qualify
from repro.core.client import MatchResult
from repro.expr.poly import Poly
from repro.expr.rewrite import InvariantSystem
from repro.hsm.convert import expr_to_hsm, pset_to_hsm
from repro.hsm.hsm import HSM
from repro.hsm.prover import HSMProver
from repro.lang.ast import Assert, Compare, Expr, Recv, Send, Var
from repro.lang.cfg import CFGNode, NodeKind


class CartesianClient(SimpleSymbolicClient):
    """Section VIII client: affine matching plus HSM matching.

    The invariant system starts empty and grows as the analysis passes
    ``assert`` statements whose conditions are polynomial equalities.
    """

    def __init__(self, min_np: int = 4, **kwargs):
        super().__init__(min_np=min_np, **kwargs)
        self.invariants = InvariantSystem()
        self.invariants.assume_positive("np")
        self.prover = HSMProver(self.invariants)
        #: provenance narration of the current call's HSM prover queries
        self._proof_trace: Optional[list] = None

    # -- invariant collection ---------------------------------------------------

    def transfer(self, state: SymbolicState, pos: int, node: CFGNode):
        if node.kind == NodeKind.ASSERT:
            assert isinstance(node.stmt, Assert)
            self._collect_invariant(node.stmt.cond, state.psets[pos].uid)
        return super().transfer(state, pos, node)

    def _collect_invariant(self, cond: Expr, uid: int) -> None:
        """Register polynomial equalities like ``np == nrows * ncols``.

        Grid extents are process-uniform runtime parameters; they are
        registered under their *unqualified* names in the invariant system
        (every process reads the same values).
        """
        if not (isinstance(cond, Compare) and cond.op == "=="):
            return
        left = _expr_to_poly(cond.left)
        right = _expr_to_poly(cond.right)
        if left is None or right is None:
            return
        # orient as  var = poly  when one side is a bare variable
        for var_side, poly_side in ((cond.left, right), (cond.right, left)):
            if isinstance(var_side, Var):
                try:
                    self.invariants.add_equality(var_side.name, poly_side)
                except ValueError:
                    continue
                for name in poly_side.variables():
                    self.invariants.assume_positive(name)
                self.invariants.assume_positive(var_side.name)
                return

    # -- checkpoint/resume ------------------------------------------------------

    def checkpoint_extra(self):
        """Persist the harvested invariant system alongside the base data.

        Invariants are collected from ``assert`` transfers that a resumed
        run never replays, so without this the HSM prover would lose
        ``np = nrows * ncols``-style facts and fail matches it proved
        before the interruption.
        """
        data = super().checkpoint_extra() or {}
        data["invariants"] = self.invariants.snapshot_state()
        return data

    def restore_extra(self, data) -> None:
        super().restore_extra(data)
        if data and "invariants" in data:
            self.invariants.restore_state(data["invariants"])
            # fresh prover: memoized verdicts depend on the invariant system
            self.prover = HSMProver(self.invariants)

    # -- uniform-parameter plumbing ------------------------------------------------

    def _depersonalize(self, expr: Expr, uid: int) -> Optional[Expr]:
        """Check the expression only mixes ``id`` with uniform parameters.

        HSM conversion treats every non-``id`` variable as process-uniform;
        that is sound exactly when those variables are runtime parameters
        set identically on all processes (assigned from ``input()`` before
        any branching, like ``nrows``/``ncols``).  We accept variables the
        invariant system knows about, plus ``np``.
        """
        known = set(self.invariants.substitutions) | {"np", "id"}
        for name in expr.free_vars():
            if name not in known and not self.invariants.is_positive(Poly.var(name)):
                if name not in self.invariants.substitutions and name != "np" and name != "id":
                    # unknown uniform parameter: accept only if registered
                    # positive (grid extents register themselves)
                    return None
        return expr

    # -- HSM matching -----------------------------------------------------------------

    def can_buffer(self, state: SymbolicState, pos: int, node: CFGNode) -> bool:
        if not self.buffering or len(state.pendings) >= self.max_pendings:
            return False
        assert isinstance(node.stmt, Send)
        entry = state.psets[pos]
        if self.affine(node.stmt.dest, entry.uid) is not None:
            return True
        return self._hsm_for(node.stmt.dest, entry) is not None

    def buffer_send(self, state: SymbolicState, pos: int, node: CFGNode) -> SymbolicState:
        assert isinstance(node.stmt, Send)
        entry = state.psets[pos]
        new = state.copy()
        new.pendings = new.pendings + (
            Pending(
                send_node=node.node_id,
                origin_uid=entry.uid,
                pset=entry.pset,
                dest=self.affine(node.stmt.dest, entry.uid),
                value=self.affine(node.stmt.value, entry.uid),
                mtype=node.stmt.mtype,
            ),
        )
        return new

    def try_match(self, state, locs, blocked, cfg) -> List[MatchResult]:
        results = super().try_match(state, locs, blocked, cfg)  # arms _match_trace
        self._proof_trace = [] if self._match_trace is not None else None
        self.prover.trace = self._proof_trace
        try:
            if results:
                return results
            return self._hsm_match(state, locs, cfg)
        finally:
            self.prover.trace = None

    def match_explanation(self):
        data = super().match_explanation() or {}
        if self._proof_trace:
            # the raw set/seq-equality queries behind the HSM verdicts
            data["hsm_proofs"] = _cap_list(self._proof_trace)
        return data or None

    def _hsm_match(self, state: SymbolicState, locs: Sequence[int], cfg) -> List[MatchResult]:
        receivers = [
            pos for pos, nid in enumerate(locs)
            if cfg.node(nid).kind == NodeKind.RECV
        ]
        for r_pos in receivers:
            recv_node = cfg.node(locs[r_pos])
            recv_stmt = recv_node.stmt
            assert isinstance(recv_stmt, Recv)
            # rendezvous sender psets
            for s_pos, nid in enumerate(locs):
                send_node = cfg.node(nid)
                if send_node.kind != NodeKind.SEND:
                    continue
                result = self._attempt_hsm(
                    state, cfg, s_pos, send_node, None, r_pos, recv_node
                )
                if result is not None:
                    return [result]
            # in-flight sends
            for index, pending in enumerate(state.pendings):
                send_node = cfg.node(pending.send_node)
                result = self._attempt_hsm(
                    state, cfg, None, send_node, (index, pending), r_pos, recv_node
                )
                if result is not None:
                    return [result]
        return []

    def _hsm_for(self, expr: Expr, entry: PSetEntry) -> Optional[HSM]:
        """The HSM of a message expression over a whole process set."""
        rng = entry.pset.single_range()
        if rng is None:
            return None
        size = _range_size_poly(rng)
        start = _bound_poly(rng.lb)
        if size is None or start is None:
            return None
        if self._depersonalize(expr, entry.uid) is None:
            return None
        domain = pset_to_hsm(start, size)
        return expr_to_hsm(expr, domain, self.invariants)

    def _attempt_hsm(
        self,
        state: SymbolicState,
        cfg,
        s_pos: Optional[int],
        send_node: CFGNode,
        pending: Optional[Tuple[int, Pending]],
        r_pos: int,
        recv_node: CFGNode,
    ) -> Optional[MatchResult]:
        send_stmt = send_node.stmt
        recv_stmt = recv_node.stmt
        assert isinstance(send_stmt, Send) and isinstance(recv_stmt, Recv)
        if pending is None:
            s_entry = state.psets[s_pos]
        else:
            _, record = pending
            s_entry = PSetEntry(record.origin_uid, record.pset)
        r_entry = state.psets[r_pos]
        s_rng = s_entry.pset.single_range()
        r_rng = r_entry.pset.single_range()
        if s_rng is None or r_rng is None:
            return None

        # Section VIII-B currently requires sProcs == senders, rProcs == receivers
        send_hsm = self._hsm_for(send_stmt.dest, s_entry)
        if send_hsm is None:
            return None
        r_size = _range_size_poly(r_rng)
        r_start = _bound_poly(r_rng.lb)
        if r_size is None or r_start is None:
            return None
        receiver_set = pset_to_hsm(r_start, r_size)

        trace = self._match_trace
        record = None
        if trace is not None and len(trace) < _TRACE_CAP:
            record = {
                "kind": "hsm",
                "send_node": send_node.node_id,
                "recv_node": recv_node.node_id,
                "in_flight": pending[0] if pending else None,
                "send_hsm": str(send_hsm),
                "receiver_set": str(receiver_set),
            }
            trace.append(record)

        # (ii) surjection: the send expression maps senders onto receivers
        surjection = self.prover.set_equal(send_hsm, receiver_set)
        if record is not None:
            record["surjection"] = surjection
        if not surjection:
            return None
        # (i) identity: receive expr applied to the send image yields senders
        composed = expr_to_hsm(
            recv_stmt.src, send_hsm, self.invariants
        )
        if composed is None:
            if record is not None:
                record["identity"] = "recv expression not HSM-convertible"
            return None
        s_size = _range_size_poly(s_rng)
        s_start = _bound_poly(s_rng.lb)
        if s_size is None or s_start is None:
            return None
        sender_set = pset_to_hsm(s_start, s_size)
        identity = self.prover.seq_equal(composed, sender_set)
        if record is not None:
            record["identity"] = identity
        if not identity:
            return None

        new = state.copy()
        psets = list(new.psets)
        if pending is None:
            pass  # whole sender set matched, no split, no residue
        else:
            index, record = pending
            pendings = list(new.pendings)
            del pendings[index]
            new.pendings = tuple(pendings)
        # whole receiver set matched: havoc the received variable
        target_name = qualify(r_entry.uid, recv_stmt.target)
        new = self._repair_bounds(new, target_name)
        new.cg.assign(target_name, None)
        new.psets = tuple(psets)
        return MatchResult(
            state=new,
            sender_pos=s_pos,
            recv_pos=r_pos,
            send_node=send_node.node_id,
            recv_node=recv_node.node_id,
            sender_desc=_pretty(str(s_entry.pset)),
            receiver_desc=_pretty(str(r_entry.pset)),
            pending_index=pending[0] if pending else None,
            mtype_send=send_stmt.mtype,
            mtype_recv=recv_stmt.mtype,
        )


def _expr_to_poly(expr: Expr) -> Optional[Poly]:
    """MPL expression to polynomial (+, -, * only; unqualified names)."""
    from repro.lang.ast import BinOp, Num, UnaryOp

    if isinstance(expr, Num):
        return Poly.const(expr.value)
    if isinstance(expr, Var):
        return Poly.var(expr.name)
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = _expr_to_poly(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, BinOp) and expr.op in ("+", "-", "*"):
        left = _expr_to_poly(expr.left)
        right = _expr_to_poly(expr.right)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        return left * right
    return None


def _bound_poly(bound) -> Optional[Poly]:
    """A process-set bound as a polynomial over uniform parameters."""
    for expr in bound.exprs:
        names = expr.variables()
        if all("::" not in name for name in names):
            return Poly.coerce(expr)
    return None


def _range_size_poly(rng) -> Optional[Poly]:
    """``ub - lb + 1`` as a polynomial over uniform parameters."""
    lb = _bound_poly(rng.lb)
    ub = _bound_poly(rng.ub)
    if lb is None or ub is None:
        return None
    return ub - lb + Poly.const(1)


def analyze_cartesian(program_or_spec, client: Optional[CartesianClient] = None,
                      limits=None, *, checkpointer=None, resume=None, jobs=1):
    """Run the Cartesian client; returns ``(result, cfg, client)``."""
    from repro.analyses.simple_symbolic import analyze_program

    client = client or CartesianClient()
    return analyze_program(
        program_or_spec, client, limits,
        checkpointer=checkpointer, resume=resume, jobs=jobs,
    )
