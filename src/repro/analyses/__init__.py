"""Client analyses instantiating the pCFG framework.

* :mod:`repro.analyses.simple_symbolic` — Section VII: constraint-graph
  state, symbolic-range process sets, ``var + c`` message expressions.
* :mod:`repro.analyses.cartesian` — Section VIII: Hierarchical Sequence Map
  message expressions for Cartesian-grid patterns (NAS-CG transpose).
* :mod:`repro.analyses.constprop` — parallel constant propagation (Fig. 2).
* :mod:`repro.analyses.bugs` — message-leak / type-mismatch / stuck-receive
  detection built on analysis results.
* :mod:`repro.analyses.patterns` — communication-pattern classification
  (broadcast, gather, exchange-with-root, shift, transpose, ...), enabling
  the Fig. 1 collective-rewrite recommendation.
"""

from repro.analyses.bugs import BugReport, detect_bugs
from repro.analyses.cartesian import CartesianClient, analyze_cartesian
from repro.analyses.constprop import ConstantPropagationClient, propagate_constants
from repro.analyses.patterns import PatternReport, classify_topology
from repro.analyses.simple_symbolic import SimpleSymbolicClient, analyze_program

__all__ = [
    "SimpleSymbolicClient",
    "analyze_program",
    "CartesianClient",
    "analyze_cartesian",
    "ConstantPropagationClient",
    "propagate_constants",
    "BugReport",
    "detect_bugs",
    "PatternReport",
    "classify_topology",
]
