"""Parallel constant propagation over the pCFG (the paper's Fig. 2 client).

The simple symbolic client already tracks exact values in its constraint
graph and propagates them across matched send-receive pairs, so parallel
constant propagation falls out of the framework: we record, at every
``print`` node, the abstract value the executing process set would print.

The module also runs classical *sequential* constant propagation on the same
program as a foil: the sequential analysis must havoc every receive target,
so it cannot establish the Fig. 2 result (both processes print 5) that the
parallel analysis proves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.analyses.simple_symbolic import SimpleSymbolicClient, analyze_program
from repro.dataflow.analyses import sequential_constants
from repro.lang.cfg import NodeKind


class ConstantPropagationClient(SimpleSymbolicClient):
    """The Section VII client used as a constant-propagation engine.

    The base client already observes print values; this subclass exists to
    give the instantiation its paper name and a dedicated report helper.
    """

    def printed_constant(self, node_id: int) -> Optional[int]:
        """The single constant printed at a node, or None if not constant."""
        observed = self.print_observations.get(node_id)
        if not observed or None in observed or len(observed) != 1:
            return None
        return next(iter(observed))

    def describe_transfer(self, old, new):
        data = super().describe_transfer(old, new)
        if data and "printed" in data:
            # annotate the event with the running verdict: does this print
            # site still print one provable constant across all worlds?
            constant = self.printed_constant(data["printed"]["node"])
            data["printed"]["proven_constant"] = (
                constant if constant is not None else "not constant"
            )
        return data


@dataclass
class ConstPropReport:
    """Parallel-vs-sequential constant propagation outcome per print node."""

    #: node id -> constant proven by the parallel (pCFG) analysis, or None
    parallel: Dict[int, Optional[int]] = field(default_factory=dict)
    #: node id -> constant proven by sequential constant propagation, or None
    sequential: Dict[int, Optional[int]] = field(default_factory=dict)
    gave_up: bool = False

    def wins(self) -> int:
        """Print sites where only the parallel analysis proved a constant."""
        return sum(
            1
            for node_id, value in self.parallel.items()
            if value is not None and self.sequential.get(node_id) is None
        )


def propagate_constants(program_or_spec, client: Optional[ConstantPropagationClient] = None,
                        limits=None, *, checkpointer=None, resume=None):
    """Run parallel + sequential constant propagation; return
    ``(report, result, cfg)``."""
    client = client or ConstantPropagationClient()
    result, cfg, client = analyze_program(
        program_or_spec, client, limits, checkpointer=checkpointer, resume=resume
    )
    report = ConstPropReport(gave_up=result.gave_up)
    sequential = sequential_constants(cfg)
    for node_id, node in cfg.nodes.items():
        if node.kind != NodeKind.PRINT:
            continue
        report.parallel[node_id] = client.printed_constant(node_id)
        env = sequential.get(node_id, {})
        seq_value = None
        from repro.dataflow.analyses import eval_const

        value = eval_const(node.stmt.value, env)
        if isinstance(value, int):
            seq_value = value
        report.sequential[node_id] = seq_value
    return report, result, cfg
