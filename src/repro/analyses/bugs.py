"""Static communication-bug detection (paper Section I applications).

Three detectors built on the pCFG analysis result:

* **Message leaks** — a send that can never be received: either an in-flight
  send still pending in some terminal state, or a process set permanently
  blocked at a send when the analysis gave up.
* **Stuck receives** — a process set permanently blocked at a receive with
  no matching send (the ``T`` give-up case of Section VI, turned into a
  diagnostic).
* **Type mismatches** — a *matched* send-receive pair whose declared message
  types disagree (the analysis framework makes this precise because matches
  are exact, unlike the all-pairs MPI-CFG baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.analyses.simple_symbolic import SimpleSymbolicClient, analyze_program
from repro.core.engine import AnalysisResult
from repro.core.topology import MatchRecord
from repro.lang.cfg import CFG, NodeKind


@dataclass
class BugReport:
    """Findings of the static bug detectors."""

    #: CFG send nodes whose messages are provably never received (an
    #: in-flight message survives to a terminal analysis state)
    leaked_sends: List[int] = field(default_factory=list)
    #: CFG send nodes blocked when the analysis gave up (may be a real leak
    #: or an expressiveness limit — reported as potential)
    potential_leaks: List[int] = field(default_factory=list)
    #: CFG receive nodes that may block forever
    stuck_receives: List[int] = field(default_factory=list)
    #: matched pairs with inconsistent declared types
    type_mismatches: List[MatchRecord] = field(default_factory=list)
    #: True when the analysis fell to T for a reason other than a diagnosed bug
    inconclusive: bool = False
    gave_up: bool = False
    give_up_reason: str = ""

    def is_clean(self) -> bool:
        """True iff no bug was found and the analysis was conclusive."""
        return (
            not self.leaked_sends
            and not self.potential_leaks
            and not self.stuck_receives
            and not self.type_mismatches
            and not self.inconclusive
        )

    def describe(self) -> str:
        """Human-readable findings."""
        lines = []
        for node in self.leaked_sends:
            lines.append(f"message leak: send at CFG node {node} is never received")
        for node in self.potential_leaks:
            lines.append(
                f"potential message leak: send at CFG node {node} may never "
                "be received (analysis gave up)"
            )
        for node in self.stuck_receives:
            lines.append(f"stuck receive: CFG node {node} may block forever")
        for record in self.type_mismatches:
            lines.append(
                f"type mismatch: {record} sends {record.mtype_send} "
                f"but receives {record.mtype_recv}"
            )
        if self.inconclusive:
            lines.append(f"analysis inconclusive (T): {self.give_up_reason}")
        return "\n".join(lines) if lines else "no communication bugs found"


def detect_bugs(
    program_or_spec,
    client: Optional[SimpleSymbolicClient] = None,
) -> Tuple[BugReport, AnalysisResult, CFG]:
    """Run the analysis and derive a bug report."""
    client = client or SimpleSymbolicClient()
    result, cfg, client = analyze_program(program_or_spec, client)
    report = BugReport(gave_up=result.gave_up, give_up_reason=result.give_up_reason)

    for record in result.match_records:
        if record.mtype_send != record.mtype_recv:
            report.type_mismatches.append(record)

    # in-flight sends surviving to a terminal state are leaks
    for state in result.final_states:
        for site in client.pending_sites(state):
            if site not in report.leaked_sends:
                report.leaked_sends.append(site)

    if result.gave_up:
        diagnosed = False
        for node_id, _desc in result.blocked_at_giveup:
            kind = cfg.node(node_id).kind
            if kind == NodeKind.SEND:
                if node_id not in report.potential_leaks:
                    report.potential_leaks.append(node_id)
                diagnosed = True
            elif kind == NodeKind.RECV:
                if node_id not in report.stuck_receives:
                    report.stuck_receives.append(node_id)
                diagnosed = True
        if not diagnosed:
            report.inconclusive = True

    report.leaked_sends.sort()
    report.potential_leaks.sort()
    report.stuck_receives.sort()
    return report, result, cfg
