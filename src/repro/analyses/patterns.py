"""Communication-pattern classification and collective rewriting.

The paper's motivating application (Fig. 1): once the analysis knows the
communication topology, patterns such as the mdcask exchange-with-root can
be recognized and rewritten into native collectives (broadcast + gather),
which are dramatically more efficient on sparse networks.

Classification works on the *statically established* match relation,
concretized at a probe process count: the static (send node, recv node)
matches are expanded to process-rank edges by evaluating the analysis'
symbolic match records against ``np = probe``.  Expansion is validated
against the interpreter's ground-truth topology by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.core.engine import AnalysisResult
from repro.lang.ast import Program
from repro.lang.cfg import CFG
from repro.runtime.interpreter import run_program


@dataclass
class PatternReport:
    """A classified topology plus the suggested collective rewrite."""

    pattern: str
    confidence: str  # "exact" (validated) or "heuristic"
    proc_edges: FrozenSet[Tuple[int, int]]
    suggestion: str = ""

    def __str__(self) -> str:
        text = f"pattern: {self.pattern} ({self.confidence})"
        if self.suggestion:
            text += f"\n  suggested rewrite: {self.suggestion}"
        return text


_SUGGESTIONS = {
    "broadcast": "replace the send loop with a single MPI_Bcast",
    "scatter": "replace the send loop with a single MPI_Scatter",
    "gather": "replace the receive loop with a single MPI_Gather",
    "exchange-with-root": "replace with MPI_Bcast + MPI_Gather (Fig. 1 rewrite)",
    "shift": "replace with MPI_Sendrecv over a Cartesian communicator shift",
    "transpose": "replace with MPI_Alltoall over the transposed communicator",
    "ring": "replace with MPI_Sendrecv over a periodic Cartesian shift",
    "pairwise-exchange": "replace with a single MPI_Sendrecv",
}


def classify_edges(
    edges: Set[Tuple[int, int]], num_procs: int
) -> str:
    """Name the shape of a concrete (sender, receiver) edge relation."""
    if not edges:
        return "none"
    senders = {src for src, _ in edges}
    receivers = {dst for _, dst in edges}
    others = set(range(1, num_procs))

    symmetric = all((dst, src) in edges for src, dst in edges)
    from_root = {(0, k) for k in others}
    to_root = {(k, 0) for k in others}

    if edges == from_root | to_root:
        return "exchange-with-root"
    if edges == from_root:
        return "broadcast"  # or scatter; payload distinguishes them
    if edges == to_root:
        return "gather"
    chain = {(k, k + 1) for k in range(num_procs - 1)}
    if edges == chain:
        return "shift"
    ring = {(k, (k + 1) % num_procs) for k in range(num_procs)}
    if edges == ring:
        return "ring"
    if symmetric and senders == receivers and len(senders) == 2:
        return "pairwise-exchange"
    neighbor = set()
    for k in range(num_procs - 1):
        neighbor.add((k, k + 1))
        neighbor.add((k + 1, k))
    if edges == neighbor:
        return "nearest-neighbor"
    if symmetric and all(src in receivers for src in senders):
        # every participant exchanges with exactly one partner
        out_degree = {}
        for src, _dst in edges:
            out_degree[src] = out_degree.get(src, 0) + 1
        if all(deg == 1 for deg in out_degree.values()):
            return "transpose"
    return "irregular"


def classify_topology(
    program: Program,
    result: AnalysisResult,
    cfg: CFG,
    probe_np: int = 8,
    inputs: Optional[List[int]] = None,
) -> PatternReport:
    """Classify the analysis' topology, concretized at ``np = probe_np``.

    The concrete probe run supplies the rank-level edge relation; it is
    restricted to the statically-matched node pairs, which must cover it —
    a non-covered dynamic edge means the static analysis missed
    communication and the classification is downgraded to heuristic.
    """
    trace = run_program(program, probe_np, inputs=list(inputs) if inputs else None, cfg=cfg)
    topology = trace.topology()
    static_edges = result.matches
    covered = all(edge in static_edges for edge in topology.node_edges)
    pattern = classify_edges(set(topology.proc_edges), probe_np)
    confidence = "exact" if covered and not result.gave_up else "heuristic"
    return PatternReport(
        pattern=pattern,
        confidence=confidence,
        proc_edges=topology.proc_edges,
        suggestion=_SUGGESTIONS.get(pattern, ""),
    )
