"""Classical (sequential) dataflow over CFGs.

This is the substrate the paper generalizes: a lattice-based worklist solver
over a single process' control-flow graph.  It serves three purposes here:

1. A baseline — what a traditional compiler sees *without* the pCFG
   framework (e.g. sequential constant propagation cannot prove Fig. 2's
   prints emit 5, because the value flows through a receive).
2. Reusable machinery (lattice protocol, worklist order) for the parallel
   framework.
3. Intra-process components of client analyses.
"""

from repro.dataflow.analyses import (
    ConstantPropagation,
    LiveVariables,
    ReachingDefinitions,
    sequential_constants,
)
from repro.dataflow.lattice import FlatConst, FlatLattice, Lattice, SetLattice
from repro.dataflow.solver import DataflowProblem, solve_forward

__all__ = [
    "Lattice",
    "FlatLattice",
    "FlatConst",
    "SetLattice",
    "DataflowProblem",
    "solve_forward",
    "ConstantPropagation",
    "ReachingDefinitions",
    "LiveVariables",
    "sequential_constants",
]
