"""Lattice protocol and common lattices for dataflow analyses."""

from __future__ import annotations

from typing import FrozenSet, Generic, Hashable, Optional, TypeVar, Union

T = TypeVar("T")


class Lattice(Generic[T]):
    """A join-semilattice with bottom, used by the worklist solver."""

    def bottom(self) -> T:
        """The least element (initial value of every node)."""
        raise NotImplementedError

    def join(self, left: T, right: T) -> T:
        """Least upper bound."""
        raise NotImplementedError

    def leq(self, left: T, right: T) -> bool:
        """Partial order test (``left`` under ``right``)."""
        return self.join(left, right) == right

    def widen(self, older: T, newer: T) -> T:
        """Widening (defaults to join; override for infinite-height lattices)."""
        return self.join(older, newer)


class _Top:
    _instance: Optional["_Top"] = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TOP"


class _Bottom:
    _instance: Optional["_Bottom"] = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "BOT"


TOP = _Top()
BOTTOM = _Bottom()

FlatConst = Union[_Top, _Bottom, int]


class FlatLattice(Lattice[FlatConst]):
    """The flat constant lattice BOT <= k <= TOP for each integer k."""

    def bottom(self) -> FlatConst:
        return BOTTOM

    def top(self) -> FlatConst:
        """The greatest element."""
        return TOP

    def join(self, left: FlatConst, right: FlatConst) -> FlatConst:
        if left is BOTTOM:
            return right
        if right is BOTTOM:
            return left
        if left is TOP or right is TOP:
            return TOP
        return left if left == right else TOP


H = TypeVar("H", bound=Hashable)


class SetLattice(Lattice[FrozenSet[H]]):
    """Powerset lattice under union (reaching definitions, liveness)."""

    def bottom(self) -> FrozenSet[H]:
        return frozenset()

    def join(self, left: FrozenSet[H], right: FrozenSet[H]) -> FrozenSet[H]:
        return left | right

    def leq(self, left: FrozenSet[H], right: FrozenSet[H]) -> bool:
        return left <= right
