"""Worklist fixed-point solver over CFGs."""

from __future__ import annotations

from collections import deque
from typing import Dict, Generic, Optional, TypeVar

from repro.dataflow.lattice import Lattice
from repro.lang.cfg import CFG, CFGNode

T = TypeVar("T")


class DataflowProblem(Generic[T]):
    """A forward dataflow problem.

    Subclasses supply the lattice, the entry state and the transfer
    function.  Branch outcomes may refine the state per edge label via
    :meth:`refine`.
    """

    def __init__(self, lattice: Lattice[T]):
        self.lattice = lattice

    def entry_state(self) -> T:
        """State above the CFG entry node."""
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: T) -> T:
        """State after executing ``node`` from ``state``."""
        raise NotImplementedError

    def refine(self, node: CFGNode, state: T, label: Optional[bool]) -> T:
        """Optional per-branch refinement (defaults to no refinement)."""
        return state

    def widen_at(self, node: CFGNode) -> bool:
        """Whether to widen at this node (defaults to loop-header-agnostic
        widening everywhere, which is sound for any lattice)."""
        return True


def solve_forward(
    cfg: CFG,
    problem: DataflowProblem[T],
    max_iterations: int = 100_000,
) -> Dict[int, T]:
    """Compute the forward fixed point; returns the state *above* each node."""
    lattice = problem.lattice
    state_in: Dict[int, T] = {nid: lattice.bottom() for nid in cfg.nodes}
    state_in[cfg.entry] = problem.entry_state()
    rpo = cfg.rpo_index()
    worklist = deque(sorted(cfg.nodes, key=lambda nid: rpo.get(nid, len(rpo))))
    queued = set(worklist)
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > max_iterations:
            raise RuntimeError("dataflow solver did not converge")
        node_id = worklist.popleft()
        queued.discard(node_id)
        node = cfg.node(node_id)
        out_state = problem.transfer(node, state_in[node_id])
        for succ, label in cfg.successors(node_id):
            edge_state = problem.refine(node, out_state, label)
            joined = lattice.join(state_in[succ], edge_state)
            if problem.widen_at(cfg.node(succ)):
                joined = lattice.widen(state_in[succ], joined)
            if not lattice.leq(joined, state_in[succ]) or not lattice.leq(
                state_in[succ], joined
            ):
                state_in[succ] = joined
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
    return state_in
