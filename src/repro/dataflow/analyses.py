"""Classical sequential analyses over a single-process CFG.

These deliberately ignore communication: a ``receive`` havocs its target.
They are the paper's foil — e.g. sequential constant propagation cannot
prove the Fig. 2 prints emit 5, while the pCFG constant propagation client
can.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.dataflow.lattice import (
    BOTTOM,
    TOP,
    FlatConst,
    FlatLattice,
    Lattice,
    SetLattice,
)
from repro.dataflow.solver import DataflowProblem, solve_forward
from repro.lang.ast import (
    Assign,
    BinOp,
    Compare,
    Expr,
    InputExpr,
    Num,
    Recv,
    UnaryOp,
    Var,
)
from repro.lang.cfg import CFG, CFGNode, NodeKind

ConstEnv = Tuple[Tuple[str, FlatConst], ...]


class _ConstEnvLattice(Lattice[Optional[ConstEnv]]):
    """Environments var -> flat constant; None is the unreachable bottom."""

    def __init__(self) -> None:
        self._flat = FlatLattice()

    def bottom(self) -> Optional[ConstEnv]:
        return None

    def join(self, left: Optional[ConstEnv], right: Optional[ConstEnv]):
        if left is None:
            return right
        if right is None:
            return left
        lmap, rmap = dict(left), dict(right)
        names = set(lmap) | set(rmap)
        joined = {
            name: self._flat.join(lmap.get(name, BOTTOM), rmap.get(name, BOTTOM))
            for name in names
        }
        return tuple(sorted(joined.items(), key=lambda kv: kv[0]))


def eval_const(expr: Expr, env: Dict[str, FlatConst], num_procs: Optional[int] = None) -> FlatConst:
    """Abstract evaluation over the flat constant lattice."""
    if isinstance(expr, Num):
        return expr.value
    if isinstance(expr, InputExpr):
        return TOP
    if isinstance(expr, Var):
        if expr.name == "np" and num_procs is not None:
            return num_procs
        return env.get(expr.name, TOP)
    if isinstance(expr, UnaryOp):
        value = eval_const(expr.operand, env, num_procs)
        if isinstance(value, int):
            return -value if expr.op == "-" else (0 if value else 1)
        return value
    if isinstance(expr, Compare):
        left = eval_const(expr.left, env, num_procs)
        right = eval_const(expr.right, env, num_procs)
        if isinstance(left, int) and isinstance(right, int):
            verdict = {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[expr.op]
            return 1 if verdict else 0
        if left is BOTTOM or right is BOTTOM:
            return BOTTOM
        return TOP
    if isinstance(expr, BinOp):
        left = eval_const(expr.left, env, num_procs)
        right = eval_const(expr.right, env, num_procs)
        if left is BOTTOM or right is BOTTOM:
            return BOTTOM
        if isinstance(left, int) and isinstance(right, int):
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return TOP if right == 0 else left // right
            if expr.op == "%":
                return TOP if right == 0 else left % right
            if expr.op == "and":
                return right if left else 0
            if expr.op == "or":
                return left if left else right
        # algebraic short-circuits
        if expr.op == "*" and (left == 0 or right == 0):
            return 0
        return TOP
    return TOP


class ConstantPropagation(DataflowProblem[Optional[ConstEnv]]):
    """Sequential constant propagation; receives havoc their target."""

    def __init__(self, num_procs: Optional[int] = None, proc_id: Optional[int] = None):
        super().__init__(_ConstEnvLattice())
        self._num_procs = num_procs
        self._proc_id = proc_id

    def entry_state(self) -> ConstEnv:
        env = {}
        if self._proc_id is not None:
            env["id"] = self._proc_id
        if self._num_procs is not None:
            env["np"] = self._num_procs
        return tuple(sorted(env.items()))

    def transfer(self, node: CFGNode, state: Optional[ConstEnv]):
        if state is None:
            return None
        env = dict(state)
        if node.kind == NodeKind.ASSIGN:
            assert isinstance(node.stmt, Assign)
            env[node.stmt.target] = eval_const(node.stmt.value, env, self._num_procs)
        elif node.kind == NodeKind.RECV:
            assert isinstance(node.stmt, Recv)
            env[node.stmt.target] = TOP
        return tuple(sorted(env.items()))

    def refine(self, node: CFGNode, state, label):
        if state is None or node.kind != NodeKind.BRANCH or label is None:
            return state
        env = dict(state)
        verdict = eval_const(node.cond, env, self._num_procs)
        if isinstance(verdict, int) and bool(verdict) != label:
            return None  # this edge is dead
        return state


def sequential_constants(
    cfg: CFG, num_procs: Optional[int] = None, proc_id: Optional[int] = None
) -> Dict[int, Dict[str, FlatConst]]:
    """Fixed point of sequential constant propagation as plain dicts."""
    states = solve_forward(cfg, ConstantPropagation(num_procs, proc_id))
    return {
        nid: (dict(state) if state is not None else {})
        for nid, state in states.items()
    }


Definition = Tuple[str, int]


class ReachingDefinitions(DataflowProblem[FrozenSet[Definition]]):
    """Classical reaching definitions: (variable, defining node id) pairs."""

    def __init__(self) -> None:
        super().__init__(SetLattice())

    def entry_state(self) -> FrozenSet[Definition]:
        return frozenset()

    def transfer(self, node: CFGNode, state: FrozenSet[Definition]):
        target = None
        if node.kind == NodeKind.ASSIGN:
            assert isinstance(node.stmt, Assign)
            target = node.stmt.target
        elif node.kind == NodeKind.RECV:
            assert isinstance(node.stmt, Recv)
            target = node.stmt.target
        if target is None:
            return state
        survivors = frozenset(d for d in state if d[0] != target)
        return survivors | {(target, node.node_id)}


class LiveVariables:
    """Classical backward liveness (solved by reversal, exposed as a dict)."""

    def __init__(self, cfg: CFG):
        self._cfg = cfg

    @staticmethod
    def _uses_defs(node: CFGNode) -> Tuple[FrozenSet[str], FrozenSet[str]]:
        uses: FrozenSet[str] = frozenset()
        defs: FrozenSet[str] = frozenset()
        if node.kind == NodeKind.ASSIGN:
            uses = frozenset(node.stmt.value.free_vars())
            defs = frozenset({node.stmt.target})
        elif node.kind == NodeKind.BRANCH:
            uses = frozenset(node.cond.free_vars())
        elif node.kind == NodeKind.SEND:
            uses = frozenset(
                node.stmt.value.free_vars() | node.stmt.dest.free_vars()
            )
        elif node.kind == NodeKind.RECV:
            uses = frozenset(node.stmt.src.free_vars())
            defs = frozenset({node.stmt.target})
        elif node.kind in (NodeKind.PRINT, NodeKind.ASSERT):
            expr = node.stmt.value if node.kind == NodeKind.PRINT else node.stmt.cond
            uses = frozenset(expr.free_vars())
        return uses, defs

    def solve(self) -> Dict[int, FrozenSet[str]]:
        """Live-out sets per node via a backward worklist."""
        live_out: Dict[int, FrozenSet[str]] = {nid: frozenset() for nid in self._cfg.nodes}
        changed = True
        while changed:
            changed = False
            for nid in self._cfg.nodes:
                out: FrozenSet[str] = frozenset()
                for succ, _label in self._cfg.successors(nid):
                    succ_node = self._cfg.node(succ)
                    uses, defs = self._uses_defs(succ_node)
                    out = out | uses | (live_out[succ] - defs)
                if out != live_out[nid]:
                    live_out[nid] = out
                    changed = True
        return live_out
