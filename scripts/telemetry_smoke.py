#!/usr/bin/env python
"""CI smoke for the service telemetry plane, against a live daemon.

Drives one streaming analyze request and checks the event sequence
(admission first, result last, rung and engine heartbeats in between),
scrapes ``/metrics`` and fails when a required series is missing or the
exposition does not parse, then stitches the request's cross-process
span shards through ``repro trace`` and schema-checks the result.

Usage::

    PYTHONPATH=src python scripts/telemetry_smoke.py --state-dir .ci-serve
    PYTHONPATH=src python scripts/telemetry_smoke.py \
        --url http://127.0.0.1:8642 --state-dir .ci-serve \
        --trace-out telemetry-trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import trace_main  # noqa: E402
from repro.corpus.generator import generate  # noqa: E402
from repro.obs import metrics  # noqa: E402
from repro.obs.export import validate_chrome_trace  # noqa: E402

# Series a dashboard cannot live without; their absence fails the job.
REQUIRED_SERIES = (
    "repro_up",
    "repro_serve_cache_resident_entries",
    "repro_serve_queue_depth",
    "repro_serve_http_latency_ms",
    "repro_serve_http_requests_total",
    "repro_engine_steps_total",
)


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def stream_request(base_url: str, source: str, timeout: float) -> list:
    request = urllib.request.Request(
        base_url + "/v1/analyze",
        data=json.dumps({"program": source, "stream": True}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    events = []
    with urllib.request.urlopen(request, timeout=timeout) as response:
        if response.status != 200:
            raise RuntimeError(f"streaming analyze returned {response.status}")
        for line in response:
            events.append(json.loads(line))
    return events


def check_stream(events: list) -> list:
    problems = []
    kinds = [event.get("event") for event in events]
    if not events:
        return ["stream produced no events"]
    if kinds[0] != "admission":
        problems.append(f"first event is {kinds[0]!r}, expected 'admission'")
    elif not events[0].get("trace"):
        problems.append("admission event carries no trace id")
    if kinds[-1] != "result":
        problems.append(f"last event is {kinds[-1]!r}, expected 'result'")
    if "rung" not in kinds:
        problems.append("no rung announcement in the stream")
    if "progress" not in kinds:
        problems.append("no engine heartbeats in the stream")
    elif "rung" in kinds and kinds.index("progress") < kinds.index("rung"):
        problems.append("heartbeat arrived before the first rung")
    return problems


def check_metrics(base_url: str, timeout: float) -> list:
    with urllib.request.urlopen(base_url + "/metrics", timeout=timeout) as response:
        if response.status != 200:
            return [f"/metrics returned {response.status}"]
        text = response.read().decode("utf-8")
    problems = [f"exposition: {p}" for p in metrics.validate_exposition(text)]
    samples = metrics.parse_exposition(text)
    names = {name.split("{", 1)[0] for name in samples}
    for series in REQUIRED_SERIES:
        candidates = {series, series + "_count"}
        if not candidates & names:
            problems.append(f"required series missing: {series}")
    if samples.get("repro_engine_steps_total", 0.0) <= 0.0:
        problems.append(
            "repro_engine_steps_total is zero: worker counters were lost"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url", default=None, help="daemon base URL (overrides --state-dir discovery)"
    )
    parser.add_argument(
        "--state-dir", default=".ci-serve",
        help="daemon state directory, also where span shards live "
             "(default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=71)
    parser.add_argument("--timeout-sec", type=float, default=60.0)
    parser.add_argument(
        "--trace-out", default="telemetry-trace.json",
        help="write the stitched Chrome trace here (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    base_url = args.url
    if base_url is None:
        from repro.serve.http import discover

        located = discover(args.state_dir)
        if located is None:
            return fail(f"no live daemon found via {args.state_dir}/daemon.json")
        base_url = f"http://{located[0]}:{located[1]}"

    events = stream_request(base_url, generate(args.seed).source, args.timeout_sec)
    print(f"stream: {len(events)} events "
          f"({', '.join(sorted({e.get('event', '?') for e in events}))})")
    problems = check_stream(events)
    problems += [f"metrics: {p}" for p in check_metrics(base_url, args.timeout_sec)]

    trace_id = events[0].get("trace") if events else None
    if trace_id:
        # span records are eventually consistent: the daemon's serve.job
        # record lands just after the client sees the result, so give the
        # shards a moment to settle before stitching
        sink = Path(args.state_dir) / "traces"
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            shards = list(sink.glob(f"{trace_id}-*.jsonl"))
            names = {
                json.loads(line)["name"]
                for shard in shards
                for line in shard.read_text().splitlines()
            }
            if len(shards) >= 2 and "serve.job" in names:
                break
            time.sleep(0.05)
        status = trace_main(
            [trace_id, "--state-dir", args.state_dir, "--out", args.trace_out]
        )
        if status != 0:
            problems.append(f"repro trace {trace_id} exited {status}")
        else:
            document = json.loads(Path(args.trace_out).read_text())
            validate_chrome_trace(document)
            spans = [e for e in document["traceEvents"] if e.get("ph") == "X"]
            pids = {e["pid"] for e in spans}
            print(f"trace: {len(spans)} spans across {len(pids)} process(es)")
            if len(pids) < 2:
                problems.append(
                    "stitched trace covers one process; attempt-worker "
                    "shard missing"
                )

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not problems:
        print("telemetry-smoke: stream, /metrics, and stitched trace all check out")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
