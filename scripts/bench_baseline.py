#!/usr/bin/env python3
"""Tracked benchmark baseline for the pCFG engine hot path.

Runs the three tracked workloads — the measured core of
``benchmarks/bench_fig5_exchange.py``, ``benchmarks/bench_fig2_constprop.py``
and ``benchmarks/bench_sec9_profile.py`` — and records the median-of-5 wall
time of each plus the observability counters of one instrumented run.

Two modes:

``--out BENCH.json``
    Measure and write the baseline document.  ``--pre OLD.json`` embeds a
    previously captured document under ``"pre_overhaul"`` so the file carries
    its own before/after trajectory (this is how ``BENCH_pr2.json`` records
    the pre-PR-2 engine).

``--compare BENCH.json``
    Measure and compare against the committed medians; exit non-zero when
    any tracked median regressed by more than ``--threshold`` (default 25%,
    the CI gate).

The JSON schema (``repro-bench/1``)::

    {
      "schema": "repro-bench/1",
      "benches":  {"<name>": {"median_s": float, "runs_s": [float, ...]}},
      "counters": {"<name>": {"<obs counter>": int, ...}},
      "counters_warm": { ... same shape, second run with warm memo tables ... },
      "pre_overhaul": { ... an older document's "benches"/"counters" ... }
    }

``counters`` is a cold run (every memo table cleared first) — the fair
baseline for the timed medians, which are also cold.  ``counters_warm`` is
an immediately repeated run with the process-wide closure/equivalence
memos left hot, the steady state of a long-lived analysis process: the
``cgraph.closure.cache_hits`` counter replaces essentially all closure
executions there.

``--out`` documents additionally record ``"checkpoint_overhead"``: the two
checkpoint-capable workloads re-timed with a periodic
:class:`~repro.core.checkpoint.Checkpointer` attached at the documented
default cadence (``every_steps=500``), plus the full per-snapshot cost
sampled at a dense cadence.  The recorded ``overhead`` fraction is what a
long-running analysis pays per step with crash-safety on, snapshot writes
amortized over the default interval; the target is <= 5%
(``"target": 0.05``).  See :func:`measure_checkpoint_overhead`.

``--out`` documents also record ``"provenance_overhead"``: every tracked
workload re-timed in the flight recorder's three operating modes —
``off`` (the default; every emit site is behind one ``is not None``
check), ``ring`` (in-memory ring buffer at the default capacity), and
``spill`` (a deliberately tiny ring that spills evicted events to a
JSONL journal) — as paired-window ratios against ``off``.  With
``--prov-pre-tree WORKTREE`` (a checkout of the commit before the
flight recorder existed), the disabled mode is additionally compared
against that tree by paired subprocesses (``disabled_vs_tree``): the
recorded cost of *having* the instrumentation while it is off, target
<= 2% (``"off_target": 0.02``).  See :func:`measure_provenance_overhead`
and :func:`measure_disabled_vs_tree`.

``--out`` documents also record ``"serve"``: a duplicate-heavy corpus
replay against an in-process ``repro serve`` stack — requests/sec,
cache-hit rate (gated: >= 0.9 on the warm replay), shed rate, and
latency percentiles.  See :func:`measure_serve`.

With ``--telemetry-pre-tree WORKTREE`` (a checkout of the commit before
the telemetry plane landed), ``--out`` documents additionally record
``"telemetry_overhead"``: the same paired-subprocess tree comparison
applied to the disabled telemetry guards (per-step progress-hook checks,
thread-local trace-context lookups), gated at <= 2% on the Section IX
profile workload.  See :func:`measure_telemetry_overhead`.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Callable, Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro import analyze, programs  # noqa: E402
from repro.analyses.constprop import propagate_constants  # noqa: E402
from repro.cgraph import constraint_graph  # noqa: E402
from repro.cgraph.stats import reset_global_stats  # noqa: E402
from repro.core.checkpoint import Checkpointer  # noqa: E402
from repro.core.driver import analyze_batch  # noqa: E402
from repro.corpus.generator import generate, seed_stream  # noqa: E402
from repro.corpus.sweep import SMOKE_SEED  # noqa: E402
from repro.obs import profile_program, provenance  # noqa: E402
from repro.obs import recorder as obs_recorder  # noqa: E402

#: counters recorded per workload (missing counters default to 0 so the
#: script also runs against engines that predate them)
TRACKED_COUNTERS = (
    "engine.steps",
    "engine.joins",
    "engine.widenings",
    "engine.worklist.dedup",
    "engine.intern.hits",
    "cgraph.cow.shares",
    "cgraph.cow.materializations",
    "cgraph.closure.cache_hits",
    "cgraph.closure.full.calls",
    "cgraph.closure.incremental.calls",
    "hsm.prove.cache_hits",
)

WARMUP_RUNS = 1
TIMED_RUNS = 5


def _reset() -> None:
    """Per-run isolation: closure stats, obs recorder, and engine caches."""
    reset_global_stats()
    obs_recorder.reset()
    provenance.reset()
    clear = getattr(constraint_graph, "clear_closure_caches", None)
    if clear is not None:
        clear()
    # collect garbage left by the previous run so a collection triggered by
    # an earlier workload's debris never lands inside a timed window
    gc.collect()


def _bench_fig5_exchange() -> None:
    result, _, _ = analyze(programs.get("exchange_with_root"))
    assert not result.gave_up


def _bench_fig2_constprop() -> None:
    report, _, _ = propagate_constants(programs.get("pingpong"))
    assert not report.gave_up


def _bench_sec9_profile() -> None:
    _, result = profile_program(programs.get("broadcast_fanout"), naive=False)
    assert not result.gave_up


#: generated programs in the serial ``bench_corpus_batch`` workload — small
#: enough that the median-of-5 stays quick, large enough to mix topologies
CORPUS_BENCH_COUNT = 8

_CORPUS_CACHE: Dict[int, list] = {}


def _corpus_programs(count: int) -> list:
    """The first ``count`` seeded-generator programs, parsed once and cached
    so the timed window measures the analyzer, not the generator."""
    if count not in _CORPUS_CACHE:
        _CORPUS_CACHE[count] = [
            generate(seed).parse() for seed in seed_stream(SMOKE_SEED, count)
        ]
    return _CORPUS_CACHE[count]


def _bench_corpus_batch() -> None:
    for _item, report in analyze_batch(_corpus_programs(CORPUS_BENCH_COUNT)):
        assert report.result is not None


WORKLOADS: Dict[str, Callable[[], None]] = {
    "bench_fig5_exchange": _bench_fig5_exchange,
    "bench_fig2_constprop": _bench_fig2_constprop,
    "bench_sec9_profile": _bench_sec9_profile,
    "bench_corpus_batch": _bench_corpus_batch,
}

#: the documented default snapshot cadence (see README "Resumable analyses");
#: the overhead target is evaluated at this operating point
CKPT_EVERY_STEPS = 500
#: dense cadence used only to *sample* the full per-snapshot cost
#: (capture + serialize + atomic write) — the tracked workloads run a few
#: dozen fixpoint steps, so this forces several real snapshots per run
CKPT_COST_EVERY_STEPS = 5
CKPT_OVERHEAD_TARGET = 0.05


def _ckpt_fig5_exchange(ckpt: Optional[Checkpointer]) -> Callable[[], None]:
    def run() -> None:
        result, _, _ = analyze(programs.get("exchange_with_root"), checkpointer=ckpt)
        assert not result.gave_up

    return run


def _ckpt_fig2_constprop(ckpt: Optional[Checkpointer]) -> Callable[[], None]:
    def run() -> None:
        report, _, _ = propagate_constants(programs.get("pingpong"), checkpointer=ckpt)
        assert not report.gave_up

    return run


#: workload factories for the checkpoint-overhead measurement (the Section IX
#: profile workload drives the engine through its own wrapper and is excluded)
CKPT_WORKLOADS: Dict[str, Callable[[Optional[Checkpointer]], Callable[[], None]]] = {
    "bench_fig5_exchange": _ckpt_fig5_exchange,
    "bench_fig2_constprop": _ckpt_fig2_constprop,
}


#: paired A/B windows in the overhead comparison (more than the plain
#: medians get: the ratios divide millisecond-scale numbers)
OVERHEAD_WINDOWS = 15


def _paired_ratios(variants, inner: int):
    """Per-variant median wall time and median per-window ratio vs variants[0].

    The overhead ratios compare millisecond-scale runs, where independently
    timed medians are still scheduler-noise-dominated.  Two defenses: batch
    ``inner`` back-to-back runs per timed window, and *pair* the
    measurements — each window times every variant in immediate succession
    and yields one ratio per variant, so slow drift (CPU frequency,
    allocator state) cancels inside the window; the median over all windows
    then suppresses the occasional interfered window far better than
    comparing two independently taken minima.

    Returns ``(medians, ratios)``: per-variant median seconds per run and
    per-variant median of within-window ratios to ``variants[0]`` (so
    ``ratios[0] == 1.0``).
    """
    for workload in variants:
        _reset()
        workload()
    times = [[] for _ in variants]
    window_ratios = [[] for _ in variants]
    for _ in range(OVERHEAD_WINDOWS):
        window = []
        for index, workload in enumerate(variants):
            _reset()
            start = time.perf_counter()
            for _ in range(inner):
                workload()
            window.append((time.perf_counter() - start) / inner)
            times[index].append(window[index])
        for index, seconds in enumerate(window):
            window_ratios[index].append(seconds / window[0])
    medians = [statistics.median(series) for series in times]
    ratios = [statistics.median(series) for series in window_ratios]
    return medians, ratios


def _inner_for(workload: Callable[[], None]) -> int:
    """Pick a batch size that fills a ~100ms timed window (capped at 50)."""
    _reset()
    start = time.perf_counter()
    workload()
    single = time.perf_counter() - start
    return max(1, min(50, int(0.1 / max(single, 1e-9))))


def measure_checkpoint_overhead() -> dict:
    """Cost of crash-safety at the documented cadence, per workload.

    Two ingredients, both measured:

    * ``armed_overhead`` — paired-window wall time (see
      :func:`_paired_ratios`) with a ``Checkpointer`` attached at the
      default cadence (``every_steps=500``) vs without one.  The tracked
      workloads run far fewer than 500 steps, so no periodic snapshot
      fires: this isolates the steady per-step price of having
      crash-safety switched on (the cadence branch, the armed atexit hook).
    * ``snapshot_s`` — the full cost of one snapshot (state capture,
      canonical JSON + checksum, atomic write-rename), sampled by also
      timing a dense ``every_steps=5`` cadence and dividing its wall-time
      delta over the plain run by the number of snapshots written.

    ``overhead`` combines them at the default operating point:
    ``armed_overhead + snapshot_s / (every_steps * per_step_s)`` — what a
    long-running analysis pays per step once snapshot writes amortize over
    the 500-step interval.  Snapshots land in a temporary directory that is
    removed afterwards, so the measurement never dirties the working tree.
    """
    workloads: Dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-ckpt-") as tmp:
        for name, factory in CKPT_WORKLOADS.items():
            inner = _inner_for(factory(None))
            armed = Checkpointer(tmp, name=name, every_steps=CKPT_EVERY_STEPS)
            dense = Checkpointer(
                tmp, name=name + "-dense", every_steps=CKPT_COST_EVERY_STEPS
            )
            medians, ratios = _paired_ratios(
                [factory(None), factory(armed), factory(dense)], inner
            )
            plain = medians[0]
            armed_overhead = ratios[1] - 1.0
            _reset()
            with obs_recorder.recording() as recorder:
                factory(dense)()
                snap = recorder.snapshot()
            steps = int(snap["counters"].get("engine.steps", 0))
            writes = int(snap["counters"].get("engine.ckpt.writes", 0))
            bytes_hist = snap.get("histograms", {}).get("engine.ckpt.bytes", {})
            dense_extra_s = max(ratios[2] - 1.0, 0.0) * plain
            snapshot_s = dense_extra_s / writes if writes else 0.0
            snapshot_bytes = (
                bytes_hist.get("total", 0.0) / writes if writes else 0.0
            )

            per_step_s = plain / steps if steps else 0.0
            overhead = max(armed_overhead, 0.0)
            if per_step_s > 0:
                overhead += snapshot_s / (CKPT_EVERY_STEPS * per_step_s)
            workloads[name] = {
                "steps": steps,
                "plain_s": plain,
                "armed_s": medians[1],
                "armed_overhead": armed_overhead,
                "snapshot_s": snapshot_s,
                "snapshot_bytes": snapshot_bytes,
                "overhead": overhead,
            }
    return {
        "every_steps": CKPT_EVERY_STEPS,
        "cost_sample_every_steps": CKPT_COST_EVERY_STEPS,
        "target": CKPT_OVERHEAD_TARGET,
        "workloads": workloads,
    }


#: tiny ring capacity for the spill-mode measurement — small enough that
#: every tracked workload overflows it and exercises the JSONL spill path
PROV_SPILL_CAPACITY = 16
PROV_OFF_TARGET = 0.02


def measure_provenance_overhead() -> dict:
    """Cost of the provenance flight recorder per workload, per mode.

    Paired-window ratios (:func:`_paired_ratios`) of three variants of
    every tracked workload:

    * ``off`` — provenance disabled, the default.  This is the baseline
      of the paired comparison, so its in-document ratio is 1 by
      construction; the *absolute* disabled cost (the ``is not None``
      guards the engine now carries) is measured separately against a
      pre-instrumentation checkout by :func:`measure_disabled_vs_tree`
      (``--prov-pre-tree``) — target <= 2%.
    * ``ring`` — recording into the default in-memory ring buffer.
    * ``spill`` — recording into a deliberately tiny ring
      (``PROV_SPILL_CAPACITY`` events) with evicted events appended to a
      JSONL journal: the worst case, every event eventually hits the disk.

    Journals land in a temporary directory that is removed afterwards.
    """
    workloads: Dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-prov-") as tmp:
        for name, workload in WORKLOADS.items():
            spill_path = Path(tmp) / f"{name}.jsonl"

            def ring_run(workload=workload):
                with provenance.recording():
                    workload()

            def spill_run(workload=workload, spill_path=spill_path):
                # fresh journal per run so the file never grows unboundedly
                spill_path.write_text("")
                with provenance.recording(
                    capacity=PROV_SPILL_CAPACITY, spill_path=str(spill_path)
                ):
                    workload()

            inner = _inner_for(workload)
            medians, ratios = _paired_ratios(
                [workload, ring_run, spill_run], inner
            )
            _reset()
            with provenance.recording() as prov:
                workload()
                events = prov.total_events
            entry = {
                "events": events,
                "off_s": medians[0],
                "ring_s": medians[1],
                "spill_s": medians[2],
                "ring_overhead": ratios[1] - 1.0,
                "spill_overhead": ratios[2] - 1.0,
            }
            workloads[name] = entry
    return {
        "spill_capacity": PROV_SPILL_CAPACITY,
        "off_target": PROV_OFF_TARGET,
        "workloads": workloads,
    }


#: paired subprocess windows for the disabled-vs-pre-tree measurement;
#: each window times ~0.25s per tree, so the ratio divides numbers large
#: enough to resolve a 2% target through scheduler noise
PROV_TREE_WINDOWS = 20

#: timing snippet run in a subprocess against one source tree: argv is
#: (src dir, workload name, inner batch); prints seconds per run
_TREE_SNIPPET = """
import sys, time
sys.path.insert(0, sys.argv[1])
name, inner = sys.argv[2], int(sys.argv[3])
from repro import analyze, programs
from repro.analyses.constprop import propagate_constants
from repro.obs import profile_program

def run():
    if name == "bench_fig5_exchange":
        result, _, _ = analyze(programs.get("exchange_with_root"))
        assert not result.gave_up
    elif name == "bench_fig2_constprop":
        report, _, _ = propagate_constants(programs.get("pingpong"))
        assert not report.gave_up
    else:
        _, result = profile_program(programs.get("broadcast_fanout"), naive=False)
        assert not result.gave_up

run()
start = time.perf_counter()
for _ in range(inner):
    run()
print((time.perf_counter() - start) / inner)
"""


def measure_disabled_vs_tree(pre_tree: Path) -> dict:
    """Disabled-provenance cost vs a pre-instrumentation source tree.

    The in-process paired comparison above cannot see the cost of the
    ``is not None`` guards themselves — disabled mode *is* its baseline —
    and cross-document cold medians drift by more than the 2% target
    between sessions.  This measurement closes the gap: each window runs
    the same workload in two fresh subprocesses back to back — one
    importing ``repro`` from ``pre_tree`` (a checkout of the commit
    before the flight recorder existed, e.g. a ``git worktree`` of it),
    one from this repository — and yields one wall-time ratio; the median
    over ``PROV_TREE_WINDOWS`` windows is the recorded ``off_overhead``.
    Subprocess startup is excluded (each subprocess times itself after a
    warmup run), and the in-window order alternates so monotone machine
    drift (thermal/quota throttling over a long bench run) cancels in
    the median instead of consistently penalizing whichever tree runs
    second.
    """
    pre_src = Path(pre_tree) / "src"
    if not pre_src.is_dir():
        pre_src = Path(pre_tree)

    def timed(tree: str, name: str, inner: int) -> float:
        out = subprocess.run(
            [sys.executable, "-c", _TREE_SNIPPET, tree, name, str(inner)],
            capture_output=True, text=True, check=True,
        )
        return float(out.stdout.strip())

    workloads: Dict[str, dict] = {}
    for name, workload in WORKLOADS.items():
        if name == "bench_corpus_batch":
            # the corpus generator postdates every pre-instrumentation tree
            continue
        _reset()
        start = time.perf_counter()
        workload()
        single = time.perf_counter() - start
        inner = max(3, min(100, int(0.25 / max(single, 1e-9))))
        ratios = []
        for window in range(PROV_TREE_WINDOWS):
            if window % 2 == 0:
                pre_s = timed(str(pre_src), name, inner)
                cur_s = timed(str(SRC), name, inner)
            else:
                cur_s = timed(str(SRC), name, inner)
                pre_s = timed(str(pre_src), name, inner)
            ratios.append(cur_s / pre_s)
        workloads[name] = {
            "off_overhead": statistics.median(ratios) - 1.0,
            "windows": len(ratios),
        }
    return {"pre_tree": str(pre_tree), "workloads": workloads}


#: disabled-telemetry cost target on the gated workload: the progress-hook
#: and trace-context guards the engine hot path now carries must stay
#: invisible when no subscriber or sink is installed
TELEMETRY_OFF_TARGET = 0.02
#: the workload the telemetry gate is enforced on (the Section IX profile
#: drives the deepest engine loop, where a hot-path guard would show first)
TELEMETRY_GATED_WORKLOAD = "bench_sec9_profile"


def measure_telemetry_overhead(pre_tree: Path) -> dict:
    """Disabled-telemetry cost vs a pre-telemetry source tree.

    Same paired-subprocess design as :func:`measure_disabled_vs_tree` —
    the telemetry plane's disabled mode is the in-process baseline, so
    only a tree comparison can see the guards themselves (the per-step
    progress-hook check in the engine worklist loop and the thread-local
    trace-context lookups around rungs and attempts).  Each window runs
    the workload in two fresh subprocesses back to back, one importing
    ``repro`` from ``pre_tree`` (a checkout of the commit before the
    telemetry plane landed), one from this repository, in alternating
    order; the median window ratio is the recorded ``off_overhead``.

    The gate (target <= 2%) is enforced on ``TELEMETRY_GATED_WORKLOAD``;
    the other tracked workloads are recorded informationally.
    """
    pre_src = Path(pre_tree) / "src"
    if not pre_src.is_dir():
        pre_src = Path(pre_tree)

    def timed(tree: str, name: str, inner: int) -> float:
        out = subprocess.run(
            [sys.executable, "-c", _TREE_SNIPPET, tree, name, str(inner)],
            capture_output=True, text=True, check=True,
        )
        return float(out.stdout.strip())

    workloads: Dict[str, dict] = {}
    for name, workload in WORKLOADS.items():
        if name == "bench_corpus_batch":
            continue
        _reset()
        start = time.perf_counter()
        workload()
        single = time.perf_counter() - start
        inner = max(3, min(100, int(0.25 / max(single, 1e-9))))
        ratios = []
        for window in range(PROV_TREE_WINDOWS):
            if window % 2 == 0:
                pre_s = timed(str(pre_src), name, inner)
                cur_s = timed(str(SRC), name, inner)
            else:
                cur_s = timed(str(SRC), name, inner)
                pre_s = timed(str(pre_src), name, inner)
            ratios.append(cur_s / pre_s)
        workloads[name] = {
            "off_overhead": statistics.median(ratios) - 1.0,
            "windows": len(ratios),
        }
    gated = workloads.get(TELEMETRY_GATED_WORKLOAD, {})
    return {
        "pre_tree": str(pre_tree),
        "off_target": TELEMETRY_OFF_TARGET,
        "gate": {
            "workload": TELEMETRY_GATED_WORKLOAD,
            "target": TELEMETRY_OFF_TARGET,
            "met": gated.get("off_overhead", 1.0) <= TELEMETRY_OFF_TARGET,
        },
        "workloads": workloads,
    }


#: worker counts measured by the parallel section; 1 is the baseline
PARALLEL_JOBS = (1, 2, 4)
#: corpus batch size for the parallel measurement — larger than the serial
#: tier so pool startup and state shipping amortize over real work
PARALLEL_COUNT = 24
PARALLEL_RUNS = 3
#: the acceptance target: wall-clock speedup of the jobs=4 batch over the
#: jobs=1 batch.  Only *enforced* on hosts with >= 4 CPUs — on fewer cores
#: the speedup is physically unattainable and the recorded number documents
#: the honest (pool-overhead-dominated) behavior instead of gating on it.
PARALLEL_SPEEDUP_TARGET = 1.5
PARALLEL_GATE_MIN_CPUS = 4


def measure_parallel() -> dict:
    """Wall-clock speedup of the parallel corpus batch, equivalence-gated.

    Times ``analyze_batch`` over ``PARALLEL_COUNT`` seeded-generator
    programs at each worker count in ``PARALLEL_JOBS`` (median of
    ``PARALLEL_RUNS``), and checks that every worker count reports the
    same (rung, confidence, match set) per program as the serial run —
    a speedup that changes answers is a bug, not a win.

    The document records ``cpus`` so readers can judge the numbers: on a
    single-core host the parallel runs *lose* (pool startup plus pickling
    with no parallel hardware underneath), and the ``gate`` entry says
    whether the speedup target was enforced on this machine.
    """
    import os

    corpus = _corpus_programs(PARALLEL_COUNT)
    cpus = os.cpu_count() or 1
    entries: Dict[str, dict] = {}
    baseline_outcomes = None
    for jobs in PARALLEL_JOBS:
        runs = []
        outcomes = None
        for _ in range(PARALLEL_RUNS):
            _reset()
            start = time.perf_counter()
            reports = [report for _item, report in analyze_batch(corpus, jobs=jobs)]
            runs.append(time.perf_counter() - start)
            outcomes = [
                (
                    report.rung_name,
                    report.result.confidence,
                    sorted(report.result.matches),
                )
                for report in reports
            ]
        if baseline_outcomes is None:
            baseline_outcomes = outcomes
        entries[str(jobs)] = {
            "median_s": statistics.median(runs),
            "runs_s": runs,
            "equivalent": outcomes == baseline_outcomes,
        }
    base = entries[str(PARALLEL_JOBS[0])]["median_s"]
    for entry in entries.values():
        entry["speedup"] = base / entry["median_s"] if entry["median_s"] else 0.0
    top = str(PARALLEL_JOBS[-1])
    enforced = cpus >= PARALLEL_GATE_MIN_CPUS
    return {
        "cpus": cpus,
        "programs": PARALLEL_COUNT,
        "base_seed": SMOKE_SEED,
        "jobs": entries,
        "gate": {
            "target_speedup": PARALLEL_SPEEDUP_TARGET,
            "at_jobs": PARALLEL_JOBS[-1],
            "min_cpus": PARALLEL_GATE_MIN_CPUS,
            "enforced": enforced,
            "met": entries[top]["speedup"] >= PARALLEL_SPEEDUP_TARGET,
            "equivalent": all(entry["equivalent"] for entry in entries.values()),
        },
    }


def _instrumented(workload: Callable[[], None]) -> Dict[str, int]:
    """One recorded run of a workload; returns the tracked counters."""
    with obs_recorder.recording() as recorder:
        workload()
        snapshot = recorder.snapshot()["counters"]
    return {key: int(snapshot.get(key, 0)) for key in TRACKED_COUNTERS}


# -- the analysis service ------------------------------------------------------

#: the duplicate-heavy replay must be served at least this much from the
#: content-addressed cache (the PR 8 service gate)
SERVE_HIT_RATE_TARGET = 0.9


def measure_serve() -> dict:
    """Duplicate-heavy corpus replay against an in-process service.

    Spins up the ``repro serve`` stack (scheduler + HTTP, inline
    isolation so the numbers measure the service layer rather than
    process forks), warms one copy of each distinct program, then
    replays the duplicate storm concurrently — the steady-state access
    pattern of a popular service.  Records requests/sec, cache-hit
    rate (gated: >= ``SERVE_HIT_RATE_TARGET``), shed rate, and latency
    percentiles.
    """
    import shutil
    import tempfile
    import threading

    from repro.serve.daemon import AnalysisService, ServiceConfig
    from repro.serve.http import AnalysisHTTPServer
    from repro.serve.loadgen import corpus_mix, run_load

    distinct, duplicates = 5, 10
    state_dir = Path(tempfile.mkdtemp(prefix="repro-serve-bench-"))
    config = ServiceConfig(
        state_dir=state_dir, workers=2, isolation="inline", queue_size=64
    )
    service = AnalysisService(config)
    service.start()
    httpd = AnalysisHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    try:
        metrics = run_load(
            base,
            corpus_mix(distinct, duplicates),
            concurrency=8,
            warm_distinct=corpus_mix(distinct, 1),
            deadline_sec=20.0,
        )
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.stop()
        shutil.rmtree(state_dir, ignore_errors=True)
        _reset()
    metrics["distinct"] = distinct
    metrics["duplicates"] = duplicates
    metrics["gate"] = {
        "target_hit_rate": SERVE_HIT_RATE_TARGET,
        "met": metrics["cache_hit_rate"] >= SERVE_HIT_RATE_TARGET,
    }
    return metrics


def measure() -> dict:
    """Median-of-5 cold wall times plus cold and warm instrumented runs."""
    benches: Dict[str, dict] = {}
    counters: Dict[str, dict] = {}
    counters_warm: Dict[str, dict] = {}
    for name, workload in WORKLOADS.items():
        for _ in range(WARMUP_RUNS):
            _reset()
            workload()
        runs = []
        for _ in range(TIMED_RUNS):
            _reset()
            start = time.perf_counter()
            workload()
            runs.append(time.perf_counter() - start)
        benches[name] = {
            "median_s": statistics.median(runs),
            "runs_s": runs,
        }
        _reset()
        counters[name] = _instrumented(workload)
        # second run without clearing the process-wide memo tables: the
        # steady state of a warm analysis process
        counters_warm[name] = _instrumented(workload)
        _reset()
    return {
        "schema": "repro-bench/1",
        "benches": benches,
        "counters": counters,
        "counters_warm": counters_warm,
    }


def write_baseline(
    out: Path,
    pre: Path = None,
    prov_pre_tree: Path = None,
    telemetry_pre_tree: Path = None,
) -> dict:
    document = measure()
    document["checkpoint_overhead"] = measure_checkpoint_overhead()
    old = json.loads(pre.read_text()) if pre is not None else None
    document["parallel"] = measure_parallel()
    document["serve"] = measure_serve()
    document["provenance_overhead"] = measure_provenance_overhead()
    if prov_pre_tree is not None:
        document["provenance_overhead"]["disabled_vs_tree"] = (
            measure_disabled_vs_tree(prov_pre_tree)
        )
    if telemetry_pre_tree is not None:
        document["telemetry_overhead"] = measure_telemetry_overhead(
            telemetry_pre_tree
        )
    if old is not None:
        document["pre_overhaul"] = {
            "benches": old.get("benches", {}),
            "counters": old.get("counters", {}),
        }
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def compare(baseline_path: Path, threshold: float) -> int:
    baseline = json.loads(baseline_path.read_text())
    current = measure()
    failures = []
    print(f"{'bench':28s} {'baseline':>12s} {'current':>12s} {'ratio':>8s}")
    for name, recorded in sorted(baseline.get("benches", {}).items()):
        if name not in current["benches"]:
            continue
        old = recorded["median_s"]
        new = current["benches"][name]["median_s"]
        ratio = new / old if old > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + threshold:
            failures.append((name, old, new, ratio))
            flag = "  REGRESSION"
        print(f"{name:28s} {old:>11.4f}s {new:>11.4f}s {ratio:>7.2f}x{flag}")
    if failures:
        print(
            f"\nFAIL: {len(failures)} tracked median(s) regressed more than "
            f"{100 * threshold:.0f}% vs {baseline_path}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no tracked median regressed more than {100 * threshold:.0f}%")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--out", type=Path, help="write a fresh baseline document")
    mode.add_argument(
        "--compare", type=Path, help="compare against a committed baseline"
    )
    parser.add_argument(
        "--pre",
        type=Path,
        default=None,
        help="older document to embed under 'pre_overhaul' (with --out)",
    )
    parser.add_argument(
        "--prov-pre-tree",
        type=Path,
        default=None,
        help="source tree of the commit before the provenance flight "
             "recorder (e.g. a git worktree): paired-subprocess measurement "
             "of the disabled-mode overhead (with --out)",
    )
    parser.add_argument(
        "--telemetry-pre-tree",
        type=Path,
        default=None,
        help="source tree of the commit before the telemetry plane (e.g. a "
             "git worktree): paired-subprocess measurement of the disabled "
             "progress-hook/trace-context overhead, gated on the Section IX "
             "workload (with --out)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional median regression in --compare mode",
    )
    args = parser.parse_args(argv)
    if args.out is not None:
        document = write_baseline(
            args.out, args.pre, args.prov_pre_tree, args.telemetry_pre_tree
        )
        for name, entry in sorted(document["benches"].items()):
            print(f"{name:28s} median {entry['median_s']:.4f}s")
        ckpt = document["checkpoint_overhead"]
        for name, entry in sorted(ckpt["workloads"].items()):
            print(
                f"{name:28s} checkpoint overhead {100 * entry['overhead']:.2f}% "
                f"at every_steps={ckpt['every_steps']} "
                f"(snapshot {1000 * entry['snapshot_s']:.2f}ms, target <= "
                f"{100 * ckpt['target']:.0f}%)"
            )
        par = document["parallel"]
        for jobs, entry in sorted(par["jobs"].items(), key=lambda kv: int(kv[0])):
            print(
                f"corpus batch jobs={jobs:<2s} median {entry['median_s']:.4f}s "
                f"speedup {entry['speedup']:.2f}x "
                f"equivalent={entry['equivalent']}"
            )
        gate = par["gate"]
        status = "met" if gate["met"] else "NOT met"
        if gate["enforced"]:
            scope = "enforced"
        else:
            scope = f"informational: fewer than {gate['min_cpus']} cpus"
        print(
            f"parallel gate: {gate['target_speedup']}x at jobs={gate['at_jobs']} "
            f"{status} on {par['cpus']} cpu(s) ({scope})"
        )
        serve = document["serve"]
        status = "met" if serve["gate"]["met"] else "NOT met"
        print(
            f"serve replay: {serve['requests_per_sec']:.0f} req/s, "
            f"hit rate {serve['cache_hit_rate']:.2f} "
            f"(target >= {serve['gate']['target_hit_rate']}, {status}), "
            f"shed rate {serve['shed_rate']:.2f}, "
            f"p99 {serve['latency_ms']['p99']:.1f}ms"
        )
        prov = document["provenance_overhead"]
        for name, entry in sorted(prov["workloads"].items()):
            print(
                f"{name:28s} provenance overhead "
                f"ring {100 * entry['ring_overhead']:+.2f}% "
                f"spill {100 * entry['spill_overhead']:+.2f}% "
                f"({entry['events']} events)"
            )
        tree = prov.get("disabled_vs_tree")
        if tree is not None:
            for name, entry in sorted(tree["workloads"].items()):
                print(
                    f"{name:28s} disabled overhead vs pre tree "
                    f"{100 * entry['off_overhead']:+.2f}% "
                    f"(target <= {100 * prov['off_target']:.0f}%)"
                )
        telemetry = document.get("telemetry_overhead")
        if telemetry is not None:
            for name, entry in sorted(telemetry["workloads"].items()):
                gated = " [gated]" if name == telemetry["gate"]["workload"] else ""
                print(
                    f"{name:28s} telemetry-off overhead vs pre tree "
                    f"{100 * entry['off_overhead']:+.2f}%{gated}"
                )
            status = "met" if telemetry["gate"]["met"] else "NOT met"
            print(
                f"telemetry gate: <= {100 * telemetry['gate']['target']:.0f}% "
                f"on {telemetry['gate']['workload']} ({status})"
            )
        print(f"wrote {args.out}")
        return 0
    return compare(args.compare, args.threshold)


if __name__ == "__main__":
    sys.exit(main())
