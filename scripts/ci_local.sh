#!/usr/bin/env bash
# Local dry-run of .github/workflows/ci.yml (for machines without `act`).
#
# Runs the same jobs, in the same order, with the same commands:
#   lint        -> ruff check src tests benchmarks examples   (skipped if
#                  ruff is not installed; CI installs it from PyPI)
#   test        -> PYTHONPATH=src python -m pytest -x -q      (one local
#                  interpreter stands in for the 3.9-3.12 matrix)
#   chaos       -> the fault-injection suite at a fixed seed (CHAOS_SEED,
#                  default 1337, printed so failures reproduce exactly)
#   fault-smoke -> the fault-plane test suite plus the seeded invariant
#                  sweep (`repro faults --require-coverage`); failures
#                  print a `--replay BASE:CASE` command that reproduces
#                  the exact fault schedule
#   resume-smoke-> interrupt an analysis (deadline / step budget) with
#                  checkpointing on, `repro resume` it, and diff the output
#                  against an uninterrupted run (must be byte-identical)
#   explain-smoke> budget-trip a run under `repro explain --why-top`, require
#                  the causal chain back to run_start, and schema-check the
#                  exported Chrome trace
#   parallel-smoke> sharded-engine equivalence tests, the 200-program
#                  generated-corpus parallel slice, and a CLI `--jobs 2`
#                  output diff against the serial run
#   sweep-smoke -> differential corpus sweep over the pinned smoke manifest
#                  (analyzer vs concrete interpreter; fails on divergence)
#   serve-smoke -> start a real `repro serve` daemon, replay a duplicate-heavy
#                  corpus through scripts/loadgen.py (cache-hit-rate >= 0.9,
#                  zero errors), SIGTERM-drain it, then run the SIGKILL
#                  kill-and-restart recovery suite (tests/serve/test_crash.py)
#   telemetry-smoke> stream one analyze request against a live daemon (event
#                  sequence: admission -> rung -> progress -> result), scrape
#                  /metrics (fail on missing required series or unparseable
#                  exposition), and stitch the request trace via `repro trace`
#   bench-smoke -> benchmark suite with timing disabled, the tracked-baseline
#                  regression gate (`scripts/bench_baseline.py --compare`),
#                  then the Section IX profile artifact via
#                  `python -m repro profile`.
set -u
cd "$(dirname "$0")/.."

failures=0
failed_steps=""
step() {
  local name="$1"
  echo
  echo "=== $name ==="
  shift
  if "$@"; then
    echo "--- ok"
  else
    echo "--- FAILED: $name ($*)"
    failures=$((failures + 1))
    failed_steps="${failed_steps}${failed_steps:+, }${name}"
  fi
}

if python -m ruff --version >/dev/null 2>&1; then
  step "lint" python -m ruff check src tests benchmarks examples
else
  echo "=== lint === SKIPPED (ruff not installed; CI installs it)"
fi

PYTHONPATH=src
export PYTHONPATH

step "test (python $(python -c 'import sys; print("%d.%d" % sys.version_info[:2])'))" \
  python -m pytest -x -q
CHAOS_SEED="${CHAOS_SEED:-1337}"
export CHAOS_SEED
echo
echo "(chaos seed: CHAOS_SEED=${CHAOS_SEED}; reproduce failures with" \
  "CHAOS_SEED=${CHAOS_SEED} pytest tests/core/test_chaos.py -m chaos)"
step "chaos: fault-injection suite" \
  python -m pytest tests/core/test_chaos.py -m chaos -q
FAULT_SEED="${FAULT_SEED:-1337}"
export FAULT_SEED
step "fault-smoke: fault-plane unit and hardening suite" \
  python -m pytest tests/faults -q
step "fault-smoke: seeded invariant sweep (coverage-gated)" bash -c '
  python -m repro faults --seed "${FAULT_SEED}" --cases 30 \
      --require-coverage --report fault-smoke.jsonl
  status=$?
  if [ "$status" -ne 0 ] && [ -f fault-smoke.jsonl ]; then
    echo "replay failed cases with:"
    python -c "
import json
for line in open(\"fault-smoke.jsonl\"):
    doc = json.loads(line)
    if doc.get(\"ok\") is False:
        print(\"  python -m repro faults --replay\", doc[\"label\"])
"
  fi
  rm -f fault-smoke.jsonl
  exit "$status"'
step "resume-smoke: deadline-tripped constants run" bash -c '
  rm -rf .ci-ckpt && mkdir -p .ci-ckpt &&
  python -m repro pingpong --constants > .ci-ckpt/clean.txt &&
  { python -m repro pingpong --constants --deadline 0 \
      --checkpoint-dir .ci-ckpt > /dev/null || true; } &&
  python -m repro resume pingpong --constants \
      --checkpoint-dir .ci-ckpt > .ci-ckpt/resumed.txt &&
  diff .ci-ckpt/clean.txt .ci-ckpt/resumed.txt'
step "resume-smoke: step-tripped topology run" bash -c '
  python -m repro transpose_square --no-validate > .ci-ckpt/clean.txt &&
  { python -m repro transpose_square --no-validate --max-steps 8 \
      --checkpoint-dir .ci-ckpt > /dev/null || true; } &&
  python -m repro resume transpose_square --no-validate \
      --checkpoint-dir .ci-ckpt > .ci-ckpt/resumed.txt &&
  diff .ci-ckpt/clean.txt .ci-ckpt/resumed.txt &&
  rm -rf .ci-ckpt'
step "explain-smoke: budget-tripped run explains itself" bash -c '
  python -m repro explain pingpong --max-steps 3 --why-top \
      --trace explain-trace.json > explain.txt &&
  grep -q "why-top: \[BUDGET_STEPS\]" explain.txt &&
  grep -q "budget_trip" explain.txt &&
  grep -q "#1 run_start" explain.txt &&
  rm -f explain.txt'
step "explain-smoke: Chrome trace schema check" bash -c '
  python -c "
import json
from repro.obs.export import validate_chrome_trace
document = json.load(open(\"explain-trace.json\"))
validate_chrome_trace(document)
assert [e for e in document[\"traceEvents\"] if e[\"ph\"] == \"X\"]
" && rm -f explain-trace.json'
step "parallel-smoke: sharded engine tests" \
  python -m pytest tests/core/test_shard.py tests/analyses/test_lattice_equivalence.py -q
step "parallel-smoke: generated-corpus parallel slice" \
  python -m pytest -m parallel_slow -q
step "parallel-smoke: CLI --jobs 2 output matches serial" bash -c '
  python -m repro mdcask_full --no-validate > .ci-serial.txt &&
  python -m repro mdcask_full --no-validate --jobs 2 > .ci-parallel.txt &&
  diff .ci-serial.txt .ci-parallel.txt &&
  rm -f .ci-serial.txt .ci-parallel.txt'
step "sweep-smoke: differential corpus sweep" bash -c '
  python -m repro sweep --tier smoke --seed 1337 --jobs 4 \
      --report sweep-smoke.jsonl &&
  rm -f sweep-smoke.jsonl'
step "serve-smoke: daemon serves, caches, and drains" bash -c '
  rm -rf .ci-serve &&
  python -m repro serve --state-dir .ci-serve --port 0 --workers 2 &
  daemon=$!
  for _ in $(seq 1 100); do [ -f .ci-serve/daemon.json ] && break; sleep 0.2; done
  python scripts/loadgen.py --state-dir .ci-serve \
      --distinct 3 --dup 10 --concurrency 4 \
      --assert-hit-rate 0.9 --assert-max-errors 0
  status=$?
  kill -TERM "$daemon" 2>/dev/null
  wait "$daemon" || status=1
  rm -rf .ci-serve
  exit "$status"'
step "serve-smoke: SIGKILL kill-and-restart recovery suite" \
  python -m pytest tests/serve/test_crash.py -q
step "telemetry-smoke: stream + /metrics scrape + stitched trace" bash -c '
  rm -rf .ci-serve &&
  python -m repro serve --state-dir .ci-serve --port 0 --workers 2 &
  daemon=$!
  for _ in $(seq 1 100); do [ -f .ci-serve/daemon.json ] && break; sleep 0.2; done
  python scripts/telemetry_smoke.py --state-dir .ci-serve \
      --trace-out telemetry-trace.json
  status=$?
  kill -TERM "$daemon" 2>/dev/null
  wait "$daemon" || status=1
  rm -rf .ci-serve telemetry-trace.json
  exit "$status"'
step "bench-smoke: benchmarks" python -m pytest benchmarks -q --benchmark-disable
step "bench-smoke: tracked baseline" \
  python scripts/bench_baseline.py --compare BENCH_pr2.json
step "bench-smoke: profile artifact" \
  python -m repro profile exchange_with_root --json profile.json
step "bench-smoke: artifact is valid JSON" \
  python -c "import json; json.load(open('profile.json'))"

echo
if [ "$failures" -eq 0 ]; then
  echo "ci_local: all jobs passed"
else
  echo "ci_local: $failures job step(s) failed: ${failed_steps}"
fi
exit "$failures"
