#!/usr/bin/env python
"""Corpus-replay load generator for a running ``repro serve`` daemon.

Replays a duplicate-heavy mix of corpus-generator programs and prints
(or writes, with ``--out``) the service-level metrics document:
requests/sec, cache-hit rate, shed rate, latency percentiles.  Gates
(``--assert-hit-rate``, ``--assert-max-errors``) make it usable as a CI
smoke step.

Usage::

    PYTHONPATH=src python scripts/loadgen.py --state-dir .repro-serve
    PYTHONPATH=src python scripts/loadgen.py --url http://127.0.0.1:8642 \
        --distinct 5 --dup 10 --concurrency 8 --assert-hit-rate 0.9
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.serve.loadgen import corpus_mix, run_load  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url", default=None, help="daemon base URL (overrides --state-dir discovery)"
    )
    parser.add_argument(
        "--state-dir", default=".repro-serve",
        help="state directory whose daemon.json locates the daemon "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--distinct", type=int, default=5,
        help="distinct generated programs (default: %(default)s)",
    )
    parser.add_argument(
        "--dup", type=int, default=10,
        help="submissions per distinct program (default: %(default)s)",
    )
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--seed", type=int, default=1337)
    parser.add_argument(
        "--deadline-sec", type=float, default=20.0,
        help="per-request engine deadline budget (default: %(default)s)",
    )
    parser.add_argument(
        "--no-warm", action="store_true",
        help="skip the warm-first phase: race all duplicates concurrently "
             "(exercises request coalescing instead of steady-state hits)",
    )
    parser.add_argument("--out", default=None, help="write the metrics JSON here")
    parser.add_argument(
        "--metrics-url", nargs="?", const="auto", default=None, metavar="URL",
        help="after the replay, scrape the daemon's /metrics exposition and "
             "report the service-side counters next to the client-side "
             "numbers (with no value: <base-url>/metrics)",
    )
    parser.add_argument(
        "--assert-hit-rate", type=float, default=None, metavar="RATE",
        help="exit nonzero when cache_hit_rate falls below RATE",
    )
    parser.add_argument(
        "--assert-max-errors", type=int, default=None, metavar="N",
        help="exit nonzero when more than N requests errored",
    )
    args = parser.parse_args(argv)

    base_url = args.url
    if base_url is None:
        from repro.serve.http import discover

        located = discover(args.state_dir)
        if located is None:
            print(
                f"error: no live daemon found via {args.state_dir}/daemon.json "
                f"(start one with: repro serve --state-dir {args.state_dir})",
                file=sys.stderr,
            )
            return 2
        base_url = f"http://{located[0]}:{located[1]}"

    distinct = corpus_mix(args.distinct, 1, seed=args.seed)
    mix = corpus_mix(args.distinct, args.dup, seed=args.seed)
    metrics = run_load(
        base_url,
        mix,
        concurrency=args.concurrency,
        warm_distinct=None if args.no_warm else distinct,
        deadline_sec=args.deadline_sec,
    )
    metrics["distinct"] = args.distinct
    metrics["duplicates"] = args.dup
    metrics["warm_first"] = not args.no_warm
    lat = metrics["latency_ms"]
    print(
        f"latency p50={lat['p50']:.1f}ms p95={lat['p95']:.1f}ms "
        f"p99={lat['p99']:.1f}ms",
        file=sys.stderr,
    )
    if args.metrics_url is not None:
        from repro.serve.loadgen import scrape_metrics

        scrape_base = base_url if args.metrics_url == "auto" else args.metrics_url
        scrape_base = scrape_base[: -len("/metrics")] if scrape_base.endswith("/metrics") else scrape_base
        try:
            samples = scrape_metrics(scrape_base)
        except Exception as exc:
            print(f"warning: /metrics scrape failed: {exc}", file=sys.stderr)
        else:
            metrics["service_metrics"] = {
                name: value
                for name, value in sorted(samples.items())
                if name.startswith(
                    ("repro_serve_cache", "repro_serve_queue", "repro_engine")
                )
                or name.startswith("repro_serve_http_requests")
            }
    print(json.dumps(metrics, indent=2, sort_keys=True))
    if args.out:
        Path(args.out).write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")

    if args.assert_hit_rate is not None and metrics["cache_hit_rate"] < args.assert_hit_rate:
        print(
            f"FAIL: cache_hit_rate {metrics['cache_hit_rate']:.3f} < "
            f"{args.assert_hit_rate}",
            file=sys.stderr,
        )
        return 1
    if args.assert_max_errors is not None and metrics["errors"] > args.assert_max_errors:
        print(
            f"FAIL: {metrics['errors']} errors > {args.assert_max_errors}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
