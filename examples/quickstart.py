"""Quickstart: analyze a message-passing program's communication topology.

Run with::

    python examples/quickstart.py

This walks the full pipeline on the paper's Fig. 2 ping-pong example:
parse MPL source, build the CFG, run the pCFG dataflow analysis, inspect
the detected topology, and cross-check against a concrete execution.
"""

from repro import analyze, parse, run_program
from repro.analyses.constprop import propagate_constants

SOURCE = """
    if id == 0 then
        x = 5
        send x -> 1
        receive y <- 1
        print y
    elif id == 1 then
        receive y <- 0
        send y -> 0
        print y
    else
        skip
    end
"""


def main() -> None:
    program = parse(SOURCE)

    print("=== static analysis (works for ANY number of processes) ===")
    result, cfg, client = analyze(program)
    print(f"analysis converged: {not result.gave_up}")
    print("detected communication topology:")
    for record in result.match_records:
        print(f"  {record}")

    print()
    print("=== parallel constant propagation (the paper's Fig. 2) ===")
    report, _, _ = propagate_constants(program)
    for node_id, value in sorted(report.parallel.items()):
        sequential = report.sequential[node_id]
        print(
            f"  print at CFG node {node_id}: "
            f"parallel analysis proves {value}, "
            f"sequential analysis proves {sequential}"
        )

    print()
    print("=== concrete cross-check at np = 6 ===")
    trace = run_program(program, 6, cfg=cfg)
    print(f"dynamic matches: {sorted(trace.topology().proc_edges)}")
    print(f"printed values:  {dict(trace.prints)}")
    dynamic = trace.topology().node_edges
    assert dynamic <= result.matches, "static analysis missed communication!"
    print("static matches cover the concrete execution — as they must.")


if __name__ == "__main__":
    main()
