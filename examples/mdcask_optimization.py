"""The paper's Fig. 1 motivating example: the mdcask collective rewrite.

The mdcask molecular-dynamics code makes process 0 exchange a point-to-point
message with every other process.  That is unscalable on sparse networks;
once a compiler *knows* the topology is exchange-with-root it can rewrite
the loops into native collectives (MPI_Bcast + MPI_Gather).

This example runs the pCFG analysis on the mdcask pattern, classifies the
detected topology, and prints the recommended rewrite — plus a simple cost
model showing why the rewrite matters on a torus network.

Run with::

    python examples/mdcask_optimization.py
"""

import math

from repro import analyze, classify_topology, programs
from repro.baselines import build_mpi_cfg, concrete_matches


def torus_hops(src: int, dst: int, side: int) -> int:
    """Manhattan distance on a ``side x side`` torus (per-message hops)."""
    sx, sy = src % side, src // side
    dx, dy = dst % side, dst // side
    step_x = min(abs(sx - dx), side - abs(sx - dx))
    step_y = min(abs(sy - dy), side - abs(sy - dy))
    return step_x + step_y


def pointwise_cost(edges, side: int) -> int:
    """Total hop count if every matched pair sends point-to-point."""
    return sum(torus_hops(src, dst, side) for src, dst in edges)


def collective_cost(num_procs: int) -> int:
    """Hop count of a tree broadcast + tree gather (2 * (np - 1) edges of
    average hop 1 on a torus embedding of the tree)."""
    return 2 * int(math.ceil(math.log2(num_procs))) * num_procs // 2


def main() -> None:
    spec = programs.get("mdcask_full")
    program = spec.parse()

    print("=== mdcask source (paper Fig. 1 structure) ===")
    print(spec.source)

    result, cfg, _ = analyze(spec)
    print("=== detected topology ===")
    for record in result.match_records:
        print(f"  {record}")

    report = classify_topology(program, result, cfg, probe_np=16)
    print()
    print(f"classified pattern: {report.pattern} ({report.confidence})")
    print(f"recommended rewrite: {report.suggestion}")

    print()
    print("=== why it matters: point-to-point vs collective on a torus ===")
    print(f"{'np':>6} {'p2p hops':>10} {'collective':>10} {'speedup':>8}")
    for side in (4, 8, 16):
        num_procs = side * side
        truth = concrete_matches(program, num_procs, cfg=cfg)
        p2p = pointwise_cost(truth.proc_edges, side)
        coll = collective_cost(num_procs)
        print(f"{num_procs:>6} {p2p:>10} {coll:>10} {p2p / coll:>8.2f}x")

    print()
    print("=== precision vs the MPI-CFG baseline ===")
    mpi = build_mpi_cfg(program, cfg=cfg)
    truth = concrete_matches(program, 8, cfg=cfg)
    print(f"true send->recv pairs:     {len(truth.node_edges)}")
    print(f"pCFG analysis matches:     {len(result.matches)} (exact)")
    print(
        f"MPI-CFG baseline edges:    {mpi.edge_count()} "
        f"({len(mpi.spurious_edges(truth.node_edges))} spurious)"
    )


if __name__ == "__main__":
    main()
