"""Static communication-bug detection (the paper's error-detection client).

Three buggy programs, three diagnoses — message leak, type mismatch, stuck
receive — plus a clean program for contrast.  Every static finding is
cross-checked against the interpreter where the bug is dynamically
observable.

Run with::

    python examples/bug_hunting.py
"""

from repro import detect_bugs, programs, run_program
from repro.runtime import DeadlockError


def main() -> None:
    for name in ["message_leak", "type_mismatch", "stuck_receive", "pingpong"]:
        spec = programs.get(name)
        print(f"=== {name} ===")
        print(spec.source)

        report, result, cfg = detect_bugs(spec)
        print(f"static diagnosis:\n  {report.describe()}")

        # dynamic confirmation
        try:
            trace = run_program(spec.parse(), 4, cfg=cfg)
            if trace.leaked:
                print(f"runtime confirms leak: undelivered {trace.leaked}")
            mismatches = trace.type_mismatches()
            if mismatches:
                print(
                    "runtime confirms type mismatch on "
                    f"{[(m.src, m.dst) for m in mismatches]}"
                )
            if not trace.leaked and not mismatches:
                print("runtime: executed cleanly")
        except DeadlockError as deadlock:
            print(f"runtime confirms deadlock: {deadlock}")
        print()


if __name__ == "__main__":
    main()
