"""The paper's Fig. 6 example: NAS-CG transpose matching via HSMs.

The CG benchmark exchanges data with the process at the transposed location
of a 2-D grid.  The partner expressions use ``* / %`` arithmetic, which is
beyond affine matching — this is the Section VIII showcase for Hierarchical
Sequence Maps.

Run with::

    python examples/nas_cg_transpose.py
"""

from repro import analyze, analyze_cartesian, programs, run_program
from repro.expr.poly import Poly
from repro.expr.rewrite import InvariantSystem
from repro.hsm.convert import expr_to_hsm, pset_to_hsm
from repro.hsm.prover import HSMProver
from repro.lang.parser import parse_expr


def show_hsm_derivation() -> None:
    """Reproduce the Section VIII-A derivation for the square grid."""
    inv = InvariantSystem()
    inv.add_equality("ncols", Poly.var("nrows"))
    inv.add_equality("np", Poly.var("nrows") * Poly.var("ncols"))
    inv.assume_positive("nrows", "ncols", "np")

    expr = parse_expr("(id % nrows) * nrows + id / nrows")
    domain = pset_to_hsm(Poly.const(0), inv.normalize(Poly.var("np")))
    image = expr_to_hsm(expr, domain, inv)
    print(f"  expression:    (id % nrows) * nrows + id / nrows")
    print(f"  over id =      {domain}")
    print(f"  becomes HSM:   {image}   (paper: [[0:nrows,nrows]:nrows,1])")

    prover = HSMProver(inv)
    print(f"  surjection onto [0..np-1]: {prover.is_surjection_onto(image, domain)}")
    composed = expr_to_hsm(expr, image, inv)
    print(f"  composed with itself:      {composed}")
    print(f"  identity on [0..np-1]:     {prover.is_identity_on(composed, domain)}")


def main() -> None:
    print("=== HSM derivation (Section VIII-A/B, square grid) ===")
    show_hsm_derivation()

    for name, num_procs, inputs in [
        ("transpose_square", 16, [4, 4]),
        ("transpose_rect", 18, [3, 6]),
    ]:
        spec = programs.get(name)
        print(f"\n=== {name} ({spec.paper_ref}) ===")

        simple_result, _, _ = analyze(spec)
        print(f"Section VII client (affine only): gave_up={simple_result.gave_up}")

        result, cfg, client = analyze_cartesian(spec)
        print(f"Section VIII client (HSMs):       gave_up={result.gave_up}")
        for record in result.match_records:
            print(f"  match: {record}")

        trace = run_program(spec.parse(), num_procs, inputs=inputs, cfg=cfg)
        edges = sorted(trace.topology().proc_edges)
        print(f"concrete exchange pairs at np={num_procs}: {edges[:6]} ...")
        assert trace.topology().node_edges <= result.matches
        print("static matches confirmed against the concrete run.")


if __name__ == "__main__":
    main()
