"""Run the full corpus through the analysis: a tour of detected topologies.

For each program the example prints the statically detected matches, the
classified pattern, and the validation verdict against a concrete run —
the end-to-end story of the paper in one table.

Run with::

    python examples/topology_zoo.py
"""

from repro import analyze, analyze_cartesian, classify_topology, programs, run_program

PROBES = {"transpose_square": (9, [3, 3]), "transpose_rect": (8, [2, 4])}


def main() -> None:
    print(f"{'program':26s} {'client':9s} {'matches':>7s} {'pattern':>20s} {'verdict':>9s}")
    print("-" * 78)
    for spec in programs.all_specs():
        if spec.client == "cartesian":
            result, cfg, _ = analyze_cartesian(spec)
            client = "cartesian"
        else:
            result, cfg, _ = analyze(spec)
            client = "simple"
        num_procs, inputs = PROBES.get(spec.name, (8, None))
        if result.gave_up:
            verdict = "T" if spec.client == "none" else "GAVE UP?!"
            pattern = "-"
        else:
            report = classify_topology(
                spec.parse(), result, cfg, probe_np=num_procs, inputs=inputs
            )
            pattern = report.pattern
            trace = run_program(
                spec.parse(), num_procs, inputs=list(inputs) if inputs else None, cfg=cfg
            )
            covered = trace.topology().node_edges <= result.matches
            verdict = "exact" if covered else "UNSOUND?!"
        print(
            f"{spec.name:26s} {client:9s} {len(result.matches):>7d} "
            f"{pattern:>20s} {verdict:>9s}"
        )


if __name__ == "__main__":
    main()
