"""The atomic-write contract under injected disk failures.

Whatever the disk does mid-write, the target file must keep either its
old content or the complete new content, and no orphan temp file may
survive next to it.  The Checkpointer layers one more promise on top:
an unwritable checkpoint is a diagnostic, never an aborted run.
"""

from __future__ import annotations

import json

import pytest

from repro.core import diagnostics
from repro.core.checkpoint import Checkpointer, SnapshotError, atomic_write_text
from repro.core.engine import EngineLimits, PCFGEngine
from repro.faults import plane
from repro.faults.plane import FaultSchedule, PlannedFault
from repro.lang import build_cfg, programs


WRITE_MODES = ["enospc", "eio", "torn", "crash"]


def _schedule(point: str, **kwargs) -> FaultSchedule:
    return FaultSchedule([PlannedFault(point, **kwargs)], label="test")


@pytest.mark.parametrize("mode", WRITE_MODES)
def test_atomic_write_keeps_old_content(tmp_path, mode):
    target = tmp_path / "state.json"
    target.write_text('{"old": true}')
    with plane.engaged(_schedule(f"ckpt.write.{mode}")):
        with pytest.raises(OSError):
            atomic_write_text(target, '{"new": true}', fault_scope="ckpt")
    assert json.loads(target.read_text()) == {"old": True}
    assert list(tmp_path.glob("*.tmp*")) == [], "orphan temp file stranded"


@pytest.mark.parametrize("mode", WRITE_MODES)
def test_atomic_write_failure_leaves_no_file_when_target_was_absent(tmp_path, mode):
    target = tmp_path / "fresh.json"
    with plane.engaged(_schedule(f"ckpt.write.{mode}")):
        with pytest.raises(OSError):
            atomic_write_text(target, '{"new": true}', fault_scope="ckpt")
    assert not target.exists()
    assert list(tmp_path.glob("*.tmp*")) == []


def test_atomic_write_succeeds_after_fault_window(tmp_path):
    target = tmp_path / "state.json"
    with plane.engaged(_schedule("ckpt.write.enospc", hit=1, count=1)):
        with pytest.raises(OSError):
            atomic_write_text(target, "first", fault_scope="ckpt")
        atomic_write_text(target, "second", fault_scope="ckpt")
    assert target.read_text() == "second"


def test_scopes_are_independent(tmp_path):
    # a fault planned for the cache scope must not bite the checkpointer
    target = tmp_path / "state.json"
    with plane.engaged(_schedule("cache.write.enospc")):
        atomic_write_text(target, "ok", fault_scope="ckpt")
    assert target.read_text() == "ok"


def test_checkpointer_wraps_oserror_as_snapshot_error(tmp_path):
    from repro.core.checkpoint import FORMAT, Snapshot

    ckpt = Checkpointer(tmp_path, name="t")
    snap = Snapshot(payload={"format": FORMAT, "cfg": "", "client": ""})
    with plane.engaged(_schedule("ckpt.write.enospc")):
        with pytest.raises(SnapshotError) as excinfo:
            ckpt.write(snap)
    assert excinfo.value.code == diagnostics.CHECKPOINT_IO


def _client():
    from repro.analyses.simple_symbolic import SimpleSymbolicClient

    return SimpleSymbolicClient()


def test_engine_run_survives_checkpoint_write_faults(tmp_path):
    """Satellite: a failing checkpoint write degrades to a CHECKPOINT_IO
    diagnostic; the analysis itself completes with its answer intact."""
    cfg = build_cfg(programs.get("pingpong").parse())
    clean = PCFGEngine(cfg, _client()).run()
    schedule = FaultSchedule(
        [PlannedFault("ckpt.write.enospc", hit=1, count=3)], label="test"
    )
    with plane.engaged(schedule):
        faulted = PCFGEngine(
            cfg,
            _client(),
            EngineLimits(),
            checkpointer=Checkpointer(tmp_path, name="t", every_steps=1),
        ).run()
    assert faulted.matches == clean.matches
    assert faulted.confidence == clean.confidence
    codes = {diag.code for diag in faulted.diagnostics}
    assert diagnostics.CHECKPOINT_IO in codes
    assert list(tmp_path.glob("*.tmp*")) == []
