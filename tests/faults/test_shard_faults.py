"""Shard-layer fault containment through the plane.

The sharded engine's equivalence gate must hold under injected faults:
a corrupted boundary fact or a SIGKILLed worker degrades the run — it
never silently changes the answer.
"""

from __future__ import annotations

import pytest

from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.core import diagnostics
from repro.core.engine import PCFGEngine
from repro.core.shard import ShardedEngine
from repro.faults import plane
from repro.faults.plane import FaultSchedule, PlannedFault
from repro.lang import build_cfg, programs
from repro.obs import recorder as obs


def _cfg(name="pingpong"):
    return build_cfg(programs.get(name).parse())


def _schedule(point: str, **kwargs) -> FaultSchedule:
    return FaultSchedule([PlannedFault(point, **kwargs)], label="test")


def _answer(result):
    return (frozenset(result.matches), result.topology.describe())


@pytest.mark.parametrize("name", ["pingpong", "master_worker"])
def test_boundary_corruption_is_contained(name):
    """One undecodable boundary fact: the run completes, matches the
    serial answer exactly (the corrupt shard's input re-drains from
    pre-round state), and the damage is visible in diagnostics."""
    serial = PCFGEngine(_cfg(name), SimpleSymbolicClient()).run()
    with obs.recording():
        with plane.engaged(_schedule("shard.boundary.corrupt")):
            faulted = ShardedEngine(
                _cfg(name), SimpleSymbolicClient(), jobs=2
            ).run()
        counters = dict(obs.active_recorder().counters)
    assert _answer(faulted) == _answer(serial)
    if counters.get("engine.shard.corrupt_payloads", 0):
        codes = {diag.code for diag in faulted.diagnostics}
        assert diagnostics.SHARD_FALLBACK in codes


def test_corruption_does_not_freeze_early_fixpoint():
    """The regression the invariant sweep caught: merging a corrupt
    shard's states *before* rejecting its boundary facts makes the
    re-drain a no-op and loses interior facts.  Validation must reject
    the whole outcome up front, keeping pre-round state."""
    name = "master_worker"
    serial = PCFGEngine(_cfg(name), SimpleSymbolicClient()).run()
    # fire on every round's merge, not just the first
    schedule = FaultSchedule(
        [PlannedFault("shard.boundary.corrupt", hit=1, count=50)], label="test"
    )
    with plane.engaged(schedule):
        faulted = ShardedEngine(_cfg(name), SimpleSymbolicClient(), jobs=2).run()
    assert frozenset(faulted.matches) == frozenset(serial.matches)


def test_worker_kill_degrades_with_diagnostic():
    serial = PCFGEngine(_cfg("master_worker"), SimpleSymbolicClient()).run()
    with obs.recording():
        with plane.engaged(_schedule("shard.worker.kill")):
            faulted = ShardedEngine(
                _cfg("master_worker"), SimpleSymbolicClient(), jobs=2
            ).run()
        counters = dict(obs.active_recorder().counters)
    assert frozenset(faulted.matches) == frozenset(serial.matches)
    if counters.get("engine.shard.workers_lost", 0):
        codes = {diag.code for diag in faulted.diagnostics}
        assert diagnostics.SHARD_WORKER_LOST in codes
        assert faulted.gave_up


def test_run_never_raises_under_combined_faults():
    schedule = FaultSchedule(
        [
            PlannedFault("shard.boundary.corrupt", hit=1, count=2),
            PlannedFault("shard.worker.kill", hit=2, count=1),
        ],
        label="test",
    )
    with plane.engaged(schedule):
        result = ShardedEngine(
            _cfg("master_worker"), SimpleSymbolicClient(), jobs=2
        ).run()
    assert result is not None
    assert result.confidence in (
        diagnostics.EXACT, diagnostics.PARTIAL, diagnostics.GAVE_UP
    )
