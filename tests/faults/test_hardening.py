"""Untrusted-input hardening: oversized/hostile requests get structured
4xx answers and never enter the worker retry / circuit-breaker path."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.lang.parser import (
    MAX_NESTING_DEPTH,
    MAX_SOURCE_BYTES,
    ParseError,
    parse,
)
from repro.serve.daemon import AnalysisService, ServiceConfig
from repro.serve.http import MAX_BODY_BYTES, MAX_WAIT_SEC, AnalysisHTTPServer
from repro.serve.retry import RetryPolicy


@pytest.fixture
def server(tmp_path):
    config = ServiceConfig(
        state_dir=tmp_path / "state",
        workers=1,
        isolation="inline",
        queue_size=8,
        retry=RetryPolicy(max_retries=0, backoff_base_sec=0.01),
        breaker_threshold=1,  # the touchiest possible breaker
    )
    service = AnalysisService(config)
    service.start()
    httpd = AnalysisHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield base, service
    httpd.shutdown()
    httpd.server_close()
    service.stop()


def _post_raw(base: str, body: bytes):
    request = urllib.request.Request(
        base + "/v1/analyze", data=body,
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read() or b"{}")


def _assert_no_breaker_trip(service: AnalysisService) -> None:
    snapshot = service.breaker.snapshot()
    open_rungs = [name for name, state in snapshot.items() if state == "open"]
    assert open_rungs == [], f"client faults tripped breaker(s): {open_rungs}"


# -- parser ceilings ----------------------------------------------------------


def test_deeply_nested_expression_is_parse_error():
    deep = "x = " + "(" * 10_000 + "1" + ")" * 10_000
    with pytest.raises(ParseError, match="nesting"):
        parse(deep)


def test_deeply_nested_statements_are_parse_error():
    depth = MAX_NESTING_DEPTH + 10
    source = (
        "".join(f"if (id == {i}) then\n" for i in range(depth))
        + "skip\n"
        + "end\n" * depth
    )
    with pytest.raises(ParseError, match="nesting"):
        parse(source)


def test_nesting_just_under_limit_parses():
    depth = 30
    source = "x = " + "(" * depth + "1" + ")" * depth
    parse(source)


def test_oversized_source_is_parse_error():
    source = "x = 1\n" + "y = 2\n" * (MAX_SOURCE_BYTES // 6 + 1)
    with pytest.raises(ParseError, match="too large"):
        parse(source)


def test_lexer_garbage_is_parse_error_not_lex_error():
    # LexError escaping parse() would be a 500 at the service layer —
    # the daemon's admission path catches exactly ParseError
    with pytest.raises(ParseError):
        parse("x = @#$%^&")


def test_recursion_error_cannot_escape():
    # even pathological shapes the depth counter might miss must come
    # out as ParseError (the RecursionError belt)
    hostile = "assert " + "not " * 50_000 + "1"
    with pytest.raises(ParseError):
        parse(hostile)


# -- HTTP surface -------------------------------------------------------------


def test_10mb_body_gets_structured_413(server):
    base, service = server
    body = json.dumps({"program": "x = 1", "pad": "y" * (10 * 1024 * 1024)})
    assert len(body) > MAX_BODY_BYTES
    code, document = _post_raw(base, body.encode())
    assert code == 413
    assert isinstance(document.get("error"), str)
    _assert_no_breaker_trip(service)


def test_10k_deep_program_gets_structured_400(server):
    base, service = server
    deep = "x = " + "(" * 10_000 + "1" + ")" * 10_000
    code, document = _post_raw(base, json.dumps({"program": deep}).encode())
    assert code == 400
    assert "nesting" in document["error"]
    _assert_no_breaker_trip(service)


def test_lexer_garbage_gets_structured_400(server):
    base, service = server
    code, document = _post_raw(base, json.dumps({"program": "x = @!?"}).encode())
    assert code == 400
    assert isinstance(document.get("error"), str)
    _assert_no_breaker_trip(service)


def test_oversized_program_gets_structured_400(server):
    base, service = server
    program = "x = 1\n" * 400_000  # 2.4 MB source inside an < 8 MB body
    code, document = _post_raw(base, json.dumps({"program": program}).encode())
    assert code == 400
    assert "too large" in document["error"]
    _assert_no_breaker_trip(service)


def test_malformed_json_gets_structured_400(server):
    base, service = server
    code, document = _post_raw(base, b'{"program": "x = 1"')
    assert code == 400
    assert isinstance(document.get("error"), str)
    _assert_no_breaker_trip(service)


def test_wait_budget_is_clamped(server):
    base, _service = server
    code, document = _post_raw(
        base,
        json.dumps(
            {"program": "x = 1", "wait_timeout_sec": 10_000_000.0}
        ).encode(),
    )
    # the request succeeds; the clamp just bounds the handler's block
    assert code in (200, 202)
    assert MAX_WAIT_SEC == 600.0


def test_hostile_inputs_do_not_reach_retry_path(server):
    base, service = server
    for payload in (b'[]', b'{"program": 7}', json.dumps({"program": "x = @"}).encode()):
        code, _ = _post_raw(base, payload)
        assert 400 <= code < 500
    stats = service.stats()
    assert stats["counters"].get("serve.retries", 0) == 0
    assert stats["counters"].get("serve.attempt_failures", 0) == 0
    _assert_no_breaker_trip(service)
