"""The fault plane itself: determinism, replay, coverage, zero cost."""

from __future__ import annotations

import pytest

from repro.faults import plane
from repro.faults.plane import (
    CATALOG,
    FaultPlane,
    FaultSchedule,
    PlannedFault,
    corrupt_bytes,
)


def test_catalog_names_are_scoped():
    # every point is "<subsystem>.<operation>[.<mode>]"; the write-fault
    # family keys off "<scope>.write.<mode>" in atomic_write_text
    for name in CATALOG:
        assert 2 <= len(name.split(".")) <= 3, name


def test_check_is_none_when_disabled():
    plane.reset()
    assert plane.active() is None
    assert plane.check("ckpt.write.enospc") is None


def test_install_uninstall_roundtrip():
    schedule = FaultSchedule(plans=(PlannedFault("ckpt.write.enospc"),), label="t")
    plane.install(schedule)
    try:
        assert plane.active() is not None
        assert plane.check("ckpt.write.enospc") is not None
    finally:
        plane.uninstall()
    assert plane.active() is None


def test_planned_fault_window():
    fault = PlannedFault("cache.read.corrupt", hit=2, count=2)
    assert not fault.covers(1)
    assert fault.covers(2)
    assert fault.covers(3)
    assert not fault.covers(4)


def test_schedule_for_case_is_deterministic():
    a = FaultSchedule.for_case(1337, 5)
    b = FaultSchedule.for_case(1337, 5)
    assert a.label == b.label == "1337:5"
    assert [(p.point, p.hit, p.count, p.arg) for p in a.plans] == [
        (p.point, p.hit, p.count, p.arg) for p in b.plans
    ]


def test_schedule_rotation_covers_catalog():
    focuses = {FaultSchedule.for_case(7, i).focus for i in range(len(CATALOG))}
    assert focuses == set(CATALOG)


def test_from_env_parses_base_and_case(monkeypatch):
    monkeypatch.setenv(plane.SEED_ENV, "42:3")
    schedule = FaultSchedule.from_env()
    assert schedule is not None and schedule.label == "42:3"
    monkeypatch.setenv(plane.SEED_ENV, "42")
    schedule = FaultSchedule.from_env()
    assert schedule is not None and schedule.label == "42:0"


@pytest.mark.parametrize("bad", ["", "x", "1:2:3", "1:x"])
def test_from_env_never_raises(monkeypatch, bad):
    monkeypatch.setenv(plane.SEED_ENV, bad)
    assert FaultSchedule.from_env() is None


def test_plane_counts_arrivals_and_firings():
    schedule = FaultSchedule(
        plans=(PlannedFault("shard.worker.kill", hit=2),), label="t"
    )
    fault_plane = FaultPlane(schedule)
    assert fault_plane.check("shard.worker.kill") is None  # arrival 1
    assert fault_plane.check("shard.worker.kill") is not None  # arrival 2
    assert fault_plane.check("shard.worker.kill") is None  # arrival 3
    coverage = fault_plane.coverage()
    assert coverage["shard.worker.kill"] == {"hits": 3, "fired": 1}
    # zero-filled over the whole catalog, so "never exercised" is visible
    assert set(coverage) == set(CATALOG)
    assert fault_plane.fired_points() == ["shard.worker.kill"]


def test_unknown_point_counts_but_never_fires():
    fault_plane = FaultPlane(FaultSchedule(plans=(), label="t"))
    assert fault_plane.check("nonexistent.fault.point") is None


def test_corrupt_bytes_always_differs():
    raw = b'{"answer": 42, "padding": "xxxxxxxxxxxxxxxx"}'
    for arg in (0.0, 0.3, 0.5, 0.61, 0.99):
        assert corrupt_bytes(raw, arg) != raw
    assert corrupt_bytes(b"", 0.5) != b""
