"""On-disk cache corruption: damaged entries miss and are evicted.

The cache's promise under fault is *integrity, not availability*: a
bit-flipped or truncated entry file may cost a recomputation, but it
must never be served as a result.
"""

from __future__ import annotations

import json

import pytest

from repro.core.engine import EngineLimits
from repro.faults import plane
from repro.faults.plane import FaultSchedule, PlannedFault
from repro.obs import recorder as obs
from repro.serve.cache import ENTRY_FORMAT, ResultCache, entry_checksum


def _store(cache: ResultCache, key: str = "k1") -> None:
    cache.store(
        key, "cfg-fp", "ladder", EngineLimits(), {"confidence": "exact", "answer": 42}
    )


def _fresh(directory) -> ResultCache:
    """A cold cache over the same directory (disk-only state)."""
    return ResultCache(directory)


def test_clean_roundtrip_survives_reload(tmp_path):
    cache = ResultCache(tmp_path)
    _store(cache)
    reloaded = _fresh(tmp_path)
    entry = reloaded.lookup("k1")
    assert entry is not None and entry["result"]["answer"] == 42


def test_bit_flipped_entry_misses_and_evicts(tmp_path):
    cache = ResultCache(tmp_path)
    _store(cache)
    path = tmp_path / "k1.json"
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0x01
    path.write_bytes(bytes(raw))
    with obs.recording():
        assert _fresh(tmp_path).lookup("k1") is None
        counters = dict(obs.active_recorder().counters)
    assert counters["serve.cache.corrupt_evictions"] >= 1
    assert not path.exists(), "corrupt entry must be evicted from disk"


def test_truncated_entry_misses_and_evicts(tmp_path):
    cache = ResultCache(tmp_path)
    _store(cache)
    path = tmp_path / "k1.json"
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 3])
    with obs.recording():
        assert _fresh(tmp_path).lookup("k1") is None
        counters = dict(obs.active_recorder().counters)
    assert counters["serve.cache.corrupt_evictions"] >= 1
    assert not path.exists()


def test_checksum_mismatch_on_tampered_result(tmp_path):
    """Valid JSON with a silently edited result is the nastiest case —
    only the checksum layer can catch it."""
    cache = ResultCache(tmp_path)
    _store(cache)
    path = tmp_path / "k1.json"
    entry = json.loads(path.read_text())
    entry["result"]["answer"] = 43  # tampered, checksum now stale
    path.write_text(json.dumps(entry, sort_keys=True))
    with obs.recording():
        assert _fresh(tmp_path).lookup("k1") is None
        counters = dict(obs.active_recorder().counters)
    assert counters["serve.cache.corrupt_evictions"] >= 1


def test_old_format_version_skipped_not_deleted(tmp_path):
    """A pre-checksum entry (format /1) is not corruption — it is
    skipped without eviction so a rollback can still read it."""
    cache = ResultCache(tmp_path)
    _store(cache)
    path = tmp_path / "k1.json"
    entry = json.loads(path.read_text())
    entry["format"] = "repro-serve-cache/1"
    path.write_text(json.dumps(entry, sort_keys=True))
    with obs.recording():
        assert _fresh(tmp_path).lookup("k1") is None
        counters = dict(obs.active_recorder().counters)
    assert counters.get("serve.cache.corrupt_evictions", 0) == 0
    assert counters["serve.cache.index_skipped"] >= 1
    assert path.exists()


def test_checksum_is_over_canonical_content(tmp_path):
    cache = ResultCache(tmp_path)
    _store(cache)
    entry = json.loads((tmp_path / "k1.json").read_text())
    assert entry["format"] == ENTRY_FORMAT
    assert entry["checksum"] == entry_checksum(entry)


def test_injected_read_corruption_never_serves(tmp_path):
    """The fault-plane path: pristine disk bytes, corrupted in flight."""
    cache = ResultCache(tmp_path)
    _store(cache)
    schedule = FaultSchedule(
        [PlannedFault("cache.read.corrupt", hit=1, count=1, arg=0.3)], label="t"
    )
    with obs.recording():
        with plane.engaged(schedule):
            assert _fresh(tmp_path).lookup("k1") is None
        counters = dict(obs.active_recorder().counters)
    assert counters["serve.cache.corrupt_evictions"] >= 1


@pytest.mark.parametrize("payload", [b"", b"not json at all", b"[1, 2, 3]"])
def test_unparseable_shapes_evict(tmp_path, payload):
    cache = ResultCache(tmp_path)
    _store(cache)
    path = tmp_path / "k1.json"
    path.write_bytes(payload)
    with obs.recording():
        assert _fresh(tmp_path).lookup("k1") is None
    assert not path.exists()
