"""Journal durability degradation: append never raises, torn tails heal."""

from __future__ import annotations

import json

from repro.faults import plane
from repro.faults.plane import FaultSchedule, PlannedFault
from repro.obs import recorder as obs
from repro.serve.journal import JobJournal


def _schedule(point: str, **kwargs) -> FaultSchedule:
    return FaultSchedule([PlannedFault(point, **kwargs)], label="test")


def test_append_enospc_returns_false_never_raises(tmp_path):
    journal = JobJournal(tmp_path / "j.jsonl")
    with obs.recording():
        with plane.engaged(_schedule("journal.append.enospc")):
            assert journal.append({"event": "accepted", "job": "a"}) is False
            # the plan fired once; the next append succeeds
            assert journal.append({"event": "accepted", "job": "b"}) is True
        counters = obs.active_recorder().counters
    assert counters["serve.journal.append_errors"] == 1
    pending, _ = journal.fold()
    assert set(pending) == {"b"}


def test_torn_append_is_dropped_on_load_with_warning(tmp_path, capsys):
    """Satellite: recovery tolerates a truncated final line — WARNING +
    counter, replay proceeds with the intact prefix."""
    from repro.obs import slog

    journal = JobJournal(tmp_path / "j.jsonl")
    slog.configure("warning")
    try:
        with obs.recording():
            journal.append({"event": "accepted", "job": "a"})
            with plane.engaged(_schedule("journal.append.torn")):
                assert journal.append({"event": "accepted", "job": "b"}) is False
            journal.close()
            records = JobJournal(tmp_path / "j.jsonl").load()
            counters = dict(obs.active_recorder().counters)
    finally:
        slog.configure(None)
    assert [r["job"] for r in records] == ["a"]
    assert counters["serve.journal.torn"] == 1
    logged = [
        json.loads(line) for line in capsys.readouterr().err.splitlines() if line
    ]
    assert any(e.get("event") == "serve.journal_torn_tail" for e in logged)


def test_dirty_tail_heals_on_next_append(tmp_path):
    """A torn line must stay an isolated droppable line: the next append
    starts on a fresh line instead of merging into the torn bytes."""
    journal = JobJournal(tmp_path / "j.jsonl")
    with plane.engaged(_schedule("journal.append.torn")):
        journal.append({"event": "accepted", "job": "torn-one"})
    assert journal.append({"event": "accepted", "job": "whole"}) is True
    journal.close()
    pending, _ = JobJournal(tmp_path / "j.jsonl").fold()
    assert set(pending) == {"whole"}


def test_dirty_tail_detected_across_reopen(tmp_path):
    """The tail probe works from raw bytes, so a *new* journal object
    (a restarted daemon) also refuses to merge into a torn line."""
    path = tmp_path / "j.jsonl"
    first = JobJournal(path)
    with plane.engaged(_schedule("journal.append.torn")):
        first.append({"event": "accepted", "job": "torn-one"})
    first.close()
    second = JobJournal(path)
    assert second.append({"event": "accepted", "job": "after-restart"}) is True
    second.close()
    pending, _ = JobJournal(path).fold()
    assert set(pending) == {"after-restart"}


def test_interior_corruption_counted_separately(tmp_path):
    path = tmp_path / "j.jsonl"
    good = json.dumps({"event": "accepted", "job": "a"})
    path.write_text(f"{good}\nGARBAGE NOT JSON\n{good.replace('a', 'b')}\n")
    with obs.recording():
        records = JobJournal(path).load()
        counters = dict(obs.active_recorder().counters)
    assert [r["job"] for r in records] == ["a", "b"]
    assert counters["serve.journal.corrupt_interior"] == 1
    assert "serve.journal.torn" not in counters


def test_compact_failure_returns_sentinel_keeps_journal(tmp_path):
    journal = JobJournal(tmp_path / "j.jsonl")
    journal.append({"event": "accepted", "job": "a"})
    before = (tmp_path / "j.jsonl").read_text()
    with obs.recording():
        with plane.engaged(_schedule("journal.write.enospc")):
            kept = journal.compact()
        counters = dict(obs.active_recorder().counters)
    assert kept == -1
    assert counters["serve.journal.compact_errors"] == 1
    assert (tmp_path / "j.jsonl").read_text() == before
