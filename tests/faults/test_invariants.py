"""The invariant harness itself: a small tier-1 rotation plus the full
seeded sweep (fault_slow)."""

from __future__ import annotations

import pytest

from repro.faults import invariants
from repro.faults.plane import CATALOG


def test_channel_routing_covers_catalog():
    routed = {
        invariants._channel_for(
            type("S", (), {"focus": name})()  # minimal schedule stand-in
        )
        for name in CATALOG
    }
    assert routed <= {"service", "shard", "http", "ckpt", "metrics"}


def test_single_service_case_passes(tmp_path):
    # daemon.clock.pressure: a service-channel schedule with journal +
    # cache + replay checks, cheap enough for tier-1
    case = invariants.run_case(1337, 11, tmp_path)
    assert case.channel == "service"
    assert case.ok, case.violations
    assert case.coverage["daemon.clock.pressure"]["fired"] >= 1


def test_single_ckpt_case_passes(tmp_path):
    case = invariants.run_case(1337, 0, tmp_path)
    assert case.channel == "ckpt"
    assert case.ok, case.violations
    assert case.coverage["ckpt.write.enospc"]["fired"] >= 1


def test_single_shard_case_passes(tmp_path):
    case = invariants.run_case(1337, 8, tmp_path)
    assert case.channel == "shard"
    assert case.ok, case.violations


def test_single_metrics_case_passes(tmp_path):
    """metrics.render.fail is the last catalog point: its case index is
    len(CATALOG) - 1.  The scrape channel must survive the injected render
    failure with nothing but parseable 200s."""
    case = invariants.run_case(1337, list(CATALOG).index("metrics.render.fail"), tmp_path)
    assert case.channel == "metrics"
    assert case.ok, case.violations
    assert case.coverage["metrics.render.fail"]["fired"] >= 1


def test_report_merges_coverage(tmp_path):
    report = invariants.SweepReport(base_seed=1)
    report.cases.append(invariants.run_case(1, 11, tmp_path))
    merged = report.merged_coverage()
    assert set(merged) == set(CATALOG)
    assert merged["daemon.clock.pressure"]["fired"] >= 1
    assert "daemon.clock.pressure" not in report.unexercised()
    assert report.summary()["failures"] == 0


@pytest.mark.fault_slow
def test_full_sweep_two_rotations(tmp_path):
    """Two full catalog rotations: every point fires, zero violations."""
    report = invariants.run_sweep(1337, 2 * len(CATALOG), tmp_path)
    assert report.failures == [], [c.violations for c in report.failures]
    assert report.unexercised() == []


@pytest.mark.fault_slow
def test_acceptance_sweep_200_cases(tmp_path):
    """The acceptance bar: >= 200 seeded cases, every registered fault
    point exercised at least once, zero invariant violations."""
    report = invariants.run_sweep(1337, 200, tmp_path)
    assert report.failures == [], [
        (c.label, c.violations) for c in report.failures
    ]
    assert report.unexercised() == []
