"""Namespace helper tests."""

from repro.cgraph.namespaces import (
    GLOBALS,
    drop_namespace,
    is_in_namespace,
    namespace_of,
    namespace_vars,
    qualify,
    rename_namespace,
    unqualify,
)


class TestQualification:
    def test_qualify(self):
        assert qualify(3, "x") == "ps3::x"

    def test_globals_pass_through(self):
        assert qualify(3, "np") == "np"
        assert "np" in GLOBALS

    def test_unqualify(self):
        assert unqualify("ps3::x") == "x"
        assert unqualify("np") == "np"

    def test_namespace_of(self):
        assert namespace_of("ps7::i") == "ps7"
        assert namespace_of("np") == ""

    def test_roundtrip(self):
        name = qualify(12, "counter")
        assert unqualify(name) == "counter"
        assert is_in_namespace(name, 12)
        assert not is_in_namespace(name, 1)


class TestSetOperations:
    def test_namespace_vars(self):
        names = ["ps1::x", "ps2::x", "np", "ps1::y"]
        assert namespace_vars(names, 1) == {"ps1::x", "ps1::y"}

    def test_rename_namespace(self):
        assert rename_namespace("ps1::x", 1, 9) == "ps9::x"
        assert rename_namespace("ps2::x", 1, 9) == "ps2::x"

    def test_drop_namespace(self):
        names = ["ps1::x", "ps2::x", "np"]
        assert drop_namespace(names, 1) == {"ps2::x", "np"}

    def test_prefix_collision_avoided(self):
        # ps1 must not match ps12
        assert not is_in_namespace("ps12::x", 1)
        assert is_in_namespace("ps12::x", 12)
