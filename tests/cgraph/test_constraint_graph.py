"""Constraint-graph (difference-bound) tests, including closure soundness."""

from hypothesis import given, settings, strategies as st

from repro.cgraph.constraint_graph import ZERO, ConstraintGraph
from repro.cgraph.stats import ClosureStats
from repro.expr.linear import LinearExpr

X, Y, Z = "x", "y", "z"


def L(value):
    return LinearExpr.coerce(value)


class TestBasics:
    def test_const_roundtrip(self):
        g = ConstraintGraph()
        g.set_const(X, 5)
        assert g.const_value(X) == 5

    def test_diff_bound(self):
        g = ConstraintGraph()
        g.add_diff(X, Y, 3)  # y <= x + 3
        assert g.diff_bound(X, Y) == 3
        assert g.diff_bound(Y, X) is None

    def test_transitivity(self):
        g = ConstraintGraph()
        g.add_diff(X, Y, 1)
        g.add_diff(Y, Z, 2)
        assert g.entails_diff(X, Z, 3)

    def test_infeasible_cycle(self):
        g = ConstraintGraph()
        g.add_diff(X, Y, 0)
        g.add_diff(Y, X, -1)
        assert g.infeasible

    def test_feasible_zero_cycle(self):
        g = ConstraintGraph()
        g.add_eq_diff(X, Y, 2)
        assert not g.infeasible
        assert g.diff_bound(X, Y) == 2
        assert g.diff_bound(Y, X) == -2

    def test_eval_const(self):
        g = ConstraintGraph()
        g.set_const(X, 2)
        g.set_const(Y, 3)
        assert g.eval_const(L("x") + 2 * L("y") + 1) == 9

    def test_eval_const_unknown(self):
        g = ConstraintGraph()
        g.set_const(X, 2)
        assert g.eval_const(L("x") + L("y")) is None

    def test_copy_independent(self):
        g = ConstraintGraph()
        g.set_const(X, 1)
        clone = g.copy()
        clone.set_const(Y, 2)
        assert not g.has_var(Y)


class TestEntailment:
    def test_entails_leq_two_vars(self):
        g = ConstraintGraph()
        g.add_diff(Y, X, -1)  # x <= y - 1
        assert g.entails_leq(L("x"), L("y") - 1) is True
        assert g.entails_leq(L("y"), L("x")) is False

    def test_entails_leq_single_var(self):
        g = ConstraintGraph()
        g.set_const(X, 3)
        assert g.entails_leq(L("x"), L(5)) is True
        assert g.entails_leq(L("x"), L(2)) is False
        assert g.entails_leq(L(3), L("x")) is True
        assert g.entails_leq(L(4), L("x")) is False

    def test_entails_leq_negated_var(self):
        # the historical sign-bug case: x == 7 must NOT prove 1 <= x - 7
        g = ConstraintGraph()
        g.set_const(X, 7)
        assert g.entails_leq(L(1), L("x") - 7) is False
        assert g.entails_leq(L(0), L("x") - 7) is True

    def test_entails_eq(self):
        g = ConstraintGraph()
        g.add_eq_diff(X, Y, 1)
        assert g.entails_eq(L("y"), L("x") + 1) is True
        assert g.entails_eq(L("y"), L("x")) is False

    def test_unknown_is_none(self):
        g = ConstraintGraph()
        g.add_var(X)
        g.add_var(Y)
        assert g.entails_leq(L("x"), L("y")) is None

    def test_constants_decided_syntactically(self):
        g = ConstraintGraph()
        assert g.entails_leq(L(1), L(2)) is True
        assert g.entails_leq(L(3), L(2)) is False

    def test_outside_fragment_is_none(self):
        g = ConstraintGraph()
        g.add_var(X)
        g.add_var(Y)
        g.add_var(Z)
        # x + y <= z has three variables: outside the difference fragment
        assert g.entails_leq(L("x") + L("y"), L("z")) is None


class TestAssume:
    def test_assume_leq(self):
        g = ConstraintGraph()
        assert g.assume_leq(L("x"), L("y") - 1)
        assert g.entails_leq(L("x") + 1, L("y")) is True

    def test_assume_eq(self):
        g = ConstraintGraph()
        assert g.assume_eq(L("x"), L(4))
        assert g.const_value(X) == 4

    def test_assume_contradiction(self):
        g = ConstraintGraph()
        g.assume_eq(L("x"), L(1))
        g.assume_eq(L("x"), L(2))
        assert g.infeasible

    def test_assume_outside_fragment_refused(self):
        g = ConstraintGraph()
        assert not g.assume_leq(2 * L("x"), L("y"))

    def test_assume_constant_contradiction(self):
        g = ConstraintGraph()
        g.assume_leq(L(3), L(2))
        assert g.infeasible


class TestAssignment:
    def test_assign_const(self):
        g = ConstraintGraph()
        g.assign(X, L(5))
        assert g.const_value(X) == 5

    def test_assign_var_plus_const(self):
        g = ConstraintGraph()
        g.set_const(Y, 10)
        g.assign(X, L("y") + 2)
        assert g.const_value(X) == 12

    def test_self_increment_shifts(self):
        g = ConstraintGraph()
        g.set_const("i", 1)
        g.add_diff("np", "i", -1)  # i <= np - 1
        g.assign("i", L("i") + 1)
        assert g.const_value("i") == 2
        assert g.entails_leq(L("i"), L("np")) is True

    def test_self_increment_preserves_relations(self):
        g = ConstraintGraph()
        g.add_eq_diff(X, Y, 0)  # y == x
        g.assign(Y, L("y") + 5)
        assert g.entails_eq(L("y"), L("x") + 5) is True

    def test_assign_havoc(self):
        g = ConstraintGraph()
        g.set_const(X, 1)
        g.assign(X, None)
        assert g.const_value(X) is None

    def test_assign_nonaffine_havocs(self):
        g = ConstraintGraph()
        g.set_const(X, 1)
        g.assign(X, L("y") + L("z"))
        assert g.const_value(X) is None

    def test_havoc_keeps_other_relations(self):
        g = ConstraintGraph()
        g.set_const(X, 1)
        g.set_const(Y, 2)
        g.havoc(X)
        assert g.const_value(Y) == 2


class TestEquivalents:
    def test_const_expr_equivalents(self):
        g = ConstraintGraph()
        g.set_const("i", 1)
        forms = g.equivalents(L(1), ["i"])
        assert L("i") in forms

    def test_var_plus_const_equivalents(self):
        g = ConstraintGraph()
        g.add_eq_diff("i", "j", 2)  # j == i + 2
        forms = g.equivalents(L("i") + 3, ["i", "j"])
        assert L("j") + 1 in forms

    def test_pinned_var_gets_const_form(self):
        g = ConstraintGraph()
        g.set_const("i", 4)
        forms = g.equivalents(L("i") + 1, ["i"])
        assert L(5) in forms

    def test_no_false_equivalents(self):
        g = ConstraintGraph()
        g.add_diff("i", "j", 2)  # j <= i + 2 only (not equality)
        forms = g.equivalents(L("i"), ["i", "j"])
        assert all(not f.mentions("j") for f in forms)


class TestLattice:
    def test_join_intervals(self):
        a = ConstraintGraph()
        a.set_const(X, 1)
        b = ConstraintGraph()
        b.set_const(X, 4)
        j = a.join(b)
        assert j.entails_leq(L("x"), L(4)) is True
        assert j.entails_leq(L(1), L("x")) is True
        assert j.const_value(X) is None

    def test_join_with_bottom(self):
        a = ConstraintGraph()
        a.set_const(X, 1)
        bottom = ConstraintGraph()
        bottom.assume_leq(L(1), L(0))
        assert a.join(bottom).const_value(X) == 1

    def test_meet_conjoins(self):
        a = ConstraintGraph()
        a.add_diff(ZERO, X, 5)  # x <= 5
        b = ConstraintGraph()
        b.add_diff(X, ZERO, -3)  # x >= 3
        m = a.meet(b)
        assert m.entails_leq(L(3), L("x")) is True
        assert m.entails_leq(L("x"), L(5)) is True

    def test_widen_drops_unstable(self):
        older = ConstraintGraph()
        older.set_const(X, 1)
        newer = ConstraintGraph()
        newer.set_const(X, 2)
        w = older.widen(newer)
        # lower bound 1 is stable (1 <= x in both); upper bound grew -> drop
        assert w.entails_leq(L(1), L("x")) is True
        assert w.diff_bound(ZERO, X) is None

    def test_widen_stable_fixpoint(self):
        a = ConstraintGraph()
        a.set_const(X, 1)
        w = a.widen(a.copy())
        assert w.equivalent_to(a)

    def test_equivalent_to(self):
        a = ConstraintGraph()
        a.set_const(X, 1)
        b = ConstraintGraph()
        b.set_const(X, 1)
        assert a.equivalent_to(b)
        b.set_const(Y, 2)
        assert not a.equivalent_to(b)


class TestRenameAndCopy:
    def test_rename(self):
        g = ConstraintGraph()
        g.set_const("ps0::x", 7)
        g.rename({"ps0::x": "ps1::x"})
        assert g.const_value("ps1::x") == 7
        assert not g.has_var("ps0::x")

    def test_copy_namespace_preserves_relations(self):
        g = ConstraintGraph()
        g.set_const("ps0::x", 7)
        g.add_eq_diff("ps0::x", "ps0::y", 1)
        g.copy_namespace_from(
            ["ps0::x", "ps0::y"], {"ps0::x": "ps1::x", "ps0::y": "ps1::y"}
        )
        assert g.const_value("ps1::x") == 7
        assert g.entails_eq(L("ps1::y"), L("ps1::x") + 1) is True

    def test_remove_vars_projects(self):
        g = ConstraintGraph()
        g.set_const(X, 1)
        g.add_eq_diff(X, Y, 1)
        g.remove_vars([X])
        # y == 2 must survive projection because the graph was closed
        assert g.const_value(Y) == 2


class TestClosureSoundness:
    """Closure must agree with brute-force shortest paths (hypothesis)."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([X, Y, Z, ZERO]),
                st.sampled_from([X, Y, Z, ZERO]),
                st.integers(-6, 6),
            ),
            max_size=8,
        )
    )
    def test_closure_matches_floyd_warshall(self, constraints):
        g = ConstraintGraph()
        names = [ZERO, X, Y, Z]
        for name in (X, Y, Z):
            g.add_var(name)
        weights = {}
        for src, dst, c in constraints:
            if src == dst:
                continue
            g.add_diff(src, dst, c)
            key = (src, dst)
            weights[key] = min(weights.get(key, c), c)
        # reference: Floyd-Warshall over the same edges
        dist = {(a, b): (0 if a == b else None) for a in names for b in names}
        for (a, b), c in weights.items():
            if dist[(a, b)] is None or c < dist[(a, b)]:
                dist[(a, b)] = c
        for k in names:
            for a in names:
                for b in names:
                    if dist[(a, k)] is not None and dist[(k, b)] is not None:
                        via = dist[(a, k)] + dist[(k, b)]
                        if dist[(a, b)] is None or via < dist[(a, b)]:
                            dist[(a, b)] = via
        negative = any(dist[(a, a)] < 0 for a in names)
        assert g.infeasible == negative
        if not negative:
            for a in names:
                for b in names:
                    if a != b:
                        assert g.diff_bound(a, b) == dist[(a, b)]

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from([X, Y, Z, ZERO]),
                st.sampled_from([X, Y, Z, ZERO]),
                st.integers(-5, 5),
            ),
            min_size=1,
            max_size=6,
        ),
        st.tuples(
            st.sampled_from([X, Y, Z]),
            st.sampled_from([X, Y, Z, ZERO]),
            st.integers(-5, 5),
        ),
    )
    def test_incremental_matches_full(self, constraints, extra):
        base = ConstraintGraph()
        for name in (X, Y, Z):
            base.add_var(name)
        for src, dst, c in constraints:
            if src != dst:
                base.add_diff(src, dst, c)
        base.close()
        if base.infeasible:
            return
        src, dst, c = extra
        if src == dst:
            return
        incremental = base.copy()
        incremental.close_incremental(src, dst, c)
        full = base.copy()
        full.add_diff(src, dst, c)
        full.close()
        assert incremental.infeasible == full.infeasible
        if not full.infeasible:
            assert incremental.equivalent_to(full)


class TestInstrumentation:
    def test_stats_recorded(self):
        stats = ClosureStats()
        g = ConstraintGraph(stats)
        g.set_const(X, 1)
        g.close()
        assert stats.full_calls >= 1
        g.close_incremental(ZERO, Y, 5)
        assert stats.incremental_calls == 1
        assert stats.avg_incremental_vars() > 0

    def test_report_text(self):
        stats = ClosureStats()
        stats.record_full(10, 0.5)
        stats.total_time = 1.0
        report = stats.report()
        assert "full closures" in report
        assert "50.0%" in report
