"""Copy-on-write constraint graphs: aliasing safety and lattice equivalence.

The PR-2 representation overhaul makes :meth:`ConstraintGraph.copy` share
the bound matrix until first mutation, memoizes closures in a process-wide
table, and answers ``equivalent_to`` by fingerprint comparison.  These tests
pin the two properties that make that safe:

* **isolation** — a mutation of either COW side is never visible through
  the other, under every mutator;
* **equivalence** — the cached/COW lattice is observably identical to the
  pre-overhaul eager implementation (``naive_copy=True``), checked on
  randomized operation sequences (hypothesis) against the oracle.
"""

from hypothesis import given, settings, strategies as st

from repro.cgraph.constraint_graph import (
    ConstraintGraph,
    clear_closure_caches,
)
from repro.cgraph.stats import ClosureStats
from repro.expr.linear import LinearExpr

VARS = ["x", "y", "z", "w"]


def _diff_snapshot(g: ConstraintGraph):
    """All observable query results of a graph (forces closure)."""
    if g.infeasible:
        return "infeasible"
    return {
        "diffs": {
            (a, b): g.diff_bound(a, b) for a in VARS for b in VARS
        },
        "consts": {a: g.const_value(a) for a in VARS},
        "equivs": {
            a: frozenset(g.equivalents(LinearExpr.var(a), frozenset(VARS)))
            for a in VARS
        },
    }


class TestCowIsolation:
    def test_copy_shares_until_mutation(self):
        stats = ClosureStats()
        g = ConstraintGraph(stats)
        g.add_diff("x", "y", 3)
        child = g.copy()
        assert stats.cow_shares == 1
        assert stats.cow_materializations == 0
        child.add_diff("x", "y", 1)  # tighten forces a private matrix
        assert stats.cow_materializations >= 1

    def test_child_mutation_never_aliases_parent(self):
        g = ConstraintGraph()
        g.add_diff("x", "y", 3)
        g.close()
        before = _diff_snapshot(g)
        child = g.copy()
        child.add_diff("x", "y", 1)
        child.havoc("z")
        child.assign("x", LinearExpr.var("x") + 1)
        child.remove_var("y")
        assert _diff_snapshot(g) == before

    def test_parent_mutation_never_aliases_child(self):
        g = ConstraintGraph()
        g.add_diff("x", "y", 3)
        child = g.copy()
        child.close()
        before = _diff_snapshot(child)
        g.add_diff("y", "x", -3)
        g.havoc("x")
        assert _diff_snapshot(child) == before

    def test_every_mutator_isolates(self):
        mutators = [
            lambda h: h.add_diff("x", "y", 0),
            lambda h: h.add_upper("x", 1),
            lambda h: h.add_lower("y", 0),
            lambda h: h.havoc("x"),
            lambda h: h.remove_var("x"),
            lambda h: h.remove_vars(["x", "y"]),
            lambda h: h.assign("x", LinearExpr.var("x") + 2),
            lambda h: h.assign("x", LinearExpr.const(7)),
            lambda h: h.set_const("z", 5),
            lambda h: h.assume_leq(LinearExpr.var("x"), LinearExpr.var("y")),
            lambda h: h.rename({"x": "q"}),
        ]
        for mutate in mutators:
            g = ConstraintGraph()
            g.add_diff("x", "y", 3)
            g.add_lower("x", 0)
            g.close()
            before = _diff_snapshot(g)
            child = g.copy()
            mutate(child)
            assert _diff_snapshot(g) == before, mutate

    def test_closure_cache_adoption_is_isolated(self):
        """A matrix adopted from the closure memo must never be mutated in
        place by its adopters."""
        clear_closure_caches()
        stats = ClosureStats()

        def build():
            h = ConstraintGraph(stats)
            h.add_diff("x", "y", 2)
            h.add_diff("y", "z", 2)
            h._closed = False
            h.close()
            return h

        first = build()
        second = build()  # adopts the memoized matrix
        assert stats.cache_hits >= 1
        second.add_diff("x", "z", 1)
        assert first.diff_bound("x", "z") == 4
        assert second.diff_bound("x", "z") == 1


class TestFingerprintEquivalence:
    def test_equivalent_to_same_constraints(self):
        g, h = ConstraintGraph(), ConstraintGraph()
        for graph in (g, h):
            graph.add_diff("x", "y", 1)
            graph.add_lower("x", 0)
        assert g.equivalent_to(h)
        h.add_diff("x", "y", 0)
        assert not g.equivalent_to(h)

    def test_equivalent_to_ignores_unconstrained_vars(self):
        g, h = ConstraintGraph(), ConstraintGraph()
        g.add_diff("x", "y", 1)
        h.add_diff("x", "y", 1)
        h.add_var("unused")
        assert g.equivalent_to(h)

    def test_equivalent_to_does_not_reclose_closed_graphs(self):
        """The satellite bugfix: a fingerprint comparison, not two closures
        — even in naive mode, where every query used to pay two O(n^3)
        closures."""
        stats = ClosureStats()
        g = ConstraintGraph(stats, naive_closure=True)
        h = ConstraintGraph(stats, naive_closure=True)
        g.add_diff("x", "y", 1)
        h.add_diff("x", "y", 1)
        g.close()
        h.close()
        calls = stats.full_calls
        assert g.equivalent_to(h)
        assert stats.full_calls == calls

    def test_fingerprint_tracks_mutation(self):
        g = ConstraintGraph()
        g.add_diff("x", "y", 3)
        fp = g.fingerprint()
        assert g.fingerprint() is fp or g.fingerprint() == fp
        g.add_diff("x", "y", 1)
        assert g.fingerprint() != fp


_op = st.one_of(
    st.tuples(
        st.just("add_diff"),
        st.sampled_from(VARS),
        st.sampled_from(VARS),
        st.integers(-3, 3),
    ),
    st.tuples(st.just("add_upper"), st.sampled_from(VARS), st.integers(-3, 3)),
    st.tuples(st.just("add_lower"), st.sampled_from(VARS), st.integers(-3, 3)),
    st.tuples(st.just("havoc"), st.sampled_from(VARS)),
    st.tuples(st.just("remove_var"), st.sampled_from(VARS)),
    st.tuples(st.just("assign_inc"), st.sampled_from(VARS), st.integers(-2, 2)),
    st.tuples(st.just("set_const"), st.sampled_from(VARS), st.integers(-3, 3)),
    st.tuples(st.just("copy"),),
    st.tuples(st.just("close"),),
)


def _apply(g: ConstraintGraph, op) -> ConstraintGraph:
    name = op[0]
    if name == "add_diff":
        g.add_diff(op[1], op[2], op[3])
    elif name == "add_upper":
        g.add_upper(op[1], op[2])
    elif name == "add_lower":
        g.add_lower(op[1], op[2])
    elif name == "havoc":
        g.havoc(op[1])
    elif name == "remove_var":
        g.remove_var(op[1])
    elif name == "assign_inc":
        g.assign(op[1], LinearExpr.var(op[1]) + op[2])
    elif name == "set_const":
        g.set_const(op[1], op[2])
    elif name == "copy":
        g = g.copy()  # continue on the clone: exercises COW share + later
        # materialization, while the abandoned parent keeps a reference to
        # the shared matrix
    elif name == "close":
        g.close()
    return g


@settings(max_examples=150, deadline=None)
@given(ops=st.lists(_op, max_size=20))
def test_cow_matches_naive_oracle(ops):
    """Any operation sequence gives identical observable results on the
    COW/cached graph and the eager ``naive_copy`` oracle."""
    cow = ConstraintGraph()
    naive = ConstraintGraph(naive_copy=True)
    for op in ops:
        cow = _apply(cow, op)
        naive = _apply(naive, op)
    assert _diff_snapshot(cow) == _diff_snapshot(naive)


@settings(max_examples=60, deadline=None)
@given(
    left=st.lists(_op, max_size=12),
    right=st.lists(_op, max_size=12),
)
def test_join_widen_match_naive_oracle(left, right):
    """join/widen of COW graphs agree with the eager oracle pairwise."""

    def build(ops, naive_copy):
        g = ConstraintGraph(naive_copy=naive_copy)
        for op in ops:
            g = _apply(g, op)
        return g

    a_cow, b_cow = build(left, False), build(right, False)
    a_naive, b_naive = build(left, True), build(right, True)
    assert _diff_snapshot(a_cow.join(b_cow)) == _diff_snapshot(
        a_naive.join(b_naive)
    )
    assert _diff_snapshot(a_cow.widen(b_cow)) == _diff_snapshot(
        a_naive.widen(b_naive)
    )
    assert _diff_snapshot(a_cow.meet(b_cow)) == _diff_snapshot(
        a_naive.meet(b_naive)
    )
