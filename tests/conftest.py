"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.lang import build_cfg, programs
from repro.testing import observability_fixture

#: isolate tests from each other's closure stats, memo tables, obs recorder,
#: flight recorder, and structured-logging state (shared with benchmarks/)
_reset_observability = observability_fixture()


#: inputs consumed by ``input()`` for parameterized corpus programs, keyed by
#: program name; value is a callable of the process count
CORPUS_INPUTS = {
    "transpose_square": lambda np_: _square_inputs(np_),
    "transpose_rect": lambda np_: _rect_inputs(np_),
}


def _square_inputs(num_procs: int):
    root = int(round(num_procs ** 0.5))
    assert root * root == num_procs, "square transpose needs a square np"
    return [root, root]


def _rect_inputs(num_procs: int):
    # np = nrows * ncols with ncols = 2 * nrows  =>  np = 2 * nrows^2
    nrows = int(round((num_procs / 2) ** 0.5))
    assert 2 * nrows * nrows == num_procs, "rect transpose needs np = 2*k^2"
    return [nrows, 2 * nrows]


def corpus_inputs(name: str, num_procs: int):
    """Input list for a corpus program at a process count (or None)."""
    maker = CORPUS_INPUTS.get(name)
    return maker(num_procs) if maker else None


@pytest.fixture
def pingpong_cfg():
    """CFG of the Fig. 2 ping-pong program."""
    return build_cfg(programs.get("pingpong").parse())


@pytest.fixture
def exchange_cfg():
    """CFG of the Fig. 1/5 exchange-with-root program."""
    return build_cfg(programs.get("exchange_with_root").parse())
