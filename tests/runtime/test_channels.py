"""FIFO channel network tests."""

import pytest

from repro.runtime.channels import ChannelNetwork


class TestChannelNetwork:
    def test_fifo_per_pair(self):
        net = ChannelNetwork(2)
        net.send(0, 1, 10, send_node=1, mtype="int")
        net.send(0, 1, 20, send_node=1, mtype="int")
        assert net.receive(0, 1).value == 10
        assert net.receive(0, 1).value == 20

    def test_pairs_independent(self):
        net = ChannelNetwork(3)
        net.send(0, 2, 1, 0, "int")
        net.send(1, 2, 2, 0, "int")
        assert net.receive(1, 2).value == 2
        assert net.receive(0, 2).value == 1

    def test_poll_does_not_consume(self):
        net = ChannelNetwork(2)
        net.send(0, 1, 5, 0, "int")
        assert net.poll(0, 1).value == 5
        assert net.poll(0, 1).value == 5
        assert net.in_flight() == 1

    def test_receive_empty(self):
        net = ChannelNetwork(2)
        assert net.receive(0, 1) is None

    def test_undelivered_ordered_by_seq(self):
        net = ChannelNetwork(3)
        net.send(0, 1, 1, 0, "int")
        net.send(2, 1, 2, 0, "int")
        leftovers = net.undelivered()
        assert [m.value for m in leftovers] == [1, 2]

    def test_rank_validation(self):
        net = ChannelNetwork(2)
        with pytest.raises(ValueError):
            net.send(0, 2, 1, 0, "int")
        with pytest.raises(ValueError):
            net.send(-1, 0, 1, 0, "int")

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            ChannelNetwork(0)

    def test_message_metadata(self):
        net = ChannelNetwork(2)
        message = net.send(0, 1, 9, send_node=42, mtype="float")
        assert message.send_node == 42
        assert message.mtype == "float"
