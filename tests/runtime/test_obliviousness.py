"""Interleaving-obliviousness tests (the paper's Appendix theorem, E10).

Observable behaviour — prints, dynamic matches, leaked messages — must be
identical for every legal interleaving of a deterministic MPL program.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import programs
from repro.runtime import RandomScheduler, run_program
from repro.runtime.scheduler import standard_schedulers
from tests.conftest import corpus_inputs

DETERMINISTIC_PROGRAMS = [
    name
    for name in programs.names()
    if name not in ("stuck_receive",)  # deadlocks by design
]


class TestObliviousness:
    @pytest.mark.parametrize("name", DETERMINISTIC_PROGRAMS)
    def test_all_schedulers_agree(self, name):
        spec = programs.get(name)
        num_procs = {"transpose_square": 9, "transpose_rect": 8}.get(name, 8)
        inputs = corpus_inputs(name, num_procs)
        fingerprints = set()
        for scheduler in standard_schedulers():
            trace = run_program(
                spec.parse(),
                num_procs,
                inputs=list(inputs) if inputs else None,
                scheduler=scheduler,
            )
            fingerprints.add(trace.observable())
        assert len(fingerprints) == 1

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_random_seeds_agree_on_exchange(self, seed):
        spec = programs.get("exchange_with_root")
        reference = run_program(spec.parse(), 6).observable()
        trace = run_program(spec.parse(), 6, scheduler=RandomScheduler(seed))
        assert trace.observable() == reference

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000), st.integers(2, 9))
    def test_random_seeds_agree_on_pipeline(self, seed, num_procs):
        spec = programs.get("pipeline_stages")
        reference = run_program(spec.parse(), num_procs).observable()
        trace = run_program(spec.parse(), num_procs, scheduler=RandomScheduler(seed))
        assert trace.observable() == reference


class TestSchedulers:
    def test_round_robin_cycles(self):
        from repro.runtime.scheduler import RoundRobinScheduler

        scheduler = RoundRobinScheduler()
        picks = [scheduler.choose([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_skips_blocked(self):
        from repro.runtime.scheduler import RoundRobinScheduler

        scheduler = RoundRobinScheduler()
        assert scheduler.choose([1, 3]) == 1
        assert scheduler.choose([1, 3]) == 3

    def test_reverse_picks_max(self):
        from repro.runtime.scheduler import ReverseScheduler

        assert ReverseScheduler().choose([0, 5, 2]) == 5

    def test_random_reproducible(self):
        a = RandomScheduler(7)
        b = RandomScheduler(7)
        choices = list(range(10))
        assert [a.choose(choices) for _ in range(20)] == [
            b.choose(choices) for _ in range(20)
        ]

    def test_random_reset(self):
        scheduler = RandomScheduler(3)
        first = [scheduler.choose(range(5)) for _ in range(10)]
        scheduler.reset()
        second = [scheduler.choose(range(5)) for _ in range(10)]
        assert first == second
