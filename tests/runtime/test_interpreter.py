"""Interpreter tests: semantics and per-program concrete topologies."""

import pytest

from repro.lang import parse, programs
from repro.runtime import DeadlockError, MPLAssertionError, run_program
from tests.conftest import corpus_inputs


class TestBasicSemantics:
    def test_assignment_and_print(self):
        trace = run_program(parse("x = 2 y = x * 3 print y"), 1)
        assert trace.prints[0] == [6]

    def test_id_and_np(self):
        trace = run_program(parse("print id print np"), 3)
        for rank in range(3):
            assert trace.prints[rank] == [rank, 3]

    def test_integer_division_floor(self):
        trace = run_program(parse("print 7 / 2 print 7 % 2"), 1)
        assert trace.prints[0] == [3, 1]

    def test_while_loop(self):
        trace = run_program(parse("s = 0 for i = 1 to 4 do s = s + i end print s"), 1)
        assert trace.prints[0] == [10]

    def test_elif_dispatch(self):
        source = """
            if id == 0 then print 100
            elif id == 1 then print 200
            else print 300 end
        """
        trace = run_program(parse(source), 3)
        assert trace.prints == {0: [100], 1: [200], 2: [300]}

    def test_input_values(self):
        trace = run_program(parse("a = input() b = input() print a + b"), 2, inputs=[3, 4])
        assert trace.prints[0] == [7]
        assert trace.prints[1] == [7]

    def test_assert_passes(self):
        run_program(parse("assert np == 2"), 2)

    def test_assert_failure(self):
        with pytest.raises(MPLAssertionError):
            run_program(parse("assert np == 3"), 2)

    def test_uninitialized_read(self):
        with pytest.raises(NameError):
            run_program(parse("print q"), 1)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            run_program(parse("x = 0 print 1 / x"), 1)

    def test_send_out_of_range(self):
        with pytest.raises(ValueError):
            run_program(parse("send 1 -> np"), 2)

    def test_boolean_shortcircuit(self):
        # 'or' must not evaluate the raising right side
        trace = run_program(parse("x = 1 if x == 1 or 1 / 0 == 0 then print 1 end"), 1)
        assert trace.prints[0] == [1]


class TestCommunication:
    def test_value_transferred(self):
        source = """
            if id == 0 then
                x = 42
                send x -> 1
            else
                receive y <- 0
                print y
            end
        """
        trace = run_program(parse(source), 2)
        assert trace.prints[1] == [42]

    def test_fifo_order(self):
        source = """
            if id == 0 then
                send 1 -> 1
                send 2 -> 1
            else
                receive a <- 0
                receive b <- 0
                print a
                print b
            end
        """
        trace = run_program(parse(source), 2)
        assert trace.prints[1] == [1, 2]

    def test_self_send(self):
        trace = run_program(parse("send 9 -> id receive y <- id print y"), 1)
        assert trace.prints[0] == [9]

    def test_deadlock_detected(self):
        with pytest.raises(DeadlockError):
            run_program(parse("receive y <- id"), 1)

    def test_leak_recorded(self):
        trace = run_program(programs.get("message_leak").parse(), 3)
        assert trace.leaked == [(0, 1, 3)]

    def test_type_mismatch_recorded(self):
        trace = run_program(programs.get("type_mismatch").parse(), 3)
        assert len(trace.type_mismatches()) == 1


EXPECTED_TOPOLOGY = {
    "pingpong": lambda n: {(0, 1), (1, 0)},
    "broadcast_fanout": lambda n: {(0, k) for k in range(1, n)},
    "gather_to_root": lambda n: {(k, 0) for k in range(1, n)},
    "scatter_from_root": lambda n: {(0, k) for k in range(1, n)},
    "exchange_with_root": lambda n: {(0, k) for k in range(1, n)}
    | {(k, 0) for k in range(1, n)},
    "shift_right": lambda n: {(k, k + 1) for k in range(n - 1)},
    "pipeline_stages": lambda n: {(k, k + 1) for k in range(n - 1)},
    "ring_shift_nowrap": lambda n: {(k, k + 1) for k in range(n - 1)},
    "ring_modular": lambda n: {(k, (k + 1) % n) for k in range(n)},
    "master_worker": lambda n: {(0, k) for k in range(1, n)}
    | {(k, 0) for k in range(1, n)},
    "neighbor_exchange_1d": lambda n: {(k, k + 1) for k in range(n - 1)}
    | {(k + 1, k) for k in range(n - 1)},
    "sequential_only": lambda n: set(),
}


class TestCorpusTopologies:
    @pytest.mark.parametrize("name", sorted(EXPECTED_TOPOLOGY))
    @pytest.mark.parametrize("num_procs", [4, 7])
    def test_concrete_topology(self, name, num_procs):
        trace = run_program(programs.get(name).parse(), num_procs)
        expected = EXPECTED_TOPOLOGY[name](num_procs)
        assert set(trace.topology().proc_edges) == expected

    @pytest.mark.parametrize(
        "name,num_procs",
        [("transpose_square", 9), ("transpose_square", 16), ("transpose_rect", 8)],
    )
    def test_transpose_is_involution(self, name, num_procs):
        inputs = corpus_inputs(name, num_procs)
        trace = run_program(programs.get(name).parse(), num_procs, inputs=inputs)
        edges = set(trace.topology().proc_edges)
        assert edges == {(dst, src) for src, dst in edges}
        assert len(edges) == num_procs
