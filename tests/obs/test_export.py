"""Provenance exporters: Chrome trace structure, validation, JSONL journal."""

from __future__ import annotations

import json

import pytest

from repro.analyses.simple_symbolic import SimpleSymbolicClient
from repro.core.engine import PCFGEngine
from repro.lang import programs
from repro.lang.cfg import build_cfg
from repro.obs import export, provenance
from repro.obs.export import (
    KIND_TRACKS,
    TRACK_ORDER,
    read_journal,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_journal,
)
from repro.obs.provenance import ProvenanceEvent, ProvenanceRecorder


def _sample_recorder() -> ProvenanceRecorder:
    rec = ProvenanceRecorder()
    root = rec.emit("run_start", detail="limits")
    entry = rec.emit("entry", node_key=((1,), ()), parents=(root,))
    rec.emit(
        "match",
        node_key=((2,), ()),
        parents=(entry,),
        data={"sender": "[0]", "receiver": "[1]"},
        dur=0.002,
    )
    rec.emit("frobnicate", parents=(root,))  # unknown kind -> "other" track
    return rec


class TestChromeTrace:
    def test_document_shape_and_metadata(self):
        doc = to_chrome_trace(_sample_recorder(), process_name="unit")
        assert doc["displayTimeUnit"] == "ms"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert names == set(TRACK_ORDER)
        process = [e for e in meta if e["name"] == "process_name"]
        assert process[0]["args"]["name"] == "unit"

    def test_slices_carry_the_dag(self):
        doc = to_chrome_trace(_sample_recorder())
        slices = {e["args"]["id"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        match = slices[3]
        assert match["name"] == "match"
        assert match["cat"] == "matching"
        assert match["args"]["parents"] == [2]
        assert match["args"]["node"] == [[2], []]
        assert match["args"]["data"] == {"sender": "[0]", "receiver": "[1]"}
        # microsecond floor: instants still render
        assert all(e["dur"] >= 1.0 for e in slices.values())

    def test_unknown_kind_lands_on_other_track(self):
        doc = to_chrome_trace(_sample_recorder())
        odd = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "frobnicate"
        ]
        assert odd and odd[0]["cat"] == "other"
        assert odd[0]["tid"] == TRACK_ORDER.index("other")

    def test_every_known_kind_has_a_track(self):
        assert set(KIND_TRACKS.values()) <= set(TRACK_ORDER)

    def test_written_trace_validates(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", _sample_recorder())
        document = json.loads(path.read_text())
        validate_chrome_trace(document)  # must not raise


class TestValidateChromeTrace:
    def test_accepts_engine_output(self):
        cfg = build_cfg(programs.get("pingpong").parse())
        with provenance.recording() as prov:
            PCFGEngine(cfg, SimpleSymbolicClient()).run()
        validate_chrome_trace(to_chrome_trace(prov))

    @pytest.mark.parametrize(
        "document, message",
        [
            ([], "JSON object"),
            ({"traceEvents": []}, "non-empty"),
            ({"traceEvents": ["x"]}, "not an object"),
            ({"traceEvents": [{"ph": "Q", "name": "n", "pid": 1, "tid": 0}]},
             "unsupported phase"),
            ({"traceEvents": [{"ph": "M", "pid": 1, "tid": 0}]}, "name"),
            ({"traceEvents": [{"ph": "M", "name": "n", "tid": 0}]}, "pid"),
            ({"traceEvents": [{"ph": "X", "name": "n", "pid": 1, "tid": 0,
                               "ts": -1.0, "dur": 1.0}]}, "negative"),
            ({"traceEvents": [{"ph": "X", "name": "n", "pid": 1, "tid": 0,
                               "ts": "soon", "dur": 1.0}]}, "non-numeric"),
            ({"traceEvents": [{"ph": "M", "name": "n", "pid": 1, "tid": 0,
                               "args": 5}]}, "args"),
        ],
    )
    def test_rejects_malformed_documents(self, document, message):
        with pytest.raises(ValueError, match=message):
            validate_chrome_trace(document)


class TestJournal:
    def test_jsonl_roundtrip(self, tmp_path):
        rec = _sample_recorder()
        path = write_journal(tmp_path / "journal.jsonl", rec)
        back = read_journal(path)
        # to_dict rounds timestamps, so compare the serialized forms
        assert [e.to_dict() for e in back] == [e.to_dict() for e in rec.events()]

    def test_jsonl_of_empty_source_is_empty(self):
        assert to_jsonl([]) == ""

    def test_read_journal_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        good = ProvenanceEvent(event_id=1, kind="transfer")
        path.write_text(
            json.dumps(good.to_dict()) + "\nnot json\n{\"kind\": \"x\"}\n\n"
        )
        assert read_journal(path) == [good]

    def test_write_journal_appends_to_its_own_spill(self, tmp_path):
        spill = tmp_path / "journal.jsonl"
        rec = ProvenanceRecorder(capacity=16, spill_path=str(spill))
        previous = rec.emit("run_start")
        for _ in range(30):
            previous = rec.emit("transfer", parents=(previous,))
        write_journal(spill, rec)
        events = read_journal(spill)
        # spilled prefix + live ring = the complete, gap-free history
        assert [e.event_id for e in events] == list(range(1, 32))

    def test_write_journal_overwrites_other_paths(self, tmp_path):
        target = tmp_path / "out.jsonl"
        target.write_text("stale\n")
        rec = _sample_recorder()
        write_journal(target, rec)
        assert [e.to_dict() for e in read_journal(target)] == [
            e.to_dict() for e in rec.events()
        ]

    def test_export_module_is_reachable_from_obs(self):
        from repro import obs

        assert obs.export is export
