"""The Prometheus exposition: rendering, labeling, hardening, parsing."""

from __future__ import annotations

import pytest

from repro.faults.plane import FaultSchedule, PlannedFault, install, uninstall
from repro.obs import metrics, recorder as obs


class TestMangle:
    def test_dotted_names(self):
        assert metrics._mangle("engine.steps") == "repro_engine_steps"
        assert metrics._mangle("serve.cache.hits") == "repro_serve_cache_hits"

    def test_hostile_characters(self):
        mangled = metrics._mangle("a.b-c d{e}")
        assert metrics._NAME_OK.match(mangled)


class TestRender:
    def test_empty_render_is_parseable_and_up(self):
        text = metrics.render()
        assert metrics.validate_exposition(text) == []
        assert metrics.parse_exposition(text)["repro_up"] == 1.0

    def test_counters_become_total_families(self):
        obs.enable()
        obs.incr("engine.steps", 17)
        text = metrics.render()
        samples = metrics.parse_exposition(text)
        assert samples["repro_engine_steps_total"] == 17.0
        assert "# TYPE repro_engine_steps_total counter" in text

    def test_histograms_become_summaries(self):
        obs.enable()
        for value in range(1, 101):
            obs.observe("engine.worklist.length", float(value))
        samples = metrics.parse_exposition(metrics.render())
        assert samples["repro_engine_worklist_length_count"] == 100.0
        assert samples["repro_engine_worklist_length_sum"] == 5050.0
        assert samples['repro_engine_worklist_length{quantile="0.5"}'] == 51.0
        assert samples['repro_engine_worklist_length{quantile="0.99"}'] == 99.0

    def test_endpoint_latency_folds_into_labels(self):
        obs.enable()
        obs.observe("serve.http.latency_ms.analyze", 5.0)
        obs.observe("serve.http.latency_ms.healthz", 1.0)
        text = metrics.render()
        samples = metrics.parse_exposition(text)
        assert (
            samples['repro_serve_http_latency_ms{endpoint="analyze",quantile="0.5"}']
            == 5.0
        )
        assert (
            samples['repro_serve_http_latency_ms{endpoint="healthz",quantile="0.5"}']
            == 1.0
        )
        # one family header, not one per endpoint
        assert text.count("# TYPE repro_serve_http_latency_ms summary") == 1

    def test_request_counters_fold_endpoint_and_code(self):
        obs.enable()
        obs.incr("serve.http.requests.analyze.200", 3)
        obs.incr("serve.http.requests.analyze.400")
        samples = metrics.parse_exposition(metrics.render())
        assert (
            samples['repro_serve_http_requests_total{code="200",endpoint="analyze"}']
            == 3.0
        )
        assert (
            samples['repro_serve_http_requests_total{code="400",endpoint="analyze"}']
            == 1.0
        )

    def test_tenant_latency_folds_into_labels(self):
        obs.enable()
        obs.observe("serve.tenant.latency_ms.default", 42.0)
        samples = metrics.parse_exposition(metrics.render())
        assert (
            samples['repro_serve_tenant_latency_ms{quantile="0.5",tenant="default"}']
            == 42.0
        )

    def test_fault_plane_series_when_engaged(self):
        install(FaultSchedule.for_case(1, 0))
        try:
            text = metrics.render()
        finally:
            uninstall()
        samples = metrics.parse_exposition(text)
        arrivals = [k for k in samples if k.startswith("repro_fault_arrivals_total")]
        assert arrivals, "engaged plane must export per-point arrival counters"

    def test_merged_worker_counters_render(self):
        """Counters shipped home from a worker process via merge_counters
        must appear in the exposition — the regression this PR guards."""
        recorder = obs.enable()
        obs.merge_counters({"engine.steps": 55, "engine.intern.hits": 7})
        samples = metrics.parse_exposition(metrics.render())
        assert samples["repro_engine_steps_total"] == 55.0
        assert samples["repro_engine_intern_hits_total"] == 7.0
        assert recorder is obs.active_recorder()


class TestHardening:
    def test_injected_render_fault_raises(self):
        schedule = FaultSchedule(
            [PlannedFault(point="metrics.render.fail", hit=1, count=1)],
            focus="metrics.render.fail",
        )
        install(schedule)
        try:
            with pytest.raises(RuntimeError):
                metrics.render()
            # the plan covered only the first arrival: next scrape recovers
            assert metrics.validate_exposition(metrics.render()) == []
        finally:
            uninstall()

    def test_fallback_exposition_is_parseable(self):
        text = metrics.fallback_exposition(errors=3)
        assert metrics.validate_exposition(text) == []
        samples = metrics.parse_exposition(text)
        assert samples["repro_up"] == 0.0
        assert samples["repro_metrics_render_errors_total"] == 3.0


class TestValidate:
    def test_accepts_own_render(self):
        obs.enable()
        obs.incr("engine.steps")
        obs.observe("engine.state_bytes", 10.0)
        assert metrics.validate_exposition(metrics.render()) == []

    @pytest.mark.parametrize(
        "text,needle",
        [
            ("", "empty"),
            ("garbage line here\n", "unparseable"),
            ("# NOPE foo bar\n", "malformed comment"),
            ("# TYPE foo flavor\nfoo 1\n", "unknown TYPE"),
            ("repro_x NaN\n", "NaN"),
        ],
    )
    def test_rejects_malformed(self, text, needle):
        problems = metrics.validate_exposition(text)
        assert problems and needle in problems[0]

    def test_parse_skips_comments_and_garbage(self):
        text = "# HELP a b\n# TYPE a counter\na 1\nnot-a-sample!!\n"
        assert metrics.parse_exposition(text) == {"a": 1.0}

    def test_sample_names_strip_labels(self):
        text = 'x{l="1"} 1\nx{l="2"} 2\ny 3\n'
        assert metrics.sample_names(text) == ["x", "y"]
