"""Structured logging: levels, env knob, single-line JSON records."""

from __future__ import annotations

import json

import pytest

from repro.obs import slog


class TestConfigure:
    def test_disabled_by_default(self):
        assert not slog.enabled_for("error")

    def test_threshold_orders_levels(self):
        slog.configure("warning")
        assert slog.enabled_for("error")
        assert slog.enabled_for("warning")
        assert not slog.enabled_for("info")
        assert not slog.enabled_for("debug")

    @pytest.mark.parametrize("value", [None, "", "off", "OFF", "none"])
    def test_off_spellings_disable(self, value):
        slog.configure("debug")
        slog.configure(value)
        assert not slog.enabled_for("error")

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            slog.configure("loud")

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(slog.ENV_VAR, "info")
        slog.configure_from_env()
        assert slog.enabled_for("info")

    def test_env_unset_keeps_state(self, monkeypatch):
        monkeypatch.delenv(slog.ENV_VAR, raising=False)
        slog.configure("warning")
        slog.configure_from_env()
        assert slog.enabled_for("warning")

    def test_env_invalid_disables_without_crash(self, monkeypatch, capsys):
        monkeypatch.setenv(slog.ENV_VAR, "shouty")
        slog.configure_from_env()
        err = capsys.readouterr().err
        assert json.loads(err)["event"] == "slog.bad_level"


class TestRecords:
    def test_record_is_single_line_json(self, capsys):
        slog.configure("info")
        slog.info("unit.test", a=1, b="two")
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        record = json.loads(err)
        assert record["event"] == "unit.test"
        assert record["level"] == "info"
        assert record["a"] == 1 and record["b"] == "two"
        assert "ts" in record

    def test_none_fields_are_dropped(self, capsys):
        slog.configure("info")
        slog.info("unit.test", kept=0, dropped=None)
        record = json.loads(capsys.readouterr().err)
        assert "kept" in record and "dropped" not in record

    def test_below_threshold_writes_nothing(self, capsys):
        slog.configure("warning")
        slog.debug("unit.test")
        slog.info("unit.test")
        assert capsys.readouterr().err == ""

    def test_non_json_values_fall_back_to_str(self, capsys):
        slog.configure("info")
        slog.info("unit.test", path=object())
        record = json.loads(capsys.readouterr().err)
        assert isinstance(record["path"], str)
